"""Adaptive scan resilience: budgets, hedging, AIMD, chaos scenarios.

PRs 1-5 gave the reproduction *static* fault tolerance — fixed
retry/backoff, per-host fault profiles, checkpoints — and PR 6 a trace
bus to observe it.  This package adds the layer that *adapts* to
failure at runtime:

* :class:`~repro.resilience.budget.DeadlineBudget` — per-run and
  per-stage virtual-clock deadlines with deterministic load shedding;
* :class:`~repro.resilience.hedge.HedgeController` — hedged second
  attempts after a per-server delay derived from observed latency;
* :class:`~repro.resilience.aimd.AimdController` — additive-increase /
  multiplicative-decrease send credit per server and provider;
* :class:`~repro.resilience.metrics.ResilienceMetrics` — the
  :class:`~repro.obs.metrics.MetricsSnapshot` aggregating all of it.

The chaos-scenario harness lives in the heavier submodules
:mod:`repro.resilience.scenario` (declarative time-windowed fault
scripts) and :mod:`repro.resilience.invariants` (the batch/stream
robustness contract checker); import those by path — they pull in the
pipeline layers and must stay out of the engine's import graph.

Design center, as everywhere in this reproduction: **determinism**.
Every adaptive decision is a pure function of the virtual clock and the
engine schedule, so batch and streaming runs shed, hedge, and back off
identically — and a healthy world makes every mechanism a strict no-op,
keeping clean runs byte-identical to a no-resilience baseline.
"""

from .aimd import AimdController
from .budget import DeadlineBudget
from .hedge import HedgeController
from .metrics import ResilienceMetrics

__all__ = [
    "AimdController",
    "DeadlineBudget",
    "HedgeController",
    "ResilienceMetrics",
]
