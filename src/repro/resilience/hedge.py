"""Hedged second attempts for slow nameservers.

In a real scanner a hedge races a duplicate query against a straggling
first attempt and takes whichever answers first.  Under the simulated
internet failure is known the moment the transaction resolves, so the
same latency win is expressed on the retry path: instead of charging a
timed-out first attempt the full ``timeout + backoff`` window before
retrying, the engine parks the lane for only the much shorter *hedge
delay* and fires the second attempt immediately after.  The retry *is*
the hedge — loss accounting is unchanged (a hedge is a retry: one more
query sent, one more timeout if it also fails).

The per-server delay is derived from observed successful latency (a
running mean, scaled) so healthy-but-slow servers get proportionate
patience, clamped to stay strictly below the engine timeout.  With no
observations yet the configured base delay applies.  Everything is a
pure function of prior engine events, so the hedge schedule is
identical across batch and stream executions.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["HedgeController"]

#: hedge after this multiple of the observed mean latency
_LATENCY_SCALE = 3.0
#: never hedge later than this fraction of the engine timeout
_TIMEOUT_FRACTION = 0.5


class HedgeController:
    """Derives per-server hedge delays from observed latency."""

    __slots__ = ("base_delay", "timeout", "_observed", "fired", "won",
                 "wasted")

    def __init__(self, base_delay: float, timeout: float) -> None:
        if base_delay <= 0:
            raise ValueError("base_delay must be > 0")
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.base_delay = float(base_delay)
        self.timeout = float(timeout)
        # server -> (total latency, samples)
        self._observed: Dict[str, Tuple[float, int]] = {}
        self.fired = 0
        self.won = 0
        self.wasted = 0

    def observe(self, server_ip: str, latency: float) -> None:
        """Record a successful response latency for ``server_ip``."""
        total, count = self._observed.get(server_ip, (0.0, 0))
        self._observed[server_ip] = (total + max(latency, 0.0), count + 1)

    def delay(self, server_ip: str) -> float:
        """Hedge delay for ``server_ip``: observed-latency derived,
        clamped to ``[base_delay, timeout * 0.5)``."""
        ceiling = self.timeout * _TIMEOUT_FRACTION
        floor = min(self.base_delay, ceiling * 0.999)
        observed = self._observed.get(server_ip)
        if observed is None or observed[1] == 0:
            return floor
        mean = observed[0] / observed[1]
        derived = mean * _LATENCY_SCALE
        return max(floor, min(derived, ceiling * 0.999))
