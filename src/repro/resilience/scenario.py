"""Declarative chaos scenarios compiled onto the simulator's fault hooks.

A :class:`ScenarioScript` is a small, seeded, JSON-serialisable
description of *correlated* failures — not independent per-host coin
flips but the shapes that actually break scanners in the field: a whole
provider going dark, a tail-latency storm across every nameserver, a
regional partition, browned-out open resolvers, a flapping intel
vendor.  :func:`apply_scenario` compiles the script onto the existing
primitives (:class:`~repro.net.network.FaultProfile` windows on the
:class:`~repro.net.network.SimulatedInternet`, ``Flaky*`` wrappers on
the stage-2/3 sources) so the chaos layer adds **no new failure
mechanics** — only coordination.

Import this module by its full path (``repro.resilience.scenario``):
it pulls in pipeline/world machinery, so it is deliberately *not*
re-exported from :mod:`repro.resilience` (which must stay a leaf the
engines can import).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.network import FaultProfile
from ..pipeline.faults import FaultPlan, FlakyVendor

#: window kinds the compiler understands
KINDS = (
    "provider-outage",
    "tail-latency-storm",
    "regional-partition",
    "resolver-brownout",
    "intel-vendor-flap",
)


class ScenarioError(ValueError):
    """A script that cannot be parsed or compiled."""


@dataclass(frozen=True)
class FaultWindow:
    """One time-windowed correlated fault.

    ``start``/``duration`` are virtual seconds **relative to the moment
    the scenario is applied** (the world's clock does not start at
    zero); ``duration == 0`` means open-ended.  ``params`` carries the
    kind-specific knobs — unknown keys are rejected at compile time so
    a typo'd scenario fails loudly instead of silently running clean.
    """

    kind: str
    start: float = 0.0
    duration: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ScenarioError(
                f"unknown fault window kind {self.kind!r} "
                f"(expected one of {', '.join(KINDS)})"
            )
        if self.start < 0 or self.duration < 0:
            raise ScenarioError("window start/duration must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultWindow":
        extra = set(raw) - {"kind", "start", "duration", "params"}
        if extra:
            raise ScenarioError(
                f"unknown window keys: {', '.join(sorted(extra))}"
            )
        if "kind" not in raw:
            raise ScenarioError("window needs a 'kind'")
        return cls(
            kind=raw["kind"],
            start=float(raw.get("start", 0.0)),
            duration=float(raw.get("duration", 0.0)),
            params=dict(raw.get("params", {})),
        )


@dataclass(frozen=True)
class ScenarioScript:
    """A named, seeded bundle of fault windows."""

    name: str
    seed: int = 0
    description: str = ""
    windows: Tuple[FaultWindow, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "windows": [window.to_dict() for window in self.windows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ScenarioScript":
        extra = set(raw) - {"name", "seed", "description", "windows"}
        if extra:
            raise ScenarioError(
                f"unknown script keys: {', '.join(sorted(extra))}"
            )
        if "name" not in raw:
            raise ScenarioError("scenario needs a 'name'")
        return cls(
            name=str(raw["name"]),
            seed=int(raw.get("seed", 0)),
            description=str(raw.get("description", "")),
            windows=tuple(
                FaultWindow.from_dict(window)
                for window in raw.get("windows", [])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioScript":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid scenario JSON: {error}")
        if not isinstance(raw, dict):
            raise ScenarioError("scenario JSON must be an object")
        return cls.from_dict(raw)


# -- the compiler ------------------------------------------------------------


def _param(
    window: FaultWindow, allowed: Dict[str, Any]
) -> Dict[str, Any]:
    """Validate ``window.params`` against ``allowed`` (defaults)."""
    extra = set(window.params) - set(allowed)
    if extra:
        raise ScenarioError(
            f"{window.kind}: unknown params "
            f"{', '.join(sorted(extra))} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )
    merged = dict(allowed)
    merged.update(window.params)
    return merged


def _profile(window: FaultWindow, base: float, **knobs: float) -> FaultProfile:
    return FaultProfile(start=base + window.start,
                        duration=window.duration, **knobs)


def _compile_provider_outage(window, world, base) -> List[Tuple[str, FaultProfile]]:
    params = _param(window, {"provider": "Cloudflare", "loss_rate": 1.0})
    provider = params["provider"]
    addresses = [
        target.address
        for target in world.nameserver_targets
        if target.provider == provider
    ]
    if not addresses:
        raise ScenarioError(
            f"provider-outage: no nameservers for provider "
            f"{provider!r} in this world"
        )
    profile = _profile(window, base, loss_rate=float(params["loss_rate"]))
    return [(address, profile) for address in addresses]


def _compile_tail_latency_storm(window, world, base):
    # mostly *loss* (timeout parks), a little jitter: the shape where
    # hedged retries win — pure jitter would charge hedges equally
    params = _param(window, {"loss_rate": 0.45, "jitter": 0.05})
    profile = _profile(
        window,
        base,
        loss_rate=float(params["loss_rate"]),
        latency_jitter=float(params["jitter"]),
    )
    addresses = sorted({t.address for t in world.nameserver_targets})
    return [(address, profile) for address in addresses]


def _compile_regional_partition(window, world, base):
    params = _param(window, {"country": "US", "loss_rate": 1.0})
    country = params["country"]
    addresses = sorted(
        {
            target.address
            for target in world.nameserver_targets
            if world.ipinfo.lookup(target.address).country == country
        }
    )
    if not addresses:
        # tiny worlds may not host the requested region; partition the
        # first nameserver's region instead so the scenario still bites
        fallback = sorted(t.address for t in world.nameserver_targets)
        if not fallback:
            raise ScenarioError("regional-partition: world has no nameservers")
        addresses = [fallback[0]]
    profile = _profile(window, base, loss_rate=float(params["loss_rate"]))
    return [(address, profile) for address in addresses]


def _compile_resolver_brownout(window, world, base):
    params = _param(window, {"loss_rate": 0.6})
    profile = _profile(window, base, loss_rate=float(params["loss_rate"]))
    return [
        (address, profile) for address in sorted(world.open_resolver_ips)
    ]


_NETWORK_COMPILERS = {
    "provider-outage": _compile_provider_outage,
    "tail-latency-storm": _compile_tail_latency_storm,
    "regional-partition": _compile_regional_partition,
    "resolver-brownout": _compile_resolver_brownout,
}


def apply_scenario(script: ScenarioScript, world, hunter=None) -> int:
    """Compile ``script`` onto ``world`` (and ``hunter``'s sources).

    Network-level windows become :meth:`SimulatedInternet.add_fault_window`
    entries anchored at the *current* virtual clock; intel windows wrap
    ``hunter.intel`` in seeded :class:`FlakyVendor` injectors (when a
    hunter is given).  Returns the number of (address, profile) /
    vendor-wrap bindings installed — zero means the script compiled to
    nothing, which is almost certainly a mistake worth surfacing.
    """
    network = world.network
    network.seed_faults(script.seed)
    base = network.now
    installed = 0
    for window in script.windows:
        compiler = _NETWORK_COMPILERS.get(window.kind)
        if compiler is not None:
            for address, profile in compiler(window, world, base):
                network.add_fault_window(address, profile)
                installed += 1
            continue
        # intel-vendor-flap: the source guard owns time-domain behaviour,
        # so the window's start/duration map onto fail_first (error the
        # first N calls) rather than the virtual clock.
        params = _param(
            window,
            {
                "error_rate": 0.5,
                "ratelimit_share": 0.5,
                "fail_first": 0,
                "vendors": 0,  # 0 = all
            },
        )
        if hunter is None:
            continue
        count = int(params["vendors"]) or len(world.vendors)
        wrapped = []
        for index, vendor in enumerate(world.vendors):
            if index < count:
                wrapped.append(
                    FlakyVendor(
                        vendor,
                        FaultPlan(
                            seed=script.seed + index,
                            error_rate=float(params["error_rate"]),
                            ratelimit_share=float(params["ratelimit_share"]),
                            fail_first=int(params["fail_first"]),
                        ),
                    )
                )
                installed += 1
            else:
                wrapped.append(vendor)
        # late import: the aggregator lives above the resilience layer
        from ..intel.aggregator import ThreatIntelAggregator

        hunter.intel = ThreatIntelAggregator(wrapped)
    return installed


# -- bundled scenarios -------------------------------------------------------

BUNDLED_SCENARIOS: Tuple[ScenarioScript, ...] = (
    ScenarioScript(
        name="provider-outage",
        seed=11,
        description=(
            "Cloudflare's authoritative fleet goes dark for a window "
            "mid-scan, then recovers"
        ),
        windows=(
            FaultWindow(
                kind="provider-outage",
                start=0.0,
                duration=4000.0,
                params={"provider": "Cloudflare", "loss_rate": 1.0},
            ),
        ),
    ),
    ScenarioScript(
        name="tail-latency-storm",
        seed=13,
        description=(
            "open-ended loss-dominated congestion across every "
            "nameserver — the hedging benchmark shape"
        ),
        windows=(
            FaultWindow(
                kind="tail-latency-storm",
                params={"loss_rate": 0.45, "jitter": 0.05},
            ),
        ),
    ),
    ScenarioScript(
        name="regional-partition",
        seed=17,
        description="every US-hosted nameserver unreachable for a window",
        windows=(
            FaultWindow(
                kind="regional-partition",
                start=0.0,
                duration=6000.0,
                params={"country": "US", "loss_rate": 1.0},
            ),
        ),
    ),
    ScenarioScript(
        name="resolver-brownout",
        seed=19,
        description=(
            "open resolvers shed most queries — the protective-DNS "
            "stage degrades but the run must still account for it"
        ),
        windows=(
            FaultWindow(
                kind="resolver-brownout",
                params={"loss_rate": 0.7},
            ),
        ),
    ),
    ScenarioScript(
        name="intel-vendor-flap",
        seed=23,
        description=(
            "half the intel vendors error or rate-limit; source guards "
            "must quarantine them without sinking the run"
        ),
        windows=(
            FaultWindow(
                kind="intel-vendor-flap",
                params={"error_rate": 0.5, "ratelimit_share": 0.5},
            ),
        ),
    ),
)

_BUNDLED_BY_NAME = {script.name: script for script in BUNDLED_SCENARIOS}


def bundled_scenario_names() -> List[str]:
    return [script.name for script in BUNDLED_SCENARIOS]


def load_scenario(name_or_path: str) -> ScenarioScript:
    """A bundled scenario by name, or a JSON script from a path."""
    bundled = _BUNDLED_BY_NAME.get(name_or_path)
    if bundled is not None:
        return bundled
    path = Path(name_or_path)
    if not path.exists():
        raise ScenarioError(
            f"unknown scenario {name_or_path!r} (bundled: "
            f"{', '.join(bundled_scenario_names())}; or pass a JSON path)"
        )
    return ScenarioScript.from_json(path.read_text())
