"""AIMD adaptive send credit per nameserver and provider.

The batched engine keeps one lane per nameserver, so "lane width" for a
single server is binary; the continuous dual of width is *send credit*:
a factor in ``(floor, 1.0]`` that stretches the inter-send interval for
a server (and its provider aggregate) as failures accumulate.  Credit
is cut multiplicatively on timeout/SERVFAIL and restored additively on
success — classic AIMD, expressed as pacing rather than parallelism.

The effective extra interval for a send is::

    (1.0 - min(server_credit, provider_credit)) * timeout * 0.5

so full credit (the starting state, and the steady state on a healthy
world) adds exactly zero delay — AIMD is a strict no-op until the first
failure, which keeps clean runs byte-identical to a no-resilience
baseline.  AIMD waits park the lane without holding a worker, exactly
like :class:`~repro.engine.ratelimit.TokenBucket` pacing, and compose
with it by taking the *later* of the two ready times.  Circuit-breaker
trips still win: the breaker is consulted after pacing and skips the
task outright.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["AimdController"]

_CUT_FACTOR = 0.5
_GROW_STEP = 0.25
_CREDIT_FLOOR = 1.0 / 16.0
#: extra interval at zero credit, as a fraction of the engine timeout
_INTERVAL_FRACTION = 0.5


class AimdController:
    """Additive-increase / multiplicative-decrease send credit."""

    __slots__ = ("timeout", "_credit", "_last_send", "cuts")

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.timeout = float(timeout)
        # key -> credit; missing key means full credit (1.0)
        self._credit: Dict[str, float] = {}
        # server -> virtual time of its last send
        self._last_send: Dict[str, float] = {}
        self.cuts = 0

    @staticmethod
    def _provider_key(provider: Optional[str]) -> Optional[str]:
        return None if provider is None else f"provider:{provider}"

    def credit(self, key: str) -> float:
        return self._credit.get(key, 1.0)

    def _effective_credit(self, server_ip: str,
                          provider: Optional[str]) -> float:
        credit = self.credit(server_ip)
        provider_key = self._provider_key(provider)
        if provider_key is not None:
            credit = min(credit, self.credit(provider_key))
        return credit

    def ready_at(self, server_ip: str, provider: Optional[str],
                 now: float) -> float:
        """Earliest virtual time the next send to ``server_ip`` may go.

        Full credit ⇒ ``now`` (no delay).  Reduced credit stretches the
        interval since the previous send to that server.
        """
        credit = self._effective_credit(server_ip, provider)
        if credit >= 1.0:
            return now
        last = self._last_send.get(server_ip)
        if last is None:
            return now
        extra = (1.0 - credit) * self.timeout * _INTERVAL_FRACTION
        return max(now, last + extra)

    def note_send(self, server_ip: str, now: float) -> None:
        self._last_send[server_ip] = now

    def on_success(self, server_ip: str, provider: Optional[str]) -> None:
        """Additive increase toward full credit; drops keys at 1.0 so a
        recovered server leaves no state behind."""
        for key in (server_ip, self._provider_key(provider)):
            if key is None or key not in self._credit:
                continue
            grown = self._credit[key] + _GROW_STEP
            if grown >= 1.0:
                del self._credit[key]
            else:
                self._credit[key] = grown

    def on_failure(self, server_ip: str, provider: Optional[str]) -> bool:
        """Multiplicative decrease; returns True when a cut happened
        (i.e. credit was above the floor)."""
        cut = False
        for key in (server_ip, self._provider_key(provider)):
            if key is None:
                continue
            current = self._credit.get(key, 1.0)
            if current <= _CREDIT_FLOOR:
                continue
            self._credit[key] = max(current * _CUT_FACTOR, _CREDIT_FLOOR)
            cut = True
        if cut:
            self.cuts += 1
        return cut
