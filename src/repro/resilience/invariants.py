"""Robustness contracts replayed over chaos scenarios.

The checker runs one :class:`~repro.resilience.scenario.ScenarioScript`
through a matrix of execution modes and asserts the contracts the
resilience layer promises:

* **determinism under chaos** — batch and stream produce byte-identical
  report summaries for any worker count / channel depth, because every
  fault is driven by the seeded virtual clock, never by wall time;
* **degradation is accounted** — every run ends with
  ``unaccounted == 0``: shed, timed-out, and given-up queries all land
  in a named counter, nothing vanishes;
* **no stalls** — faulted streaming runs still drain (the flow pump
  finishes; a stall raises and fails the check);
* **clean runs are untouched** — with no faults injected, a
  resilience-enabled run is byte-identical to a resilience-disabled
  one: budgets that never expire, hedges that never fire, and AIMD at
  full credit must be exact no-ops.

Import by full path (``repro.resilience.invariants``): this module
builds worlds and pipelines, far above the leaf layer engines import.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import HunterConfig, URHunter
from ..obs import RunTrace
from ..pipeline import PipelineRunner
from ..scenario import build_world, small_config
from .scenario import ScenarioScript, apply_scenario

#: (execution, stage2_workers, channel_depth) — the replay matrix; one
#: batch anchor plus stream configs that must not change a single byte
MATRIX: Tuple[Tuple[str, int, int], ...] = (
    ("batch", 1, 64),
    ("stream", 1, 8),
    ("stream", 4, 64),
)

#: resilience knobs the chaos replays run with
RESILIENCE_KNOBS = dict(hedge_delay=0.25, aimd=True)


class InvariantViolation(AssertionError):
    """A robustness contract the replay broke."""


@dataclass
class ScenarioVerdict:
    """What one scenario's replay established."""

    scenario: str
    #: per-config labels, e.g. "batch/w1/d64"
    configs: List[str] = field(default_factory=list)
    statuses: List[str] = field(default_factory=list)
    #: run.end unaccounted per config (all must be zero)
    unaccounted: List[int] = field(default_factory=list)
    #: shed/hedge/aimd activity of the first config (determinism makes
    #: the others identical)
    resilience: Dict[str, object] = field(default_factory=dict)
    identical: bool = False

    def summary(self) -> str:
        status = sorted(set(self.statuses))
        return (
            f"{self.scenario}: {len(self.configs)} configs, "
            f"status={'/'.join(status)}, "
            f"identical={'yes' if self.identical else 'NO'}, "
            f"max-unaccounted={max(self.unaccounted, default=0)}"
        )


def _run_once(
    scenario: Optional[ScenarioScript],
    seed: int,
    execution: str,
    workers: int,
    depth: int,
    resilience: bool,
) -> Tuple[str, str, int, Dict[str, object]]:
    """One full pipeline run; returns (summary, status, unaccounted,
    resilience-metrics-dict)."""
    world = build_world(small_config(seed=seed))
    knobs = dict(RESILIENCE_KNOBS) if resilience else {}
    config = HunterConfig(
        execution=execution,
        stage2_workers=workers,
        channel_depth=depth,
        **knobs,
    )
    hunter = URHunter.from_world(world, config)
    trace = RunTrace()
    hunter.attach_trace(trace)
    if scenario is not None:
        apply_scenario(scenario, world, hunter)
    result = PipelineRunner(hunter).run(validate=False)
    report = result.report
    run_end = None
    for line in trace.deterministic_lines():
        event = json.loads(line)
        if event.get("event") == "run.end":
            run_end = event
    if run_end is None:
        raise InvariantViolation(
            f"{execution}/w{workers}/d{depth}: trace has no run.end"
        )
    metrics = report.resilience_metrics
    return (
        report.summary(),
        result.status,
        int(run_end["unaccounted"]),
        metrics.to_dict() if metrics is not None else {},
    )


def check_scenario(
    scenario: ScenarioScript, seed: int = 7
) -> ScenarioVerdict:
    """Replay ``scenario`` across :data:`MATRIX`; raise on any breach."""
    verdict = ScenarioVerdict(scenario=scenario.name)
    summaries: List[str] = []
    for execution, workers, depth in MATRIX:
        label = f"{execution}/w{workers}/d{depth}"
        try:
            summary, status, unaccounted, metrics = _run_once(
                scenario, seed, execution, workers, depth, resilience=True
            )
        except InvariantViolation:
            raise
        except Exception as error:  # a stall or crash is itself a breach
            raise InvariantViolation(
                f"{scenario.name} [{label}]: run raised "
                f"{type(error).__name__}: {error}"
            ) from error
        verdict.configs.append(label)
        verdict.statuses.append(status)
        verdict.unaccounted.append(unaccounted)
        if not summaries:
            verdict.resilience = metrics
        summaries.append(summary)
        if status not in ("clean", "degraded"):
            raise InvariantViolation(
                f"{scenario.name} [{label}]: status {status!r} "
                f"(expected clean or degraded)"
            )
        if unaccounted != 0:
            raise InvariantViolation(
                f"{scenario.name} [{label}]: {unaccounted} queries "
                f"unaccounted — degradation leaked out of the ledger"
            )
    verdict.identical = all(s == summaries[0] for s in summaries)
    if not verdict.identical:
        diverging = [
            label
            for label, s in zip(verdict.configs, summaries)
            if s != summaries[0]
        ]
        raise InvariantViolation(
            f"{scenario.name}: report summaries diverge across the "
            f"matrix (differs: {', '.join(diverging)})"
        )
    return verdict


def check_clean_baseline(seed: int = 7) -> None:
    """On a healthy world, resilience on ≡ resilience off, byte for byte."""
    with_summary, with_status, _, with_metrics = _run_once(
        None, seed, "batch", 1, 64, resilience=True
    )
    without_summary, without_status, _, _ = _run_once(
        None, seed, "batch", 1, 64, resilience=False
    )
    if with_summary != without_summary:
        raise InvariantViolation(
            "clean-run baseline: resilience-enabled report differs "
            "from resilience-disabled — the layer is not a no-op "
            "on healthy runs"
        )
    if with_status != "clean" or without_status != "clean":
        raise InvariantViolation(
            f"clean-run baseline: statuses {with_status}/{without_status} "
            f"(expected clean/clean)"
        )
    if with_metrics:
        raise InvariantViolation(
            f"clean-run baseline: resilience metrics active on a "
            f"healthy run: {with_metrics}"
        )
