"""Resilience metrics snapshot: hedges, sheds, AIMD activity.

:class:`ResilienceMetrics` implements the
:class:`~repro.obs.metrics.MetricsSnapshot` protocol so it plugs into
the same :class:`~repro.obs.metrics.MetricRegistry` as the scan-engine
and stage-2 snapshots.  It is registered (and rendered, and included in
the metrics document) only when :attr:`active` — a healthy run with
resilience enabled produces no counters and therefore byte-identical
reports to a run without resilience.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["ResilienceMetrics"]


class ResilienceMetrics:
    """Deterministic counters for the adaptive resilience layer."""

    name = "resilience"
    heading = "resilience metrics:"

    __slots__ = ("hedges_fired", "hedges_won", "hedges_wasted", "shed",
                 "aimd_cuts", "aimd_wait")

    def __init__(self) -> None:
        self.hedges_fired = 0
        self.hedges_won = 0
        self.hedges_wasted = 0
        #: loss-accounting ledger keyed ``shed:<reason>``
        self.shed: Dict[str, int] = {}
        self.aimd_cuts = 0
        self.aimd_wait = 0.0

    @property
    def active(self) -> bool:
        """True once any resilience mechanism actually did something."""
        return bool(
            self.hedges_fired
            or self.hedges_won
            or self.hedges_wasted
            or self.shed
            or self.aimd_cuts
            or self.aimd_wait
        )

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def note_shed(self, reason: str) -> None:
        key = f"shed:{reason}"
        self.shed[key] = self.shed.get(key, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "hedges_fired": self.hedges_fired,
            "hedges_won": self.hedges_won,
            "hedges_wasted": self.hedges_wasted,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": self.shed_total,
            "aimd_cuts": self.aimd_cuts,
            "aimd_wait": round(self.aimd_wait, 6),
        }

    def merge(self, other: "ResilienceMetrics") -> "ResilienceMetrics":
        merged = ResilienceMetrics()
        merged.hedges_fired = self.hedges_fired + other.hedges_fired
        merged.hedges_won = self.hedges_won + other.hedges_won
        merged.hedges_wasted = self.hedges_wasted + other.hedges_wasted
        merged.aimd_cuts = self.aimd_cuts + other.aimd_cuts
        merged.aimd_wait = self.aimd_wait + other.aimd_wait
        for source in (self.shed, other.shed):
            for key, count in source.items():
                merged.shed[key] = merged.shed.get(key, 0) + count
        return merged

    def summary(self, indent: str = "") -> str:
        lines = [
            f"{indent}hedges: fired={self.hedges_fired} "
            f"won={self.hedges_won} wasted={self.hedges_wasted}",
            f"{indent}aimd: cuts={self.aimd_cuts} "
            f"wait={self.aimd_wait:.2f}s",
            f"{indent}shed: {self.shed_total}",
        ]
        for key, count in sorted(self.shed.items()):
            lines.append(f"{indent}  {key}: {count}")
        return "\n".join(lines)
