"""Virtual-clock deadline budgets with deterministic load shedding.

A :class:`DeadlineBudget` bounds how much *simulated* time a run (and
each pipeline stage within it) may spend on the wire.  Once a deadline
passes, engines stop issuing queries that have not yet been sent and
yield them back as ``SHED`` outcomes instead.  Shedding is a pure
function of the virtual clock and the engine schedule, so batch and
stream executions shed the exact same tasks — and a budget of ``0.0``
(the default) never exhausts.

Shed queries are *not* silently dropped: the engine counts them in a
dedicated ``shed`` stage counter and the per-reason ledger of
:class:`~repro.resilience.metrics.ResilienceMetrics`, keeping the
``unaccounted == 0`` loss-accounting gate intact.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

__all__ = ["DeadlineBudget"]


class DeadlineBudget:
    """Per-run and per-stage virtual-time deadlines.

    Parameters
    ----------
    run_deadline:
        Maximum virtual seconds for the whole run, measured from the
        first :meth:`begin` call.  ``0.0`` disables the run deadline.
    stage_deadline:
        Maximum virtual seconds per pipeline phase, measured from the
        first task of that phase.  ``0.0`` disables stage deadlines.

    The budget is anchored lazily: :meth:`begin` pins the run origin
    (idempotently, so the runner and the engine may both call it) and
    :meth:`enter_phase` pins each phase at the moment the engine first
    sees one of its tasks.  All checks are strict ``>=`` comparisons on
    the virtual clock — no wall time, no randomness.
    """

    __slots__ = ("run_deadline", "stage_deadline", "_run_start",
                 "_phase_starts", "_announced")

    def __init__(self, run_deadline: float = 0.0,
                 stage_deadline: float = 0.0) -> None:
        if run_deadline < 0 or stage_deadline < 0:
            raise ValueError("deadlines must be >= 0")
        self.run_deadline = float(run_deadline)
        self.stage_deadline = float(stage_deadline)
        self._run_start: Optional[float] = None
        self._phase_starts: Dict[str, float] = {}
        self._announced: Set[str] = set()

    def begin(self, now: float) -> None:
        """Anchor the run origin; later calls are ignored."""
        if self._run_start is None:
            self._run_start = now

    def enter_phase(self, phase: str, now: float) -> None:
        """Anchor ``phase`` at its first task; later calls are ignored."""
        self._phase_starts.setdefault(phase, now)

    def run_exhausted(self, now: float) -> bool:
        """True once the whole-run deadline has passed."""
        if self.run_deadline <= 0 or self._run_start is None:
            return False
        return now - self._run_start >= self.run_deadline

    def check(self, now: float, phase: str) -> Optional[str]:
        """Reason string if sends must stop, else ``None``.

        The run deadline dominates the stage deadline so a shed task is
        attributed to the tightest scope that expired.
        """
        if self.run_exhausted(now):
            return "deadline-run"
        if self.stage_deadline > 0:
            start = self._phase_starts.get(phase)
            if start is not None and now - start >= self.stage_deadline:
                return "deadline-stage"
        return None

    def announce(self, phase: str, reason: str) -> bool:
        """True the first time ``(phase, reason)`` exhausts.

        Used to bound ``budget.exhausted`` trace events to one per
        phase and reason instead of one per shed task.
        """
        key = f"{phase}:{reason}"
        if key in self._announced:
            return False
        self._announced.add(key)
        return True
