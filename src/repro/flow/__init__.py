"""Record-level streaming dataflow for the URHunter pipeline.

The batch pipeline runs stage 1 → 2 → 3 with a whole-corpus barrier
between stages.  This package re-expresses the same computation as a
dataflow graph — collector → exclusion → analysis → report sink —
connected by bounded channels, so a record is classified while the
scan is still running and intermediate buffering stays at the
configured channel depth.

The hard invariant (enforced by ``tests/flow``): for any channel
depth, stage-2 worker count, and fault schedule, the streaming report
is **byte-identical** to the batch report.  See the module docstrings
of :mod:`repro.flow.nodes` for the ordering rules that make it hold.

Entry point: :func:`run_pipeline_flow`, wired up by
:meth:`repro.core.hunter.URHunter.run_flow`.  This package imports
:mod:`repro.core` submodules; :mod:`repro.core.hunter` imports it
lazily, so there is no cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.analysis import (
    MaliciousAnalysisResult,
    MaliciousBehaviorAnalyzer,
)
from ..core.collector import (
    CollectionPreamble,
    CollectionResult,
    ResponseCollector,
)
from ..core.parallel import Stage2Metrics
from ..core.records import ClassifiedUR
from ..core.report import ReportAccumulator
from ..core.suspicion import SuspicionFilter, SuspicionOutcome
from ..engine.api import QueryTask
from .channel import Channel, ChannelError
from .graph import (
    ChannelStats,
    FlowGraph,
    FlowMetrics,
    FlowStalled,
    FlowStats,
)
from .nodes import (
    AnalysisNode,
    CollectorNode,
    ReportSink,
    StageNode,
    SuspicionNode,
    TransformNode,
)

__all__ = [
    "AnalysisNode",
    "Channel",
    "ChannelError",
    "ChannelStats",
    "CollectorNode",
    "FlowGraph",
    "FlowMetrics",
    "FlowResult",
    "FlowStalled",
    "FlowStats",
    "ReportSink",
    "StageNode",
    "SuspicionNode",
    "TransformNode",
    "run_pipeline_flow",
]


@dataclass
class FlowResult:
    """Everything one streaming run produced, in batch-result shapes."""

    collection: CollectionResult
    outcome: SuspicionOutcome
    metrics: Stage2Metrics
    analysis: MaliciousAnalysisResult
    #: the sink's incrementally folded report body
    accumulator: ReportAccumulator
    stats: FlowStats


def run_pipeline_flow(
    collector: ResponseCollector,
    tasks: Sequence[QueryTask],
    preamble: CollectionPreamble,
    suspicion: SuspicionFilter,
    analyzer: MaliciousBehaviorAnalyzer,
    now: float,
    channel_depth: int,
    segment_size: int = 0,
    segment_sink: Optional[Callable[[int, List[ClassifiedUR]], None]] = None,
    resume_entries: Sequence[ClassifiedUR] = (),
    segment_start: int = 0,
    trace=None,
    payloads: Optional[Sequence] = None,
) -> FlowResult:
    """Assemble and pump the four-node pipeline graph.

    The caller (``URHunter.run_flow``) has already run the stage-1
    preamble (protective + correct collections) and built the stage-2
    filter and stage-3 analyzer; this function owns only the dataflow.

    ``payloads`` switches the collector node to pre-reduced mode: a
    sequence of :class:`repro.plan.shards.ReducedOutcome` (from the
    shard runner) is streamed instead of driving the scan engine —
    everything downstream of the records channel is identical.
    """
    records: Channel = Channel("records", channel_depth)
    classified: Channel = Channel("classified", channel_depth)
    reported: Channel = Channel("reported", channel_depth)
    source = CollectorNode(
        collector, tasks, preamble, records, payloads=payloads
    )
    exclude = SuspicionNode(
        suspicion,
        now,
        records,
        classified,
        chunk_size=channel_depth,
        segment_size=segment_size,
        segment_sink=segment_sink,
        resume_entries=resume_entries,
        segment_start=segment_start,
    )
    analyze = AnalysisNode(analyzer, classified, reported)
    sink = ReportSink(reported)
    graph = FlowGraph(
        [source, exclude, analyze, sink],
        [records, classified, reported],
        trace=trace,
    )
    graph.run()
    assert source.result is not None and analyze.analysis is not None
    return FlowResult(
        collection=source.result,
        outcome=SuspicionOutcome(classified=exclude.classified),
        metrics=exclude.metrics,
        analysis=analyze.analysis,
        accumulator=sink.accumulator,
        stats=graph.stats(),
    )
