"""The stage nodes of the streaming dataflow.

Each node wraps one pipeline stage and advances cooperatively: the
scheduler calls :meth:`StageNode.step`, the node does a bounded amount
of work (respecting its outbox capacity) and reports whether it made
progress.  A single-threaded pump keeps the semantics identical to the
batch stages — no scheduling nondeterminism can creep into verdicts —
while the bounded channels keep intermediate buffering at the
configured depth instead of whole-corpus lists.

Determinism and byte-identity rest on three ordering rules:

* **record order** — the collector node re-establishes the batch record
  order (UR-task submission order) from the engine's completion-order
  stream with a reorder buffer, and dedupes by unique-UR key in that
  order, so downstream nodes see exactly the sequence the batch
  pipeline iterates;
* **verdict order** — the exclusion node evaluates distinct UR keys in
  global first-occurrence order (chunked to keep worker shards busy)
  when memoization is eligible, and falls back to strict per-record
  arrival-order evaluation otherwise, so every data-source call happens
  in the same sequence as the batch path (which is what keeps
  call-count-dependent fault schedules equivalent);
* **analysis order** — the §4.3 co-hosting join needs the complete
  suspicious set, so the analysis node buffers suspicious entries until
  end-of-stream and then reuses the batch analyzer verbatim; with the
  join ablated it refines incrementally through the same per-entry
  helper.
"""

from __future__ import annotations

import time
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.analysis import (
    MaliciousAnalysisResult,
    MaliciousBehaviorAnalyzer,
)
from ..core.collector import (
    CollectionPreamble,
    CollectionResult,
    ResponseCollector,
)
from ..core.correctness import CorrectnessVerdict
from ..core.parallel import Stage2Metrics
from ..core.records import (
    ClassifiedUR,
    IpVerdict,
    URCategory,
    UndelegatedRecord,
)
from ..core.report import ReportAccumulator
from ..core.suspicion import SuspicionFilter, UrKey
from ..core.txt import classify_txt
from ..dns.rdata import RRType
from ..engine.api import QueryTask
from ..pipeline.errors import CheckpointError
from .channel import Channel


class StageNode:
    """One vertex of the dataflow graph."""

    name = "node"

    def step(self) -> bool:
        """Advance a bounded amount of work; True when progress was made."""
        raise NotImplementedError

    @property
    def done(self) -> bool:
        raise NotImplementedError


class TransformNode(StageNode):
    """Base for inbox→outbox nodes: pump, buffer, end-of-stream.

    Subclasses implement :meth:`process` (one input item → zero or more
    output items) and optionally :meth:`finish` (flush at end of
    stream).  Items a full outbox cannot yet absorb wait in a small
    internal buffer; the node closes its outbox once the inbox drained,
    ``finish`` ran, and the buffer flushed.
    """

    def __init__(self, name: str, inbox: Channel, outbox: Channel):
        self.name = name
        self.inbox = inbox
        self.outbox = outbox
        self._pending: Deque = deque()
        self._finished = False
        self._closed = False

    def process(self, item) -> Iterable:
        raise NotImplementedError

    def finish(self) -> Iterable:
        return ()

    @property
    def done(self) -> bool:
        return self._closed

    def _flush(self) -> bool:
        progress = False
        while self._pending and not self.outbox.full:
            self.outbox.put(self._pending.popleft())
            progress = True
        return progress

    def step(self) -> bool:
        progress = self._flush()
        while not self._pending and not self.outbox.full and len(self.inbox):
            self._pending.extend(self.process(self.inbox.get()))
            progress = True
            self._flush()
        if self.inbox.drained and not self._finished and not self._pending:
            self._pending.extend(self.finish())
            self._finished = True
            progress = True
            self._flush()
        if self._finished and not self._pending and not self._closed:
            self.outbox.close()
            self._closed = True
            progress = True
        return progress


class CollectorNode(StageNode):
    """Stage 1 as a source node: drive the scan engine lazily.

    Pulls ``(task_index, outcome)`` pairs from the engine only while the
    outbox has capacity — generator laziness *is* the backpressure — and
    re-establishes batch record order with a reorder buffer keyed by the
    next expected task index.  Outcomes are reduced to their UR lists on
    arrival so buffered out-of-order work holds no response messages.
    At end of stream the node assembles the same
    :class:`~repro.core.collector.CollectionResult` the batch path
    returns (checkpoints stay fingerprint-compatible).
    """

    name = "collect"

    def __init__(
        self,
        collector: ResponseCollector,
        tasks: Sequence[QueryTask],
        preamble: CollectionPreamble,
        outbox: Channel,
        payloads: Optional[Sequence] = None,
    ):
        self.collector = collector
        self.preamble = preamble
        self.outbox = outbox
        # ``payloads`` (shard mode) streams pre-reduced outcomes — the
        # shard runner already executed the scan and merged the engine
        # metrics, so the node only re-establishes record order.
        self._reduced = payloads is not None
        if payloads is not None:
            self._iter = iter(
                [(outcome.index, outcome) for outcome in payloads]
            )
        else:
            self._iter = collector.iter_ur_outcomes(tasks)
        #: completed-but-early outcomes, reduced to UR lists
        self._reorder: Dict[int, List[UndelegatedRecord]] = {}
        self._next_index = 0
        self._seen: Set[Tuple] = set()
        #: the full deduped record stream (the stage-1 checkpoint body)
        self.records: List[UndelegatedRecord] = []
        self._pending: Deque[UndelegatedRecord] = deque()
        self._attempts = 0
        self._responses = 0
        self._exhausted = False
        self._closed = False
        self.result: Optional[CollectionResult] = None

    @property
    def done(self) -> bool:
        return self._closed

    def _flush(self) -> bool:
        progress = False
        while self._pending and not self.outbox.full:
            self.outbox.put(self._pending.popleft())
            progress = True
        return progress

    def _ingest(self, index: int, outcome) -> None:
        # wire counters are order-independent sums — fold at arrival
        self._attempts += outcome.attempts
        if outcome.answered:
            self._responses += 1
        if self._reduced:
            self._reorder[index] = list(outcome.urs)
        else:
            self._reorder[index] = self.collector.urs_from_outcome(outcome)
        while self._next_index in self._reorder:
            for record in self._reorder.pop(self._next_index):
                if record.key in self._seen:
                    continue
                self._seen.add(record.key)
                self.records.append(record)
                self._pending.append(record)
            self._next_index += 1

    def step(self) -> bool:
        progress = self._flush()
        while not self._pending and not self.outbox.full and not self._exhausted:
            try:
                index, outcome = next(self._iter)
            except StopIteration:
                self._exhausted = True
                break
            progress = True
            self._ingest(index, outcome)
            self._flush()
        if self._exhausted and not self._pending and not self._closed:
            assert not self._reorder, "engine left a gap in the task stream"
            # same emission point as the batch path: the UR collection
            # phase is complete (trips during the scan already emitted)
            self.collector.emit_phase("ur")
            result = CollectionResult(
                undelegated=self.records,
                queries_sent=self._attempts,
                responses_seen=self._responses,
                # every sent attempt either answered or timed out
                timeouts=self._attempts - self._responses,
            )
            self.preamble.fold_into(result)
            result.metrics = self.collector.engine.metrics
            self.result = result
            self.outbox.close()
            self._closed = True
            progress = True
        return progress


class SuspicionNode(TransformNode):
    """Stage 2 as a streaming node, byte-identical to the batch filter.

    Two paths mirror :class:`~repro.core.suspicion.SuspicionFilter`:

    * **grouped** (memoize on + deterministic sources) — records buffer
      into arrival-order chunks of ``chunk_size``; each flush evaluates
      the chunk's *new* distinct keys (global first-occurrence order)
      through the shared :class:`~repro.core.parallel.Stage2Executor`
      and fans verdicts out in arrival order.  The node-global key map
      reproduces the batch cache arithmetic exactly;
    * **naive** (otherwise) — every record is classified individually
      the moment it arrives, so the checker/guard call sequence under
      fault injection is identical to the batch loop.

    ``segment_size``/``segment_sink`` emit incremental checkpoint
    segments; ``resume_entries`` replays a previously checkpointed
    prefix (alignment-checked against the re-driven scan) without
    touching the data sources again.  Segments are only produced when
    the checker is memoizable — with nondeterministic (fault-injected)
    sources a replayed prefix would desynchronise call-count-dependent
    fault schedules, so those runs restart stage 2 from the top.
    """

    name = "exclude"

    def __init__(
        self,
        suspicion: SuspicionFilter,
        now: float,
        inbox: Channel,
        outbox: Channel,
        chunk_size: int,
        segment_size: int = 0,
        segment_sink: Optional[
            Callable[[int, List[ClassifiedUR]], None]
        ] = None,
        resume_entries: Sequence[ClassifiedUR] = (),
        segment_start: int = 0,
    ):
        super().__init__(self.name, inbox, outbox)
        self.filter = suspicion
        self.now = now
        self.chunk_size = max(1, chunk_size)
        self.grouped = suspicion.memoize and suspicion.checker.memoizable
        self.metrics = Stage2Metrics(
            workers=suspicion.executor.workers, memoized=self.grouped
        )
        #: node-global verdict map: one evaluation per distinct UR key
        self._verdicts: Dict[UrKey, CorrectnessVerdict] = {}
        #: (record, txt_category, is_protective) awaiting a chunk flush
        self._chunk: List[Tuple[UndelegatedRecord, Optional[str], bool]] = []
        #: the complete stage-2 ledger (the stage-2 checkpoint body)
        self.classified: List[ClassifiedUR] = []
        self._replay: Deque[ClassifiedUR] = deque(resume_entries)
        self._records_total = 0
        self._protective_total = 0
        self._checked = 0
        self._misses = 0
        self._memo_hits = 0
        self._segment_size = segment_size
        self._segment_sink = segment_sink
        self._segments_on = bool(
            segment_size > 0
            and segment_sink is not None
            and suspicion.checker.memoizable
        )
        self._segment: List[ClassifiedUR] = []
        self._segment_index = segment_start
        self._started = time.perf_counter()

    # -- bookkeeping shared by every emission path ----------------------

    def _count(self, entry: ClassifiedUR) -> None:
        self._records_total += 1
        if entry.category is URCategory.PROTECTIVE:
            self._protective_total += 1
        else:
            self._checked += 1

    def _emit(self, entries: List[ClassifiedUR]) -> List[ClassifiedUR]:
        """Fresh classifications: ledger, counters, segment checkpoints."""
        for entry in entries:
            self._count(entry)
            self.classified.append(entry)
            if self._segments_on:
                self._segment.append(entry)
                if len(self._segment) >= self._segment_size:
                    self._segment_sink(self._segment_index, self._segment)
                    self._segment_index += 1
                    self._segment = []
        return entries

    # -- the resumed prefix ---------------------------------------------

    def _replay_one(
        self, record: UndelegatedRecord, entry: ClassifiedUR
    ) -> List[ClassifiedUR]:
        if entry.record.key != record.key:
            raise CheckpointError(
                "segment checkpoint out of alignment with the re-driven "
                f"scan: expected {entry.record.describe()}, "
                f"got {record.describe()}"
            )
        self._count(entry)
        self.classified.append(entry)
        if self.grouped and entry.category is not URCategory.PROTECTIVE:
            key = (record.domain, record.rrtype, record.rdata_text)
            if key not in self._verdicts:
                # the live run evaluated this key fresh; replay the
                # verdict (and the miss) without touching the sources
                self._verdicts[key] = self._verdict_from_entry(entry)
                self._misses += 1
        return [entry]

    @staticmethod
    def _verdict_from_entry(entry: ClassifiedUR) -> CorrectnessVerdict:
        if entry.category is URCategory.CORRECT:
            return CorrectnessVerdict(
                True, matched_condition=entry.reasons[0]
            )
        degraded: Tuple[str, ...] = ()
        for reason in entry.reasons:
            if reason.startswith("unverifiable:"):
                degraded = tuple(reason.split(":", 1)[1].split("+"))
        return CorrectnessVerdict(False, degraded_conditions=degraded)

    # -- the streaming classification -----------------------------------

    def process(self, record: UndelegatedRecord) -> List[ClassifiedUR]:
        if self._replay:
            return self._replay_one(record, self._replay.popleft())
        if not self.grouped:
            return self._emit([self.filter._classify_one(record, self.now)])
        txt_category: Optional[str] = None
        if record.rrtype == RRType.TXT:
            txt_category = classify_txt(record.rdata_text)
        fingerprint = self.filter.protective.get(record.nameserver_ip)
        protective = fingerprint is not None and fingerprint.matches(
            record.rrtype, record.rdata_text
        )
        self._chunk.append((record, txt_category, protective))
        if len(self._chunk) >= self.chunk_size:
            return self._emit(self._flush_chunk())
        return []

    def _flush_chunk(self) -> List[ClassifiedUR]:
        """Evaluate the chunk's new keys, fan out in arrival order."""
        checker = self.filter.checker
        pending: Dict[UrKey, UndelegatedRecord] = {}
        for record, _, protective in self._chunk:
            if protective:
                continue
            key = (record.domain, record.rrtype, record.rdata_text)
            if key not in self._verdicts and key not in pending:
                pending[key] = record
        if pending:
            hits_before = checker.memo_hits
            misses_before = checker.memo_misses
            results = self.filter.executor.map_keys(
                list(pending.items()),
                lambda record: checker.check_cached(record, self.now),
            )
            self._misses += checker.memo_misses - misses_before
            self._memo_hits += checker.memo_hits - hits_before
            for key, (verdict, elapsed) in results.items():
                self.metrics.attribute(
                    verdict.matched_condition or "survived-exclusion",
                    elapsed,
                )
                self._verdicts[key] = verdict
        entries: List[ClassifiedUR] = []
        for record, txt_category, protective in self._chunk:
            if protective:
                entries.append(
                    ClassifiedUR(
                        record=record,
                        category=URCategory.PROTECTIVE,
                        reasons=("protective-fingerprint",),
                        txt_category=txt_category,
                    )
                )
                continue
            key = (record.domain, record.rrtype, record.rdata_text)
            entries.append(
                SuspicionFilter._from_verdict(
                    record, self._verdicts[key], txt_category
                )
            )
        self._chunk = []
        return entries

    def finish(self) -> List[ClassifiedUR]:
        if self._replay:
            raise CheckpointError(
                f"segment checkpoint holds {len(self._replay)} more "
                "classifications than the re-driven scan produced"
            )
        entries = self._emit(self._flush_chunk()) if self._chunk else []
        metrics = self.metrics
        metrics.records = self._records_total
        metrics.protective_matches = self._protective_total
        if self.grouped:
            metrics.distinct_keys = len(self._verdicts)
            metrics.cache_misses = self._misses
            # batch arithmetic: memo hits + (checked records - keys)
            metrics.cache_hits = self._memo_hits + (
                self._checked - len(self._verdicts)
            )
        metrics.wall_s = time.perf_counter() - self._started
        self.filter._harvest_store_caches(metrics)
        self.filter.last_metrics = metrics
        return entries


class AnalysisNode(TransformNode):
    """Stage 3 as a streaming node.

    Clean (non-suspicious) entries pass straight through.  With the
    §4.3 co-hosting join enabled (the default) suspicious entries wait
    for end-of-stream — the join's A-record index needs the complete
    suspicious set — and then ride the batch analyzer verbatim, so the
    intel-vendor call sequence matches the batch run exactly.  With the
    join ablated each suspicious entry is refined the moment it
    arrives, through the same per-entry helper and shared first-seen
    IP ledger the batch loop uses.
    """

    name = "analyze"

    def __init__(
        self,
        analyzer: MaliciousBehaviorAnalyzer,
        inbox: Channel,
        outbox: Channel,
    ):
        super().__init__(self.name, inbox, outbox)
        self.analyzer = analyzer
        self._suspicious: List[ClassifiedUR] = []
        self._refined: List[ClassifiedUR] = []
        self._ip_verdicts: Dict[str, IpVerdict] = {}
        self._txt_without_ip = 0
        self.analysis: Optional[MaliciousAnalysisResult] = None

    def process(self, entry: ClassifiedUR) -> List[ClassifiedUR]:
        if not entry.is_suspicious:
            return [entry]
        if self.analyzer.use_cohost_join:
            self._suspicious.append(entry)
            return []
        refined, counted = self.analyzer.refine_entry(
            entry, {}, self._ip_verdicts
        )
        if counted:
            self._txt_without_ip += 1
        self._refined.append(refined)
        return [refined]

    def finish(self) -> List[ClassifiedUR]:
        if self.analyzer.use_cohost_join:
            self.analysis = self.analyzer.analyze(self._suspicious)
            return list(self.analysis.classified)
        self.analysis = MaliciousAnalysisResult(
            classified=self._refined,
            ip_verdicts=self._ip_verdicts,
            txt_without_ip=self._txt_without_ip,
        )
        return []


class ReportSink(StageNode):
    """Terminal node: fold classified entries into the report accumulator.

    The accumulator re-partitions arrival order (clean entries
    interleave with refined ones in a stream) into the canonical batch
    report order — the same class :meth:`URHunter.build_report` uses,
    which is the byte-identity guarantee's last link.
    """

    name = "report"

    def __init__(self, inbox: Channel):
        self.inbox = inbox
        self.accumulator = ReportAccumulator()
        self._closed = False

    @property
    def done(self) -> bool:
        return self._closed

    def step(self) -> bool:
        progress = False
        while len(self.inbox):
            self.accumulator.add(self.inbox.get())
            progress = True
        if self.inbox.drained and not self._closed:
            self._closed = True
            progress = True
        return progress
