"""The cooperative scheduler pumping the dataflow graph.

A deliberately single-threaded pump: nodes are stepped
**downstream-first** each sweep, so the sink drains its channel before
upstream nodes try to refill it — one sweep moves every buffered item
one hop and frees the capacity the source needs.  Single-threading is a
feature twice over: verdict byte-identity cannot depend on thread
scheduling, and the GIL would serialise the (CPU-bound) stages anyway —
stage-2 worker threads still parallelise inside the exclusion node's
chunk evaluation, exactly as in batch mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .channel import Channel
from .nodes import StageNode


class FlowStalled(RuntimeError):
    """No node can make progress but the flow has not drained — a bug
    in a node's capacity accounting, never a data-dependent state."""


@dataclass(frozen=True)
class ChannelStats:
    """Occupancy accounting of one channel after a run."""

    name: str
    depth: int
    max_occupancy: int
    total: int


@dataclass(frozen=True)
class FlowStats:
    """What the flow buffered: proof the channels stayed bounded."""

    channels: Sequence[ChannelStats]

    @property
    def max_occupancy(self) -> int:
        return max(
            (stats.max_occupancy for stats in self.channels), default=0
        )

    def summary(self) -> str:
        return "  ".join(
            f"{stats.name}: {stats.total} items, "
            f"peak {stats.max_occupancy}/{stats.depth}"
            for stats in self.channels
        )


class FlowGraph:
    """A linear pipeline of nodes connected by bounded channels."""

    def __init__(
        self, nodes: Sequence[StageNode], channels: Sequence[Channel]
    ):
        if not nodes:
            raise ValueError("a flow graph needs at least one node")
        #: upstream → downstream order
        self.nodes = list(nodes)
        self.channels = list(channels)

    def run(self) -> None:
        """Pump until every node is done."""
        while True:
            remaining = [node for node in self.nodes if not node.done]
            if not remaining:
                return
            progress = False
            # downstream-first: drain before refilling
            for node in reversed(remaining):
                if node.step():
                    progress = True
            if not progress:
                stuck = ", ".join(node.name for node in remaining)
                raise FlowStalled(f"no node can progress (stuck: {stuck})")

    def stats(self) -> FlowStats:
        return FlowStats(
            channels=tuple(
                ChannelStats(
                    name=channel.name,
                    depth=channel.depth,
                    max_occupancy=channel.max_occupancy,
                    total=channel.total,
                )
                for channel in self.channels
            )
        )
