"""The cooperative scheduler pumping the dataflow graph.

A deliberately single-threaded pump: nodes are stepped
**downstream-first** each sweep, so the sink drains its channel before
upstream nodes try to refill it — one sweep moves every buffered item
one hop and frees the capacity the source needs.  Single-threading is a
feature twice over: verdict byte-identity cannot depend on thread
scheduling, and the GIL would serialise the (CPU-bound) stages anyway —
stage-2 worker threads still parallelise inside the exclusion node's
chunk evaluation, exactly as in batch mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Sequence

from .channel import Channel
from .nodes import StageNode


class FlowStalled(RuntimeError):
    """No node can make progress but the flow has not drained — a bug
    in a node's capacity accounting, never a data-dependent state."""


@dataclass(frozen=True)
class ChannelStats:
    """Occupancy accounting of one channel after a run."""

    name: str
    depth: int
    max_occupancy: int
    total: int


@dataclass(frozen=True)
class FlowStats:
    """What the flow buffered: proof the channels stayed bounded."""

    channels: Sequence[ChannelStats]
    #: pump sweeps the run took (a liveness figure: a healthy flow
    #: finishes in a bounded number of sweeps per item; chaos tests use
    #: it to show faulted runs still drain instead of spinning)
    sweeps: int = 0

    @property
    def max_occupancy(self) -> int:
        return max(
            (stats.max_occupancy for stats in self.channels), default=0
        )

    def summary(self) -> str:
        return "  ".join(
            f"{stats.name}: {stats.total} items, "
            f"peak {stats.max_occupancy}/{stats.depth}"
            for stats in self.channels
        )

    def to_metrics(self) -> "FlowMetrics":
        """The mutable :class:`MetricsSnapshot` view of these stats."""
        return FlowMetrics.from_stats(self)


@dataclass
class FlowMetrics:
    """Channel occupancy behind the one metrics protocol.

    Implements :class:`repro.obs.metrics.MetricsSnapshot`.  Occupancy
    depends on the configured channel depth (and exists only in
    streaming runs), so this snapshot belongs to the metrics document's
    **timing** section — never to a byte-compared surface.
    """

    name: ClassVar[str] = "flow-channels"
    heading: ClassVar[str] = "flow channels:"

    channels: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, stats: FlowStats) -> "FlowMetrics":
        return cls(
            channels={
                channel.name: {
                    "depth": channel.depth,
                    "max_occupancy": channel.max_occupancy,
                    "total": channel.total,
                }
                for channel in stats.channels
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        return {name: dict(entry) for name, entry in self.channels.items()}

    def merge(self, other: "FlowMetrics") -> None:
        for name, entry in other.channels.items():
            existing = self.channels.get(name)
            if existing is None:
                self.channels[name] = dict(entry)
            else:
                existing["depth"] = max(existing["depth"], entry["depth"])
                existing["max_occupancy"] = max(
                    existing["max_occupancy"], entry["max_occupancy"]
                )
                existing["total"] += entry["total"]

    def summary(self, indent: str = "") -> str:
        lines = [
            f"{indent}{name}: {entry['total']} items, "
            f"peak {entry['max_occupancy']}/{entry['depth']}"
            for name, entry in self.channels.items()
        ]
        if not lines:
            lines = [f"{indent}(no channels)"]
        return "\n".join(lines)


class FlowGraph:
    """A linear pipeline of nodes connected by bounded channels."""

    def __init__(
        self,
        nodes: Sequence[StageNode],
        channels: Sequence[Channel],
        trace: Optional[Any] = None,
    ):
        if not nodes:
            raise ValueError("a flow graph needs at least one node")
        #: upstream → downstream order
        self.nodes = list(nodes)
        self.channels = list(channels)
        #: optional repro.obs.RunTrace — stall detection and channel
        #: occupancy report through it (timing section: occupancy is
        #: depth-dependent and stream-only)
        self.trace = trace
        #: pump sweeps executed by the last run()
        self.sweeps = 0

    def run(self) -> None:
        """Pump until every node is done."""
        self.sweeps = 0
        while True:
            remaining = [node for node in self.nodes if not node.done]
            if not remaining:
                if self.trace is not None:
                    self.trace.emit_timing(
                        "flow.channels",
                        sweeps=self.sweeps,
                        channels=self.stats().to_metrics().to_dict(),
                    )
                return
            self.sweeps += 1
            progress = False
            # downstream-first: drain before refilling
            for node in reversed(remaining):
                if node.step():
                    progress = True
            if not progress:
                stuck = ", ".join(node.name for node in remaining)
                if self.trace is not None:
                    self.trace.emit_timing("flow.stalled", stuck=stuck)
                raise FlowStalled(f"no node can progress (stuck: {stuck})")

    def stats(self) -> FlowStats:
        return FlowStats(
            channels=tuple(
                ChannelStats(
                    name=channel.name,
                    depth=channel.depth,
                    max_occupancy=channel.max_occupancy,
                    total=channel.total,
                )
                for channel in self.channels
            ),
            sweeps=self.sweeps,
        )
