"""Bounded channels: the edges of the streaming dataflow graph.

A :class:`Channel` is a bounded FIFO connecting two
:class:`~repro.flow.nodes.StageNode` instances.  Capacity is the
backpressure mechanism: a producer may only ``put`` while the channel
is not ``full``, so a slow consumer stalls its upstream instead of
letting items pile up.  End-of-stream is signalled by ``close()`` — the
channel-level sentinel — after which ``drained`` tells the consumer no
further items will ever arrive.

Channels also keep occupancy statistics (``max_occupancy``, ``total``)
so tests and benchmarks can assert that buffering really is bounded by
the configured depth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, TypeVar

T = TypeVar("T")


class ChannelError(RuntimeError):
    """A channel contract was violated (overfull put, put after close)."""


class Channel(Generic[T]):
    """A bounded FIFO edge with an end-of-stream sentinel."""

    def __init__(self, name: str, depth: int):
        if depth < 1:
            raise ValueError(f"channel depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._items: Deque[T] = deque()
        self.closed = False
        #: items ever put (throughput accounting)
        self.total = 0
        #: high-water mark of the queue (boundedness accounting)
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def drained(self) -> bool:
        """No item is buffered and none will ever arrive."""
        return self.closed and not self._items

    def put(self, item: T) -> None:
        if self.closed:
            raise ChannelError(f"put on closed channel {self.name!r}")
        if self.full:
            raise ChannelError(
                f"channel {self.name!r} overfull (depth {self.depth})"
            )
        self._items.append(item)
        self.total += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    def get(self) -> T:
        if not self._items:
            raise ChannelError(f"get on empty channel {self.name!r}")
        return self._items.popleft()

    def close(self) -> None:
        """End of stream: the producer will put nothing further."""
        self.closed = True
