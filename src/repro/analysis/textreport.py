"""One-shot full measurement report in plain text.

Composes everything the evaluation section of the paper reports — the
§5.1 funnel, Table 1, Figure 2, Figures 3(a)-(d), the §5.2 TXT
statistic, the case studies, and (in simulation only) the ground-truth
score — into a single printable document.  Used by ``python -m repro
run --full`` and handy for archiving measurement results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.report import MeasurementReport
from ..sandbox.sandbox import SandboxReport
from .casestudy import all_case_studies
from .figures import (
    PAPER_EMAIL_TXT_SHARE,
    PAPER_FIGURE3A,
    PAPER_FIGURE3B,
    PAPER_FIGURE3C,
    PAPER_FIGURE3D,
    PAPER_MALICIOUS_SHARE,
    compare_to_paper,
    figure2,
    figure3a,
    figure3b,
    figure3c,
    figure3d,
    overview_funnel,
)
from .groundtruth import score_against_ground_truth
from .tables import build_table1

_RULE = "=" * 72


def _section(title: str) -> str:
    return f"\n{_RULE}\n{title}\n{_RULE}\n"


def render_full_report(
    report: MeasurementReport,
    sandbox_reports: Sequence[SandboxReport] = (),
    nameserver_provider: Optional[Dict[str, str]] = None,
    world: Optional["object"] = None,
    title: str = "URHunter measurement report",
) -> str:
    """Render the complete evaluation document.

    ``sandbox_reports`` + ``nameserver_provider`` enable the case-study
    section; ``world`` enables the ground-truth section.
    """
    parts = [title, _RULE]

    # §5.1 overview
    parts.append(_section("Overview (paper §5.1)"))
    funnel = overview_funnel(report)
    for key, value in funnel.items():
        parts.append(f"  {key:12} {value:,}")
    if funnel["suspicious"]:
        share = 100.0 * funnel["malicious"] / funnel["suspicious"]
        parts.append(
            f"\nmalicious share of suspicious: {share:.2f}% "
            f"(paper: {PAPER_MALICIOUS_SHARE:.2f}%)"
        )
    if report.false_negative_rate is not None:
        parts.append(
            f"§4.2 validation false-negative rate: "
            f"{report.false_negative_rate:.4f} (paper: 0.0)"
        )

    # Table 1
    parts.append(_section("Table 1"))
    parts.append(build_table1(report).text)

    # Figure 2
    parts.append(_section("Figure 2"))
    parts.append(figure2(report).text)

    # Figure 3
    for figure, paper in (
        (figure3a(report), PAPER_FIGURE3A),
        (figure3b(report), PAPER_FIGURE3B),
        (figure3c(report), PAPER_FIGURE3C),
        (figure3d(report), PAPER_FIGURE3D),
    ):
        parts.append(_section(figure.text.splitlines()[0]))
        parts.append("\n".join(figure.text.splitlines()[1:]))
        parts.append("")
        parts.append(compare_to_paper(figure.series, paper))

    # §5.2 TXT statistic
    parts.append(_section("Malicious TXT records (paper §5.2)"))
    parts.append(
        f"email-related share of malicious TXT URs: "
        f"{report.email_related_txt_share():.2f}% "
        f"(paper: {PAPER_EMAIL_TXT_SHARE:.2f}%)"
    )
    parts.append(
        f"TXT URs excluded for lacking a corresponding IP: "
        f"{report.txt_without_ip}"
    )

    # Case studies
    if sandbox_reports and nameserver_provider is not None:
        cases = all_case_studies(
            report, sandbox_reports, nameserver_provider
        )
        if cases:
            parts.append(_section("Case studies (paper §5.3)"))
            for case_name, case in cases.items():
                parts.append(f"[{case_name}]")
                parts.append("  " + case.summary())

    # Ground truth (simulation only)
    if world is not None:
        parts.append(_section("Ground truth (simulation only)"))
        parts.append(score_against_ground_truth(report, world).summary())

    parts.append("")
    return "\n".join(parts)
