"""Table builders: Table 1 (suspicious-UR overview) and Table 2 (hosting
strategies).

Table 1 reads a :class:`~repro.core.report.MeasurementReport`.  Table 2 is
an *active experiment*: it probes live providers with test accounts the
way Appendix C describes (two accounts, ~30 domains, eTLD and unregistered
candidates, duplicate hosting attempts, retrieval attempts) and reports
what the provider allowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.report import MeasurementReport, TypeStats
from ..hosting.policy import PolicyProbeResult
from ..hosting.provider import HostingError, HostingProvider
from .formatting import format_count_with_pct, render_table

#: probe domains per Appendix C: top-100-style SLDs, eTLDs, unregistered
PROBE_SLDS = (
    "probe-popular-a.com",
    "probe-popular-b.net",
    "probe-popular-c.org",
    "probe-popular-d.io",
    "probe-popular-e.co",
)
PROBE_ETLDS = ("gov.cn", "edu.cn", "gov.kp", "edu.kp", "co.uk")
PROBE_UNREGISTERED = (
    "probe-unregistered-a.com",
    "probe-unregistered-b.net",
    "probe-unregistered-c.org",
)
PROBE_SUBDOMAINS = ("api.probe-popular-a.com", "cdn.probe-popular-b.net")


@dataclass
class Table1:
    """The rendered Table 1 plus its raw rows."""

    rows: Dict[str, TypeStats]
    text: str


def build_table1(report: MeasurementReport) -> Table1:
    """Table 1: overview of suspicious URs by record type."""
    stats = report.suspicious_stats()
    headers = (
        "Category",
        "# Domain (mal)",
        "# Nameserver (mal)",
        "# Provider (mal)",
        "# UR (mal)",
        "# IP (mal)",
    )
    rows = []
    for label in ("A", "TXT", "Total"):
        entry = stats[label]
        rows.append(
            (
                label,
                f"{entry.domains_total:,} / "
                + format_count_with_pct(
                    entry.domains_malicious, entry.domains_malicious_pct
                ),
                f"{entry.nameservers_total:,} / "
                + format_count_with_pct(
                    entry.nameservers_malicious,
                    entry.nameservers_malicious_pct,
                ),
                f"{entry.providers_total:,} / "
                + format_count_with_pct(
                    entry.providers_malicious,
                    entry.providers_malicious_pct,
                ),
                f"{entry.urs_total:,} / "
                + format_count_with_pct(
                    entry.urs_malicious, entry.urs_malicious_pct
                ),
                f"{entry.ips_total:,} / "
                + format_count_with_pct(
                    entry.ips_malicious, entry.ips_malicious_pct
                ),
            )
        )
    text = render_table(
        headers,
        rows,
        title="Table 1: Overview of suspicious undelegated records",
    )
    return Table1(rows=stats, text=text)


# ---------------------------------------------------------------------------
# Table 2 — active policy probing
# ---------------------------------------------------------------------------


def probe_provider(provider: HostingProvider) -> PolicyProbeResult:
    """Actively probe one provider with two throwaway accounts.

    Mirrors the Appendix C process: try hosting popular SLDs, eTLDs,
    subdomains and unregistered domains; try duplicate hosting from both
    accounts; try owner retrieval.  Every hosted zone is deleted
    afterwards (the paper's ethics appendix).
    """
    first = provider.create_account(paid=True)
    second = provider.create_account(paid=True)
    created = []

    def attempt(account, domain: str, is_registered: bool = True) -> bool:
        try:
            hosted = provider.host_zone(
                account, domain, is_registered=is_registered
            )
        except HostingError:
            return False
        created.append(hosted)
        # Harmless probe records, as in the paper's ethics protocol.
        provider.add_record(hosted, domain, "A", "127.0.0.1")
        return True

    allows_sld = any(
        attempt(first, domain) for domain in PROBE_SLDS
    )
    allows_etld = any(attempt(first, domain) for domain in PROBE_ETLDS)
    allows_subdomain = any(
        attempt(first, domain) for domain in PROBE_SUBDOMAINS
    )
    allows_unregistered = any(
        attempt(first, domain, is_registered=False)
        for domain in PROBE_UNREGISTERED
    )

    # Duplicate hosting: same account twice, then a second account.
    duplicate_single = attempt(first, PROBE_SLDS[0])
    duplicate_cross = attempt(second, PROBE_SLDS[0])

    # Hosting without verification: did anything get served although the
    # probe domains are not delegated to the provider?
    hosts_without_verification = any(
        any(
            entry.server.hosts_zone(hosted.domain)
            for entry in hosted.nameservers
        )
        for hosted in created
    )

    no_retrieval = not provider.policy.supports_retrieval

    notes = set()
    if provider.policy.reserved:
        notes.add("some tested domains were prohibited from hosting")
    if provider.policy.subdomains_require_payment:
        notes.add("subdomain hosting requires payment")
    if provider.policy.paid_sync_all_nameservers:
        notes.add("paid accounts can sync zones to the whole pool")

    # Ethics: remove everything we hosted.
    for hosted in created:
        provider.delete_zone(hosted)

    return PolicyProbeResult(
        provider=provider.name,
        ns_allocation=provider.policy.ns_allocation,
        hosts_without_verification=hosts_without_verification,
        allows_unregistered=allows_unregistered,
        allows_subdomain=allows_subdomain,
        allows_sld=allows_sld,
        allows_etld=allows_etld,
        duplicate_single_user=duplicate_single,
        duplicate_cross_user=duplicate_cross,
        no_retrieval=no_retrieval,
        notes=frozenset(notes),
    )


@dataclass
class Table2:
    """The rendered Table 2 plus its raw probe results."""

    results: List[PolicyProbeResult]
    text: str


def build_table2(
    providers: Sequence[HostingProvider],
) -> Table2:
    """Probe every provider and render the hosting-strategy matrix."""
    results = [probe_provider(provider) for provider in providers]
    results.sort(key=lambda result: result.provider)

    def mark(value: bool) -> str:
        return "yes" if value else "no"

    headers = (
        "Provider",
        "NS allocation",
        "No verification",
        "Unregistered",
        "Subdomain",
        "SLD",
        "eTLD",
        "Dup single",
        "Dup cross",
        "No retrieval",
    )
    rows = [
        (
            result.provider,
            result.ns_allocation.value,
            mark(result.hosts_without_verification),
            mark(result.allows_unregistered),
            mark(result.allows_subdomain),
            mark(result.allows_sld),
            mark(result.allows_etld),
            mark(result.duplicate_single_user),
            mark(result.duplicate_cross_user),
            mark(result.no_retrieval),
        )
        for result in results
    ]
    text = render_table(
        headers,
        rows,
        title="Table 2: Hosting strategy for common DNS hosting providers",
    )
    return Table2(results=results, text=text)
