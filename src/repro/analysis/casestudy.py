"""Case-study extraction (§5.3).

Given the world's sandbox reports and a measurement report, these
functions reconstruct the paper's three case studies from the observed
evidence — not from ground truth — the way an analyst reading sandbox
output would:

* **Dark.IoT**: which URs the variants resolved, the EmerDNS-to-UR shift;
* **Specter**: URs for ``ibm.com`` / ``api.github.com``, AV detection;
* **masquerading SPF**: nameserver/provider spread, same-/24 IPs,
  alert counts and high-risk traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.report import MeasurementReport
from ..core.txt import classify_txt, extract_ips
from ..dns.rdata import RRType
from ..net.address import same_slash24
from ..sandbox.ids import Severity
from ..sandbox.sandbox import SandboxReport


@dataclass
class FamilyCaseStudy:
    """Evidence about one malware family's UR usage."""

    family: str
    variants: List[str]
    sample_count: int
    #: FQDNs the samples resolved via direct nameserver queries
    ur_domains: List[str]
    #: nameserver IPs the samples queried directly
    nameservers: List[str]
    #: providers of those nameservers (when resolvable)
    providers: List[str]
    #: total AV detections across the samples (0 = fully undetected)
    max_vendor_detections: int
    #: actionable alert count across the family's runs
    alert_count: int
    used_alternative_roots: bool = False

    def summary(self) -> str:
        detection = (
            "undetected by all AV vendors"
            if self.max_vendor_detections == 0
            else f"detected by up to {self.max_vendor_detections} vendors"
        )
        return (
            f"{self.family}: {self.sample_count} samples "
            f"({', '.join(sorted(set(self.variants)))}), URs for "
            f"{', '.join(sorted(set(self.ur_domains)))} via "
            f"{len(set(self.nameservers))} nameservers "
            f"({', '.join(sorted(set(self.providers))) or 'unknown'}); "
            f"{self.alert_count} IDS alerts; {detection}"
        )


def family_case_study(
    family: str,
    reports: Sequence[SandboxReport],
    nameserver_provider: Dict[str, str],
) -> Optional[FamilyCaseStudy]:
    """Build the case study for one malware family from sandbox output."""
    family_reports = [
        report for report in reports if report.sample.family == family
    ]
    if not family_reports:
        return None
    ur_domains: List[str] = []
    nameservers: List[str] = []
    providers: List[str] = []
    variants: List[str] = []
    alert_count = 0
    alternative_roots = False
    for report in family_reports:
        variants.append(report.sample.variant)
        alert_count += len(report.actionable_alerts)
        for flow in report.capture.dns_lookups():
            qname = str(flow.metadata.get("qname"))
            nameserver = flow.dst
            nameservers.append(nameserver)
            provider = nameserver_provider.get(nameserver)
            if provider is not None:
                providers.append(provider)
                if qname not in ur_domains:
                    ur_domains.append(qname)
            else:
                # A lookup at a server outside the measured provider set:
                # an alternative root (EmerDNS) or the default resolver.
                alternative_roots = True
    return FamilyCaseStudy(
        family=family,
        variants=variants,
        sample_count=len(family_reports),
        ur_domains=ur_domains,
        nameservers=sorted(set(nameservers)),
        providers=sorted(set(providers)),
        max_vendor_detections=max(
            report.sample.vendor_detections for report in family_reports
        ),
        alert_count=alert_count,
        used_alternative_roots=alternative_roots,
    )


@dataclass
class SpfCaseStudy:
    """The masquerading-SPF covert-channel evidence."""

    domain: str
    nameserver_count: int
    provider_count: int
    providers: List[str]
    spf_ips: List[str]
    all_in_same_slash24: bool
    sample_count: int
    alert_count: int
    high_risk_alerts: int
    trojan_labeled_samples: int
    undetected_samples: int

    def summary(self) -> str:
        return (
            f"masquerading SPF for {self.domain}: "
            f"{self.nameserver_count} nameservers across "
            f"{self.provider_count} providers "
            f"({', '.join(self.providers)}); "
            f"{len(self.spf_ips)} IPs"
            + (" in the same /24" if self.all_in_same_slash24 else "")
            + f"; {self.sample_count} samples, {self.alert_count} alerts "
            f"({self.high_risk_alerts} high-risk); "
            f"{self.trojan_labeled_samples} Trojan-labeled, "
            f"{self.undetected_samples} undetected"
        )


def spf_case_study(
    report: MeasurementReport,
    sandbox_reports: Sequence[SandboxReport],
    domain: str = "speedtest.net",
) -> Optional[SpfCaseStudy]:
    """Reconstruct the SPF case study from measurement + sandbox data."""
    spf_entries = [
        entry
        for entry in report.classified
        if str(entry.record.domain) == domain
        and entry.record.rrtype == RRType.TXT
        and entry.is_suspicious
        and classify_txt(entry.record.rdata_text) == "spf"
    ]
    if not spf_entries:
        return None
    nameservers = sorted(
        {entry.record.nameserver_ip for entry in spf_entries}
    )
    providers = sorted({entry.record.provider for entry in spf_entries})
    spf_ips: List[str] = []
    for entry in spf_entries:
        for address in extract_ips(entry.record.rdata_text):
            if address not in spf_ips:
                spf_ips.append(address)
    same_24 = len(spf_ips) > 1 and all(
        same_slash24(spf_ips[0], address) for address in spf_ips[1:]
    )

    related = [
        sandbox_report
        for sandbox_report in sandbox_reports
        if any(
            flow.dst in spf_ips
            for flow in sandbox_report.capture
        )
    ]
    alerts = [
        alert
        for sandbox_report in related
        for alert in sandbox_report.actionable_alerts
        if alert.dst in spf_ips
    ]
    high_risk = [
        alert for alert in alerts if alert.severity >= Severity.HIGH
    ]
    trojan_labeled = sum(
        1
        for sandbox_report in related
        if "Trojan" in sandbox_report.sample.labels
    )
    undetected = sum(
        1
        for sandbox_report in related
        if sandbox_report.sample.vendor_detections == 0
    )
    return SpfCaseStudy(
        domain=domain,
        nameserver_count=len(nameservers),
        provider_count=len(providers),
        providers=providers,
        spf_ips=spf_ips,
        all_in_same_slash24=same_24,
        sample_count=len(related),
        alert_count=len(alerts),
        high_risk_alerts=len(high_risk),
        trojan_labeled_samples=trojan_labeled,
        undetected_samples=undetected,
    )


def all_case_studies(
    report: MeasurementReport,
    sandbox_reports: Sequence[SandboxReport],
    nameserver_provider: Dict[str, str],
) -> Dict[str, object]:
    """Build every §5.3 case study in one call."""
    out: Dict[str, object] = {}
    for family in ("Dark.IoT", "Specter"):
        case = family_case_study(
            family, sandbox_reports, nameserver_provider
        )
        if case is not None:
            out[family] = case
    spf = spf_case_study(report, sandbox_reports)
    if spf is not None:
        out["SPF-masquerade"] = spf
    return out
