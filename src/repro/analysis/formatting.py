"""Plain-text rendering for tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in cells))
        if cells
        else len(headers[index])
        for index in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        headers[index].ljust(widths[index]) for index in range(columns)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(
                row[index].ljust(widths[index]) for index in range(columns)
            )
        )
    return "\n".join(lines)


def render_bar_chart(
    series: Dict[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "%",
) -> str:
    """Render a horizontal bar chart (one bar per key)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(series.values()) or 1.0
    label_width = max(len(key) for key in series)
    for key, value in series.items():
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(
            f"{key.ljust(label_width)} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def render_stacked_shares(
    rows: Dict[str, Dict[str, int]],
    order: Sequence[str],
    title: str = "",
    width: int = 50,
) -> str:
    """Render per-row stacked category proportions (Figure 2 style).

    ``rows`` maps a label to {category: count}; ``order`` fixes the
    category ordering; each row is normalized to ``width`` characters.
    """
    glyphs = {"correct": "c", "protective": "p", "unknown": "?", "malicious": "M"}
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in rows)
    for label, counts in rows.items():
        total = sum(counts.get(category, 0) for category in order)
        if total == 0:
            lines.append(f"{label.ljust(label_width)} | (no URs)")
            continue
        bar = ""
        for category in order:
            share = counts.get(category, 0) / total
            bar += glyphs.get(category, "?") * int(round(width * share))
        lines.append(
            f"{label.ljust(label_width)} | {bar[:width].ljust(width)} "
            f"n={total}"
        )
    legend = ", ".join(
        f"{glyphs.get(category, '?')}={category}" for category in order
    )
    lines.append(f"({legend})")
    return "\n".join(lines)


def format_pct(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}%"


def format_count_with_pct(count: int, pct: float) -> str:
    return f"{count:,} ({pct:.2f}%)"
