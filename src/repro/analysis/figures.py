"""Figure builders: the data series behind Figures 2 and 3(a)-(d).

Each builder returns the raw series plus rendered text so benchmarks can
print paper-comparable output.  The paper's published values ship as
``PAPER_*`` constants for side-by-side comparison in EXPERIMENTS.md and
the benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.records import URCategory
from ..core.report import MeasurementReport
from .formatting import render_bar_chart, render_stacked_shares

#: Paper values for comparison (IMC '23, §5).
PAPER_FIGURE2_PROVIDERS = (
    ("Cloudflare", 3_039_369),
    ("ClouDNS", 90_783),
    ("Amazon", 84_256),
    ("Akamai", 53_100),
    ("NHN Cloud", 23_783),
)
PAPER_FIGURE3A = {"intel": 34.20, "ids": 36.62, "both": 29.18}
PAPER_FIGURE3B = {"1-2": 77.90, "3-4": 16.31, "5-6": 2.01, "7-11": 3.78}
PAPER_FIGURE3C = {
    "Trojan Activity": 41.67,
    "Other": 23.86,
    "Privacy Violation": 21.19,
    "C&C Activity": 10.82,
    "Bad Traffic": 2.46,
}
PAPER_FIGURE3D = {
    "Trojan": 89.01,
    "Scanner": 41.01,
    "Other": 33.33,
    "Malware": 19.11,
    "C&C": 16.25,
    "Botnet": 10.23,
}
PAPER_EMAIL_TXT_SHARE = 90.95
PAPER_MALICIOUS_SHARE = 25.41

_CATEGORY_ORDER = ("correct", "protective", "unknown", "malicious")


@dataclass
class Figure:
    """One rendered figure with its raw series."""

    series: Dict[str, float]
    text: str


@dataclass
class Figure2:
    """Per-provider category mix for the top providers by UR count."""

    rows: List[Tuple[str, Dict[str, int]]]
    text: str


def figure2(report: MeasurementReport, top: int = 5) -> Figure2:
    """Figure 2: categories and proportions of URs, top providers."""
    rows = report.provider_category_mix(top=top)
    text = render_stacked_shares(
        {provider: counts for provider, counts in rows},
        order=_CATEGORY_ORDER,
        title=(
            f"Figure 2: UR categories among the top {top} providers "
            "by UR count"
        ),
    )
    return Figure2(rows=rows, text=text)


def figure3a(report: MeasurementReport) -> Figure:
    """Figure 3(a): why malicious IPs were labeled (intel / IDS / both)."""
    counts = report.label_provenance()
    total = sum(counts.values())
    series = {
        key: (100.0 * value / total if total else 0.0)
        for key, value in counts.items()
    }
    text = render_bar_chart(
        series, title="Figure 3(a): reasons IP addresses were labeled"
    )
    return Figure(series=series, text=text)


def figure3b(report: MeasurementReport) -> Figure:
    """Figure 3(b): how many vendors flag each blacklisted IP."""
    histogram = report.vendor_count_histogram()
    total = sum(histogram.values())
    series = {
        bucket: (100.0 * value / total if total else 0.0)
        for bucket, value in histogram.items()
    }
    text = render_bar_chart(
        series,
        title="Figure 3(b): # security vendors flagging each IP",
    )
    return Figure(series=series, text=text)


def figure3c(report: MeasurementReport) -> Figure:
    """Figure 3(c): IDS alert categories toward malicious IPs."""
    series = report.alert_category_shares()
    text = render_bar_chart(
        series,
        title="Figure 3(c): malicious activities detected in traffic",
    )
    return Figure(series=series, text=text)


def figure3d(report: MeasurementReport) -> Figure:
    """Figure 3(d): vendor tags on malicious IPs (multi-label)."""
    series = report.tag_shares()
    text = render_bar_chart(
        series,
        title="Figure 3(d): tags from security vendors (multi-label)",
    )
    return Figure(series=series, text=text)


def overview_funnel(report: MeasurementReport) -> Dict[str, int]:
    """§5.1's funnel: classified -> suspicious -> malicious."""
    counts = report.category_counts()
    return {
        "unique_urs": len(report.classified),
        "correct": counts[URCategory.CORRECT.value],
        "protective": counts[URCategory.PROTECTIVE.value],
        "suspicious": counts[URCategory.UNKNOWN.value]
        + counts[URCategory.MALICIOUS.value],
        "malicious": counts[URCategory.MALICIOUS.value],
    }


def compare_to_paper(measured: Dict[str, float], paper: Dict[str, float]) -> str:
    """Render a measured-vs-paper comparison block."""
    keys = list(paper)
    for key in measured:
        if key not in keys:
            keys.append(key)
    lines = [f"{'series':24} {'measured':>10} {'paper':>10}"]
    for key in keys:
        lines.append(
            f"{key:24} {measured.get(key, 0.0):9.2f}% "
            f"{paper.get(key, 0.0):9.2f}%"
        )
    return "\n".join(lines)
