"""Ground-truth scoring: what the paper could not measure.

The original study has no ground truth — "there may be under-reporting
in our analysis" is as far as it can go.  In simulation the attacker's
planted records are known exactly, so URHunter's verdicts can be scored:

* **precision** of the malicious label (did any benign UR get flagged?);
* **stage-2 misses** — attacker URs excluded as correct/protective
  (in practice: geo-condition coincidences);
* **under-reporting** — attacker URs that stayed *unknown* because no
  vendor flagged their C2 and no sandbox sample exercised it, the
  paper's own explanation for its 25% malicious share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.records import ClassifiedUR, URCategory
from ..core.report import MeasurementReport


@dataclass
class GroundTruthScore:
    """URHunter verdicts against the attacker's planted-record set."""

    #: attacker URs labeled malicious
    true_positives: int
    #: benign URs labeled malicious
    false_positives: int
    #: attacker URs that stayed unknown (unobservable C2s)
    under_reported: int
    #: attacker URs excluded by stage 2 (correct/protective)
    stage2_misses: int
    #: benign URs correctly not labeled malicious
    true_negatives: int
    #: the stage-2 miss entries, for inspection
    missed_entries: List[ClassifiedUR]

    @property
    def attacker_urs(self) -> int:
        return self.true_positives + self.under_reported + self.stage2_misses

    @property
    def precision(self) -> float:
        """Of the URs labeled malicious, how many are really attacks."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        """Of all attacker URs, how many got the malicious label."""
        return (
            self.true_positives / self.attacker_urs
            if self.attacker_urs
            else 0.0
        )

    @property
    def observable_recall(self) -> float:
        """Recall over attacker URs that survived stage 2 — the share
        evidence *could* have labeled (excludes stage-2 misses)."""
        observable = self.true_positives + self.under_reported
        return self.true_positives / observable if observable else 0.0

    def summary(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"(observable recall={self.observable_recall:.3f}); "
            f"{self.under_reported} attacker URs under-reported, "
            f"{self.stage2_misses} excluded by stage 2"
        )


def score_against_ground_truth(
    report: MeasurementReport, world: "object"
) -> GroundTruthScore:
    """Score a measurement against the world's planted-record identities."""
    identities = world.attacker_identities
    true_positives = 0
    false_positives = 0
    under_reported = 0
    stage2_misses = 0
    true_negatives = 0
    missed: List[ClassifiedUR] = []
    for entry in report.classified:
        identity = (
            entry.record.domain,
            entry.record.rrtype,
            entry.record.rdata_text,
        )
        is_attack = identity in identities
        if entry.category is URCategory.MALICIOUS:
            if is_attack:
                true_positives += 1
            else:
                false_positives += 1
        elif is_attack:
            if entry.category is URCategory.UNKNOWN:
                under_reported += 1
            else:
                stage2_misses += 1
                missed.append(entry)
        else:
            true_negatives += 1
    return GroundTruthScore(
        true_positives=true_positives,
        false_positives=false_positives,
        under_reported=under_reported,
        stage2_misses=stage2_misses,
        true_negatives=true_negatives,
        missed_entries=missed,
    )
