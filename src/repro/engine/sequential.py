"""The naive baseline engine: one task at a time, in order.

This is the behaviour the original ``ResponseCollector`` loop had, with
the policy knobs (pacing, timeout, retry/backoff) made explicit.  Every
wait is dead time: the virtual clock ticks while the single worker sits
out a pacing interval, a timeout, or a backoff — which is exactly what
the batched engine exists to avoid.

Kept both as a correctness oracle (the batched engine must match its
classified output bit for bit on a fault-free scenario) and as the
comparison baseline for the scheduling benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..dns.message import Message
from ..net.network import NetworkError, SimulatedInternet
from ..obs.events import STAGE1 as OBS_STAGE1
from ..resilience.metrics import ResilienceMetrics
from .api import EnginePolicy, OutcomeStatus, QueryOutcome, QueryTask
from .metrics import ScanMetrics
from .ratelimit import RateLimiter


class SequentialEngine:
    """Drive tasks strictly serially over the simulated internet."""

    name = "sequential"

    def __init__(
        self,
        network: SimulatedInternet,
        scanner_ip: str,
        policy: Optional[EnginePolicy] = None,
        metrics: Optional[ScanMetrics] = None,
    ):
        self.network = network
        self.scanner_ip = scanner_ip
        self.policy = policy or EnginePolicy()
        self.metrics = metrics if metrics is not None else ScanMetrics()
        self._limiter = RateLimiter(self.policy.per_server_interval)
        self._query_cache: Dict[Tuple[object, int, bool], Message] = {}
        #: optional repro.obs.RunTrace (budget.exhausted / hedge events)
        self.trace = None
        #: optional resilience controllers (attached by URHunter).  The
        #: serial engine honours budgets and hedging; AIMD is accepted
        #: but inert — with a single lane there is no concurrency to
        #: adapt, and pacing already serializes per-server sends.
        self.budget = None
        self.hedge = None
        self.aimd = None
        self.resilience = ResilienceMetrics()

    # -- QueryEngine protocol ---------------------------------------------

    def execute(self, tasks: Sequence[QueryTask]) -> List[QueryOutcome]:
        outcomes: List[QueryOutcome] = []
        for task in tasks:
            outcomes.append(self._run_task(task))
        return outcomes

    def execute_iter(
        self, tasks: Sequence[QueryTask]
    ) -> Iterator[Tuple[int, QueryOutcome]]:
        """Lazy variant of :meth:`execute` for the streaming dataflow.

        The serial engine completes tasks in submission order, so the
        yielded indices are simply 0, 1, 2, ...; a paused consumer
        pauses the scan (no query is sent until the next pull).
        """
        for index, task in enumerate(tasks):
            yield index, self._run_task(task)

    # -- internals ---------------------------------------------------------

    def _query_for(self, task: QueryTask) -> Message:
        key = (task.qname, task.qtype, task.recursion_desired)
        query = self._query_cache.get(key)
        if query is None:
            query = Message.make_query(
                task.qname,
                task.qtype,
                recursion_desired=task.recursion_desired,
            )
            self._query_cache[key] = query
        return query

    def _run_task(self, task: QueryTask) -> QueryOutcome:
        policy = self.policy
        counters = self.metrics.stage(task.stage)
        network = self.network
        budget = self.budget
        hedge = self.hedge
        if budget is not None:
            budget.begin(network.now)
            budget.enter_phase(task.stage, network.now)
            reason = budget.check(network.now, task.stage)
            if reason is not None:
                counters.shed += 1
                self.resilience.note_shed(reason)
                if budget.announce(task.stage, reason) and (
                    self.trace is not None
                ):
                    self.trace.emit(
                        "budget.exhausted",
                        stage=OBS_STAGE1,
                        phase=task.stage,
                        reason=reason,
                    )
                return QueryOutcome(
                    task=task,
                    status=OutcomeStatus.SHED,
                    attempts=0,
                    completed_at=network.now,
                )
        query = self._query_for(task)
        attempts = 0
        hedging = False
        while True:
            # pacing: the lone worker has nothing to do but wait
            ready = self._limiter.ready_at(task.server_ip, network.now)
            if ready > network.now:
                counters.rate_limit_wait += ready - network.now
                network.tick(ready - network.now)
            self._limiter.take(task.server_ip, network.now)
            attempts += 1
            counters.queries += 1
            sent_at = network.now
            try:
                response = network.query_dns_auto(
                    self.scanner_ip, task.server_ip, query
                )
            except NetworkError:
                response = None
            if response is not None:
                if hedge is not None:
                    hedge.observe(task.server_ip, network.now - sent_at)
                    if hedging:
                        hedge.won += 1
                        self.resilience.hedges_won += 1
                        if self.trace is not None:
                            self.trace.emit(
                                "hedge.won",
                                stage=OBS_STAGE1,
                                scope="nameserver",
                                server=task.server_ip,
                                phase=task.stage,
                            )
                counters.responses += 1
                self.metrics.latency.record(network.now - sent_at)
                return QueryOutcome(
                    task=task,
                    status=OutcomeStatus.ANSWERED,
                    response=response,
                    attempts=attempts,
                    completed_at=network.now,
                )
            counters.timeouts += 1
            # hedging: after the first failure, wait only the hedge
            # delay before the second attempt instead of the full
            # timeout + backoff window (the retry *is* the hedge)
            if (
                hedge is not None
                and not hedging
                and attempts == 1
                and attempts <= policy.retries
            ):
                delay = hedge.delay(task.server_ip)
                network.tick(delay)
                self.metrics.latency.record(network.now - sent_at)
                counters.retries += 1
                hedging = True
                hedge.fired += 1
                self.resilience.hedges_fired += 1
                if self.trace is not None:
                    self.trace.emit(
                        "hedge.fired",
                        stage=OBS_STAGE1,
                        scope="nameserver",
                        server=task.server_ip,
                        phase=task.stage,
                    )
                continue
            if hedging:
                hedging = False
                hedge.wasted += 1
                self.resilience.hedges_wasted += 1
                if self.trace is not None:
                    self.trace.emit(
                        "hedge.wasted",
                        stage=OBS_STAGE1,
                        scope="nameserver",
                        server=task.server_ip,
                        phase=task.stage,
                    )
            # timed out: the scanner waited the full timeout for nothing
            network.tick(policy.timeout)
            self.metrics.latency.record(network.now - sent_at)
            if attempts > policy.retries:
                counters.giveups += 1
                return QueryOutcome(
                    task=task,
                    status=OutcomeStatus.GAVE_UP,
                    attempts=attempts,
                    completed_at=network.now,
                )
            counters.retries += 1
            network.tick(policy.backoff_delay(attempts))
