"""The naive baseline engine: one task at a time, in order.

This is the behaviour the original ``ResponseCollector`` loop had, with
the policy knobs (pacing, timeout, retry/backoff) made explicit.  Every
wait is dead time: the virtual clock ticks while the single worker sits
out a pacing interval, a timeout, or a backoff — which is exactly what
the batched engine exists to avoid.

Kept both as a correctness oracle (the batched engine must match its
classified output bit for bit on a fault-free scenario) and as the
comparison baseline for the scheduling benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..dns.message import Message
from ..net.network import NetworkError, SimulatedInternet
from .api import EnginePolicy, OutcomeStatus, QueryOutcome, QueryTask
from .metrics import ScanMetrics
from .ratelimit import RateLimiter


class SequentialEngine:
    """Drive tasks strictly serially over the simulated internet."""

    name = "sequential"

    def __init__(
        self,
        network: SimulatedInternet,
        scanner_ip: str,
        policy: Optional[EnginePolicy] = None,
        metrics: Optional[ScanMetrics] = None,
    ):
        self.network = network
        self.scanner_ip = scanner_ip
        self.policy = policy or EnginePolicy()
        self.metrics = metrics if metrics is not None else ScanMetrics()
        self._limiter = RateLimiter(self.policy.per_server_interval)
        self._query_cache: Dict[Tuple[object, int, bool], Message] = {}

    # -- QueryEngine protocol ---------------------------------------------

    def execute(self, tasks: Sequence[QueryTask]) -> List[QueryOutcome]:
        outcomes: List[QueryOutcome] = []
        for task in tasks:
            outcomes.append(self._run_task(task))
        return outcomes

    def execute_iter(
        self, tasks: Sequence[QueryTask]
    ) -> Iterator[Tuple[int, QueryOutcome]]:
        """Lazy variant of :meth:`execute` for the streaming dataflow.

        The serial engine completes tasks in submission order, so the
        yielded indices are simply 0, 1, 2, ...; a paused consumer
        pauses the scan (no query is sent until the next pull).
        """
        for index, task in enumerate(tasks):
            yield index, self._run_task(task)

    # -- internals ---------------------------------------------------------

    def _query_for(self, task: QueryTask) -> Message:
        key = (task.qname, task.qtype, task.recursion_desired)
        query = self._query_cache.get(key)
        if query is None:
            query = Message.make_query(
                task.qname,
                task.qtype,
                recursion_desired=task.recursion_desired,
            )
            self._query_cache[key] = query
        return query

    def _run_task(self, task: QueryTask) -> QueryOutcome:
        policy = self.policy
        counters = self.metrics.stage(task.stage)
        network = self.network
        query = self._query_for(task)
        attempts = 0
        while True:
            # pacing: the lone worker has nothing to do but wait
            ready = self._limiter.ready_at(task.server_ip, network.now)
            if ready > network.now:
                counters.rate_limit_wait += ready - network.now
                network.tick(ready - network.now)
            self._limiter.take(task.server_ip, network.now)
            attempts += 1
            counters.queries += 1
            sent_at = network.now
            try:
                response = network.query_dns_auto(
                    self.scanner_ip, task.server_ip, query
                )
            except NetworkError:
                response = None
            if response is not None:
                counters.responses += 1
                self.metrics.latency.record(network.now - sent_at)
                return QueryOutcome(
                    task=task,
                    status=OutcomeStatus.ANSWERED,
                    response=response,
                    attempts=attempts,
                    completed_at=network.now,
                )
            # timed out: the scanner waited the full timeout for nothing
            counters.timeouts += 1
            network.tick(policy.timeout)
            self.metrics.latency.record(network.now - sent_at)
            if attempts > policy.retries:
                counters.giveups += 1
                return QueryOutcome(
                    task=task,
                    status=OutcomeStatus.GAVE_UP,
                    attempts=attempts,
                    completed_at=network.now,
                )
            counters.retries += 1
            network.tick(policy.backoff_delay(attempts))
