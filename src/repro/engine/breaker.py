"""Circuit breaking for dead or flapping nameservers.

A scan of thousands of servers always meets some that are down.  Without
a breaker every task aimed at a dead server burns the full
timeout × (retries + 1) budget; with one, the engine stops paying after
a few consecutive failures and only re-probes after a cool-down.

States follow the classic pattern: CLOSED (healthy) → OPEN (failing,
queries skipped) → HALF_OPEN (one probe allowed) → CLOSED or back OPEN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class _Circuit:
    state: CircuitState = CircuitState.CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0


@dataclass
class CircuitBreaker:
    """Per-server circuits with a shared threshold and reset interval."""

    failure_threshold: int = 5
    reset_interval: float = 60.0
    _circuits: Dict[str, _Circuit] = field(default_factory=dict)

    def _circuit(self, server_ip: str) -> _Circuit:
        circuit = self._circuits.get(server_ip)
        if circuit is None:
            circuit = self._circuits[server_ip] = _Circuit()
        return circuit

    def state(self, server_ip: str) -> CircuitState:
        return self._circuit(server_ip).state

    def allow(self, server_ip: str, now: float) -> bool:
        """May a query be sent to ``server_ip`` right now?

        An OPEN circuit transitions to HALF_OPEN once the reset interval
        elapsed, letting exactly one probe through.
        """
        circuit = self._circuit(server_ip)
        if circuit.state is CircuitState.CLOSED:
            return True
        if circuit.state is CircuitState.HALF_OPEN:
            # one probe is already in flight; hold everything else
            return False
        if now - circuit.opened_at >= self.reset_interval:
            circuit.state = CircuitState.HALF_OPEN
            return True
        return False

    def record_success(self, server_ip: str) -> None:
        circuit = self._circuit(server_ip)
        circuit.consecutive_failures = 0
        circuit.state = CircuitState.CLOSED

    def record_failure(self, server_ip: str, now: float) -> bool:
        """Record one failure; ``True`` when it tripped the circuit.

        The return value marks the CLOSED/HALF_OPEN → OPEN transition,
        so callers can emit exactly one ``breaker.trip`` trace event per
        trip instead of one per failure.
        """
        circuit = self._circuit(server_ip)
        circuit.consecutive_failures += 1
        if circuit.state is CircuitState.HALF_OPEN:
            # the probe failed: straight back to OPEN, timer restarted
            circuit.state = CircuitState.OPEN
            circuit.opened_at = now
            return True
        if (
            circuit.state is CircuitState.CLOSED
            and circuit.consecutive_failures >= self.failure_threshold
        ):
            circuit.state = CircuitState.OPEN
            circuit.opened_at = now
            return True
        return False
