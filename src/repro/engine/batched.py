"""The batched scan engine: sharded lanes over the virtual clock.

The work matrix is sharded into one **lane per nameserver** (a lane is a
FIFO of tasks for that server).  ``policy.max_concurrency`` models the
worker pool of a real scanner: a worker is *held* by a lane awaiting a
socket timeout or retry backoff, but a lane parked on a pacing token
costs nothing (a rate-limit timer is free), so a free worker picks up
the next server instead of idling.  A priority queue keyed by each
lane's *ready time* decides what to send next, and virtual time only
advances when every worker is blocked.  That single property is where
all the throughput comes from: waits overlap instead of summing.

Fault tolerance on top:

* timeouts are retried up to ``policy.retries`` times with exponential
  backoff (the lane keeps working on nothing else meanwhile, exactly
  like a real async worker awaiting a retry timer);
* a per-server circuit breaker opens after
  ``policy.circuit_failure_threshold`` consecutive failures; while open,
  queued tasks for that server are marked ``SKIPPED`` without touching
  the wire, and after ``policy.circuit_reset_interval`` virtual seconds
  one half-open probe decides whether the lane resumes.

On a fault-free scenario with no pacing the schedule degenerates to a
plain traversal and the classified output is identical to
:class:`~repro.engine.sequential.SequentialEngine` — asserted by tests
and the overview benchmark.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from ..dns.message import Message
from ..net.network import NetworkError, SimulatedInternet
from ..obs.events import STAGE1 as OBS_STAGE1
from ..resilience.metrics import ResilienceMetrics
from .api import EnginePolicy, OutcomeStatus, QueryOutcome, QueryTask
from .breaker import CircuitBreaker, CircuitState
from .metrics import ScanMetrics
from .ratelimit import RateLimiter

#: hedge state of the task at the head of a lane
_HEDGE_NONE = 0      # no hedge fired for this task yet
_HEDGE_PENDING = 1   # the in-flight attempt is the hedge
_HEDGE_SPENT = 2     # the hedge also failed; normal retry path


class _Lane:
    """The per-server shard: pending tasks plus retry state for the head."""

    __slots__ = ("server_ip", "queue", "attempts", "hedge", "channel")

    def __init__(self, server_ip: str, channel):
        self.server_ip = server_ip
        self.queue: Deque[Tuple[int, QueryTask]] = deque()
        #: attempts already sent for the task at the head of the queue
        self.attempts = 0
        #: hedge state for the task at the head of the queue
        self.hedge = _HEDGE_NONE
        #: the lane's pinned DNS path — host/fault lookups are resolved
        #: once per topology generation instead of once per query
        self.channel = channel


class BatchedEngine:
    """Shard the task matrix across concurrent worker lanes."""

    name = "batched"

    def __init__(
        self,
        network: SimulatedInternet,
        scanner_ip: str,
        policy: Optional[EnginePolicy] = None,
        metrics: Optional[ScanMetrics] = None,
    ):
        self.network = network
        self.scanner_ip = scanner_ip
        self.policy = policy or EnginePolicy()
        self.metrics = metrics if metrics is not None else ScanMetrics()
        self._limiter = RateLimiter(self.policy.per_server_interval)
        self._breaker = CircuitBreaker(
            failure_threshold=self.policy.circuit_failure_threshold,
            reset_interval=self.policy.circuit_reset_interval,
        )
        self._query_cache: Dict[Tuple[object, int, bool], Message] = {}
        #: optional repro.obs.RunTrace — breaker trips are emitted as
        #: deterministic ``breaker.trip`` events when attached
        self.trace = None
        #: optional resilience controllers (attached by URHunter; all
        #: are strict no-ops when None, and deterministic no-ops on a
        #: healthy world when attached)
        self.budget = None  # repro.resilience.DeadlineBudget
        self.hedge = None   # repro.resilience.HedgeController
        self.aimd = None    # repro.resilience.AimdController
        #: deterministic counters for the resilience layer
        self.resilience = ResilienceMetrics()

    # -- QueryEngine protocol ---------------------------------------------

    def execute(self, tasks: Sequence[QueryTask]) -> List[QueryOutcome]:
        outcomes: List[Optional[QueryOutcome]] = [None] * len(tasks)
        for index, outcome in self.execute_iter(tasks):
            outcomes[index] = outcome
        # Every lane drains before it leaves the scheduler, so each task
        # has an outcome; the assert guards that invariant.
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def execute_iter(
        self, tasks: Sequence[QueryTask]
    ) -> Iterator[Tuple[int, QueryOutcome]]:
        """Lazy scheduler loop: yield each outcome the moment its lane
        completes it.

        Completion order is the lane schedule's order, not task order —
        the yielded index lets a streaming consumer reorder.  The
        generator only advances (and the virtual clock only ticks) when
        the consumer pulls, so an unconsumed scan costs nothing.
        """
        if not tasks:
            return
        network = self.network
        policy = self.policy
        limiter = self._limiter
        pacing = limiter.enabled
        breaker = self._breaker
        latency = self.metrics.latency
        open_channel = network.open_channel
        scanner_ip = self.scanner_ip
        budget = self.budget
        hedge = self.hedge
        aimd = self.aimd
        resilience = self.resilience
        if budget is not None:
            budget.begin(network.now)

        # Shard into lanes, preserving the caller's (randomized) order
        # within each server.
        lanes: Dict[str, _Lane] = {}
        lane_order: List[_Lane] = []
        for index, task in enumerate(tasks):
            lane = lanes.get(task.server_ip)
            if lane is None:
                lane = lanes[task.server_ip] = _Lane(
                    task.server_ip,
                    open_channel(scanner_ip, task.server_ip),
                )
                lane_order.append(lane)
            lane.queue.append((index, task))

        # Two scheduler structures: lanes ready to send rotate through a
        # round-robin deque (the fast path — O(1), no timestamps), while
        # lanes waiting out pacing/backoff/timeout sit in a heap keyed by
        # their ready time.  The clock is only ticked when the ready
        # deque is empty: waits overlap instead of summing.
        unopened = deque(lane_order)
        ready: Deque[_Lane] = deque()
        for _ in range(min(policy.max_concurrency, len(unopened))):
            ready.append(unopened.popleft())
        waiting: List[Tuple[float, int, _Lane, bool]] = []
        sequence = 0
        #: lanes parked on a socket timeout/backoff.  Those hold a
        #: worker; lanes parked on a pacing token do not (a rate-limit
        #: timer is free — the worker picks up another server meanwhile).
        busy = 0

        # per-stage counter cache (task streams are usually single-stage)
        stage_name: Optional[str] = None
        counters = None

        while ready or waiting:
            if ready:
                lane = ready.popleft()
            elif unopened and busy < policy.max_concurrency:
                # every open lane is parked on a timer but workers are
                # free — open the next server instead of idling
                lane = unopened.popleft()
            else:
                ready_at, _, lane, was_socket = heapq.heappop(waiting)
                if was_socket:
                    busy -= 1
                now = network.now
                if ready_at > now and (
                    budget is None or not budget.run_exhausted(now)
                ):
                    # every worker is blocked — advance the world (unless
                    # the run budget is spent: everything left will shed,
                    # so waiting out timers would only inflate the clock)
                    network.tick(ready_at - now)
            if not lane.queue:
                if unopened:
                    ready.append(unopened.popleft())
                continue
            index, task = lane.queue[0]
            if task.stage != stage_name:
                stage_name = task.stage
                counters = self.metrics.stage(stage_name)
                if budget is not None:
                    budget.enter_phase(stage_name, network.now)
            now = network.now
            server_ip = lane.server_ip

            # deadline budgets: shed tasks that have not been sent yet
            # (a pure function of the virtual clock, so batch and stream
            # shed identically)
            if budget is not None:
                reason = budget.check(now, stage_name)
                if reason is not None:
                    lane.queue.popleft()
                    counters.shed += 1
                    resilience.note_shed(reason)
                    if budget.announce(stage_name, reason) and (
                        self.trace is not None
                    ):
                        self.trace.emit(
                            "budget.exhausted",
                            stage=OBS_STAGE1,
                            phase=stage_name,
                            reason=reason,
                        )
                    yield index, QueryOutcome(
                        task=task,
                        status=OutcomeStatus.SHED,
                        attempts=lane.attempts,
                        completed_at=now,
                    )
                    lane.attempts = 0
                    lane.hedge = _HEDGE_NONE
                    ready.append(lane)
                    continue

            provider = getattr(task.tag, "provider", None)
            if pacing or aimd is not None:
                token_ready = (
                    limiter.ready_at(server_ip, now) if pacing else now
                )
                send_ready = token_ready
                if aimd is not None:
                    aimd_ready = aimd.ready_at(server_ip, provider, now)
                    if aimd_ready > send_ready:
                        send_ready = aimd_ready
                if send_ready > now:
                    pace_wait = token_ready - now
                    if pace_wait > 0:
                        counters.rate_limit_wait += pace_wait
                    if send_ready - now > pace_wait:
                        resilience.aimd_wait += send_ready - now - pace_wait
                    heapq.heappush(
                        waiting, (send_ready, sequence, lane, False)
                    )
                    sequence += 1
                    continue

            # circuit breaking: skip without touching the wire while open
            if not breaker.allow(server_ip, now):
                lane.queue.popleft()
                counters.skipped += 1
                yield index, QueryOutcome(
                    task=task,
                    status=OutcomeStatus.SKIPPED,
                    attempts=lane.attempts,
                    completed_at=now,
                )
                lane.attempts = 0
                lane.hedge = _HEDGE_NONE
                ready.append(lane)
                continue

            if pacing:
                limiter.take(server_ip, now)
            if aimd is not None:
                aimd.note_send(server_ip, now)
            lane.attempts += 1
            counters.queries += 1
            sent_at = now
            try:
                response = lane.channel.query_auto(self._query_for(task))
            except NetworkError:
                response = None
            now = network.now

            if response is not None:
                breaker.record_success(server_ip)
                if aimd is not None:
                    aimd.on_success(server_ip, provider)
                if hedge is not None:
                    hedge.observe(server_ip, now - sent_at)
                    if lane.hedge == _HEDGE_PENDING:
                        hedge.won += 1
                        resilience.hedges_won += 1
                        if self.trace is not None:
                            self.trace.emit(
                                "hedge.won",
                                stage=OBS_STAGE1,
                                scope="nameserver",
                                server=server_ip,
                                phase=task.stage,
                            )
                counters.responses += 1
                latency.record(now - sent_at)
                yield index, QueryOutcome(
                    task=task,
                    status=OutcomeStatus.ANSWERED,
                    response=response,
                    attempts=lane.attempts,
                    completed_at=now,
                )
                lane.queue.popleft()
                lane.attempts = 0
                lane.hedge = _HEDGE_NONE
                ready.append(lane)
                continue

            # timed out: the lane is busy until the timeout elapses, but
            # the clock is NOT ticked here — other lanes fill the gap
            counters.timeouts += 1
            if breaker.record_failure(server_ip, now) and (
                self.trace is not None
            ):
                # every engine-driven collection belongs to stage 1
                self.trace.emit(
                    "breaker.trip",
                    stage=OBS_STAGE1,
                    scope="nameserver",
                    server=server_ip,
                    phase=task.stage,
                )
            if aimd is not None and aimd.on_failure(server_ip, provider):
                resilience.aimd_cuts += 1
                if self.trace is not None:
                    self.trace.emit(
                        "aimd.cut",
                        stage=OBS_STAGE1,
                        scope="nameserver",
                        server=server_ip,
                        phase=task.stage,
                    )

            # hedging: instead of waiting out the first attempt's full
            # timeout + backoff window, park only for the (much shorter)
            # per-server hedge delay and fire the second attempt — the
            # retry *is* the hedge, so loss accounting is unchanged
            if (
                hedge is not None
                and lane.hedge == _HEDGE_NONE
                and lane.attempts == 1
                and lane.attempts <= policy.retries
            ):
                delay = hedge.delay(server_ip)
                latency.record(now - sent_at + delay)
                counters.retries += 1
                lane.hedge = _HEDGE_PENDING
                hedge.fired += 1
                resilience.hedges_fired += 1
                if self.trace is not None:
                    self.trace.emit(
                        "hedge.fired",
                        stage=OBS_STAGE1,
                        scope="nameserver",
                        server=server_ip,
                        phase=task.stage,
                    )
                heapq.heappush(waiting, (now + delay, sequence, lane, True))
                busy += 1
                sequence += 1
                continue
            if lane.hedge == _HEDGE_PENDING:
                lane.hedge = _HEDGE_SPENT
                hedge.wasted += 1
                resilience.hedges_wasted += 1
                if self.trace is not None:
                    self.trace.emit(
                        "hedge.wasted",
                        stage=OBS_STAGE1,
                        scope="nameserver",
                        server=server_ip,
                        phase=task.stage,
                    )
            latency.record(now - sent_at + policy.timeout)
            lane_free_at = now + policy.timeout
            if lane.attempts > policy.retries:
                counters.giveups += 1
                yield index, QueryOutcome(
                    task=task,
                    status=OutcomeStatus.GAVE_UP,
                    attempts=lane.attempts,
                    completed_at=lane_free_at,
                )
                lane.queue.popleft()
                lane.attempts = 0
                lane.hedge = _HEDGE_NONE
            else:
                counters.retries += 1
                lane_free_at += policy.backoff_delay(lane.attempts)
            heapq.heappush(waiting, (lane_free_at, sequence, lane, True))
            busy += 1
            sequence += 1

    # -- internals ---------------------------------------------------------

    def _query_for(self, task: QueryTask) -> Message:
        key = (task.qname, task.qtype, task.recursion_desired)
        query = self._query_cache.get(key)
        if query is None:
            query = Message.make_query(
                task.qname,
                task.qtype,
                recursion_desired=task.recursion_desired,
            )
            self._query_cache[key] = query
        return query

    # -- diagnostics --------------------------------------------------------

    def circuit_state(self, server_ip: str) -> CircuitState:
        """Expose breaker state for tests and reporting."""
        return self._breaker.state(server_ip)
