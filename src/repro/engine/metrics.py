"""Scan observability: counters and latency distributions.

At the paper's scale (~17.8M queries), loss accounting *is* result
quality: a silent 2% giveup rate on one provider skews every per-provider
statistic downstream.  :class:`ScanMetrics` therefore tallies, per
stage-1 collection, everything the engine did — queries, responses,
timeouts, retries, giveups, circuit-breaker skips, pacing waits — plus a
histogram of per-query virtual latency.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

#: histogram bucket upper bounds in seconds (last bucket is +inf)
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram over virtual seconds.

    Percentiles are estimated at bucket upper bounds, which is exact
    enough for scan diagnostics and keeps memory constant regardless of
    query volume.
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, seconds: float) -> None:
        self.total += 1
        self.sum += seconds
        self.counts[bisect_left(self.bounds, seconds)] += 1

    def percentile(self, pct: float) -> float:
        """The upper bound of the bucket holding the ``pct`` percentile.

        Percentiles are **bucket-upper-bound estimates**: the true value
        lies somewhere at or below the returned bound (a value exactly
        equal to a bound is counted in the bucket whose upper bound it
        is).  Edge semantics:

        * an empty histogram returns ``0.0`` for every ``pct``;
        * ``pct=0`` returns the bound of the smallest **non-empty**
          bucket (the minimum observation's bucket), never the bound of
          an empty leading bucket;
        * observations above the largest bound live in the overflow
          bucket, whose estimate is ``inf``.
        """
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self.total == 0:
            return 0.0
        threshold = pct / 100.0 * self.total
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            # ``running > 0`` keeps pct=0 (threshold 0) off empty
            # leading buckets: the answer is the first occupied bucket
            if running > 0 and running >= threshold:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum


@dataclass
class StageCounters:
    """Everything one stage-1 collection did on the wire."""

    #: attempts actually sent (retries included)
    queries: int = 0
    #: attempts that came back with a response (any rcode)
    responses: int = 0
    #: attempts that timed out
    timeouts: int = 0
    #: re-sends after a timeout
    retries: int = 0
    #: tasks abandoned after exhausting the retry budget
    giveups: int = 0
    #: tasks never sent because the server's circuit was open
    skipped: int = 0
    #: tasks never sent because a deadline budget shed them
    shed: int = 0
    #: virtual seconds spent honoring the per-server pacing interval
    rate_limit_wait: float = 0.0

    def merge(self, other: "StageCounters") -> None:
        self.queries += other.queries
        self.responses += other.responses
        self.timeouts += other.timeouts
        self.retries += other.retries
        self.giveups += other.giveups
        self.skipped += other.skipped
        self.shed += other.shed
        self.rate_limit_wait += other.rate_limit_wait


@dataclass
class ScanMetrics:
    """Per-stage counters plus a global latency histogram.

    Implements the :class:`repro.obs.metrics.MetricsSnapshot` protocol:
    ``to_dict()`` exposes only deterministic counters (latency is over
    *virtual* seconds, so it is deterministic too) and ``summary()``
    renders the block the byte-compared report embeds.
    """

    #: MetricsSnapshot protocol identity
    name: ClassVar[str] = "scan-engine"
    #: heading the unified renderer prints (legacy report text)
    heading: ClassVar[str] = "scan engine metrics:"

    stages: Dict[str, StageCounters] = field(default_factory=dict)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def stage(self, name: str) -> StageCounters:
        counters = self.stages.get(name)
        if counters is None:
            counters = self.stages[name] = StageCounters()
        return counters

    # -- totals -----------------------------------------------------------

    def _total(self, attribute: str) -> float:
        return sum(
            getattr(counters, attribute) for counters in self.stages.values()
        )

    @property
    def queries(self) -> int:
        return int(self._total("queries"))

    @property
    def responses(self) -> int:
        return int(self._total("responses"))

    @property
    def timeouts(self) -> int:
        return int(self._total("timeouts"))

    @property
    def retries(self) -> int:
        return int(self._total("retries"))

    @property
    def giveups(self) -> int:
        return int(self._total("giveups"))

    @property
    def skipped(self) -> int:
        return int(self._total("skipped"))

    @property
    def shed(self) -> int:
        return int(self._total("shed"))

    @property
    def loss_rate(self) -> float:
        """Fraction of sent attempts that timed out."""
        return self.timeouts / self.queries if self.queries else 0.0

    def merge(self, other: "ScanMetrics") -> None:
        for name, counters in other.stages.items():
            self.stage(name).merge(counters)
        self.latency.merge(other.latency)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic counters for the consolidated metrics document.

        Latency percentiles are bucket-upper-bound estimates (see
        :meth:`LatencyHistogram.percentile`); the overflow bucket's
        ``inf`` estimate serializes as ``None``.
        """
        def _finite(value: float) -> Optional[float]:
            return None if value == float("inf") else value

        return {
            "queries": self.queries,
            "responses": self.responses,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "giveups": self.giveups,
            "skipped": self.skipped,
            "shed": self.shed,
            "loss_rate": self.loss_rate,
            "stages": {
                name: {
                    "queries": counters.queries,
                    "responses": counters.responses,
                    "timeouts": counters.timeouts,
                    "retries": counters.retries,
                    "giveups": counters.giveups,
                    "skipped": counters.skipped,
                    "shed": counters.shed,
                    "rate_limit_wait": counters.rate_limit_wait,
                }
                for name, counters in sorted(self.stages.items())
            },
            "latency": {
                "total": self.latency.total,
                "mean": self.latency.mean,
                "p50": _finite(self.latency.percentile(50)),
                "p90": _finite(self.latency.percentile(90)),
                "p99": _finite(self.latency.percentile(99)),
                "estimate": "bucket-upper-bound",
            },
        }

    # -- presentation ------------------------------------------------------

    def summary(self, indent: str = "") -> str:
        """Multi-line human-readable scan accounting."""
        lines = [
            f"{indent}queries: {self.queries:,}  responses: "
            f"{self.responses:,}  timeouts: {self.timeouts:,}",
            f"{indent}retries: {self.retries:,}  giveups: "
            f"{self.giveups:,}  circuit-skips: {self.skipped:,}",
        ]
        # shed only renders when nonzero so healthy-run report text is
        # unchanged from pre-resilience output
        if self.shed:
            lines.append(f"{indent}shed: {self.shed:,}")
        if self.latency.total:
            lines.append(
                f"{indent}latency p50/p90/p99: "
                f"{_fmt_s(self.latency.percentile(50))}/"
                f"{_fmt_s(self.latency.percentile(90))}/"
                f"{_fmt_s(self.latency.percentile(99))}"
                f"  mean: {_fmt_s(self.latency.mean)}"
            )
        for name in sorted(self.stages):
            counters = self.stages[name]
            lines.append(
                f"{indent}  [{name}] q={counters.queries:,} "
                f"r={counters.responses:,} t={counters.timeouts:,} "
                f"retry={counters.retries:,} giveup={counters.giveups:,} "
                f"skip={counters.skipped:,}"
                + (f" shed={counters.shed:,}" if counters.shed else "")
            )
        return "\n".join(lines)


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds == float("inf"):
        return "inf"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"
