"""Per-server pacing against the virtual clock.

Appendix A of the paper commits to roughly one query per nameserver per
130 seconds.  A token bucket per server enforces exactly that invariant
for any engine: a query may only be sent when the server's bucket holds
a token, and tokens refill at ``1 / interval`` per virtual second.
"""

from __future__ import annotations

from typing import Dict


class TokenBucket:
    """A single server's pacing bucket.

    ``burst`` tokens are available immediately; afterwards one token
    regenerates every ``interval`` virtual seconds.
    """

    __slots__ = ("interval", "capacity", "tokens", "updated_at")

    def __init__(self, interval: float, burst: int = 1):
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.interval = interval
        self.capacity = float(burst)
        self.tokens = float(burst)
        self.updated_at = 0.0

    def _refill(self, now: float) -> None:
        if self.interval <= 0:
            self.tokens = self.capacity
            return
        if now > self.updated_at:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self.updated_at) / self.interval,
            )
        self.updated_at = max(self.updated_at, now)

    def ready_at(self, now: float) -> float:
        """Earliest virtual time a token will be available."""
        if self.interval <= 0:
            return now
        self._refill(now)
        if self.tokens >= 1.0:
            return now
        return now + (1.0 - self.tokens) * self.interval

    def take(self, now: float) -> None:
        """Consume one token; callers must have waited for readiness.

        Taking without a token would silently drive ``tokens`` negative
        and stretch every later pacing wait, so an unsatisfied take is a
        scheduling bug in the caller and raises instead of clamping:
        wait for :meth:`ready_at` first.  A caller that waited exactly
        until :meth:`ready_at` may refill to fractionally under one
        token (float rounding), so readiness is judged with an epsilon
        and the epsilon shortfall is clamped to zero, never negative.
        """
        if self.interval <= 0:
            return
        self._refill(now)
        if self.tokens < 1.0 - 1e-9:
            raise RuntimeError(
                f"token bucket not ready at t={now}: "
                f"{self.tokens:.6f} tokens (wait for ready_at first)"
            )
        self.tokens = max(self.tokens - 1.0, 0.0)

    def penalize(self, now: float) -> None:
        """Debit one token *without* a readiness check.

        Unlike :meth:`take` this may deliberately drive ``tokens``
        negative, pushing :meth:`ready_at` further into the future —
        the cool-down primitive :class:`~repro.pipeline.resilience.SourceGuard`
        uses when an upstream source reports rate-limiting.
        """
        if self.interval <= 0:
            return
        self._refill(now)
        self.tokens -= 1.0


class RateLimiter:
    """Token buckets keyed by server address."""

    def __init__(self, interval: float, burst: int = 1):
        self.interval = interval
        self.burst = burst
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def _bucket(self, server_ip: str) -> TokenBucket:
        bucket = self._buckets.get(server_ip)
        if bucket is None:
            bucket = self._buckets[server_ip] = TokenBucket(
                self.interval, self.burst
            )
        return bucket

    def ready_at(self, server_ip: str, now: float) -> float:
        if not self.enabled:
            return now
        return self._bucket(server_ip).ready_at(now)

    def take(self, server_ip: str, now: float) -> None:
        if not self.enabled:
            return
        self._bucket(server_ip).take(now)

    def penalize(self, server_ip: str, now: float) -> None:
        """Debit without a readiness check (see :meth:`TokenBucket.penalize`)."""
        if not self.enabled:
            return
        self._bucket(server_ip).penalize(now)
