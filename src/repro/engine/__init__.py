"""Pluggable scan engines for stage-1 collection.

The :class:`~repro.engine.api.QueryEngine` protocol decouples *what* the
collector asks from *how* queries are scheduled, paced, retried, and
accounted.  :func:`create_engine` is the registry front door.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..net.network import SimulatedInternet
from .api import (
    EnginePolicy,
    OutcomeStatus,
    QueryEngine,
    QueryOutcome,
    QueryTask,
)
from .batched import BatchedEngine
from .breaker import CircuitBreaker, CircuitState
from .metrics import LatencyHistogram, ScanMetrics, StageCounters
from .ratelimit import RateLimiter, TokenBucket
from .sequential import SequentialEngine

_EngineFactory = Callable[..., QueryEngine]

ENGINE_REGISTRY: Dict[str, _EngineFactory] = {
    "sequential": SequentialEngine,
    "batched": BatchedEngine,
}

#: the engine used when nothing is configured
DEFAULT_ENGINE = "batched"


def create_engine(
    name: str,
    network: SimulatedInternet,
    scanner_ip: str,
    policy: Optional[EnginePolicy] = None,
    metrics: Optional[ScanMetrics] = None,
) -> QueryEngine:
    """Instantiate a registered engine by name."""
    try:
        factory = ENGINE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ENGINE_REGISTRY))
        raise ValueError(f"unknown engine {name!r} (known: {known})")
    return factory(network, scanner_ip, policy=policy, metrics=metrics)


__all__ = [
    "BatchedEngine",
    "CircuitBreaker",
    "CircuitState",
    "DEFAULT_ENGINE",
    "ENGINE_REGISTRY",
    "EnginePolicy",
    "LatencyHistogram",
    "OutcomeStatus",
    "QueryEngine",
    "QueryOutcome",
    "QueryTask",
    "RateLimiter",
    "ScanMetrics",
    "SequentialEngine",
    "StageCounters",
    "TokenBucket",
    "create_engine",
]
