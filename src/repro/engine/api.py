"""The pluggable scan-engine API.

Stage 1 of the pipeline is, at heart, a work matrix: (nameserver ×
domain × qtype) cells, each one DNS query.  The paper's URHunter pushed
~17.8M such cells through 8,941 nameservers under strict pacing; this
module defines the contract any scheduler of that matrix must satisfy so
the collector can stay agnostic of *how* queries are driven.

A :class:`QueryEngine` receives a list of :class:`QueryTask` and returns
one :class:`QueryOutcome` per task.  Policy knobs (retries, timeout,
backoff, pacing, circuit breaking, concurrency) live in
:class:`EnginePolicy`; observability lives in
:class:`~repro.engine.metrics.ScanMetrics`.  Two implementations ship:
:class:`~repro.engine.sequential.SequentialEngine` (the naive baseline)
and :class:`~repro.engine.batched.BatchedEngine` (sharded lanes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..dns.message import Message
from ..dns.name import Name
from .metrics import ScanMetrics


@dataclass(frozen=True, eq=False, slots=True)
class QueryTask:
    """One cell of the scan matrix: a single question for a single server."""

    server_ip: str
    qname: Name
    qtype: int
    #: which stage-1 collection the task belongs to ("protective",
    #: "correct", "ur", ...); keys the per-stage metrics bucket
    stage: str = "ur"
    recursion_desired: bool = False
    #: opaque caller context carried through to the outcome
    tag: Optional[object] = None


class OutcomeStatus(enum.Enum):
    """How a task ended."""

    #: a response (of any rcode) came back
    ANSWERED = "answered"
    #: every attempt timed out
    GAVE_UP = "gave_up"
    #: the task was never sent — the server's circuit was open
    SKIPPED = "skipped"
    #: the task was never sent — a deadline budget shed it
    SHED = "shed"


@dataclass(slots=True)
class QueryOutcome:
    """The result of driving one :class:`QueryTask` to completion."""

    task: QueryTask
    status: OutcomeStatus
    response: Optional[Message] = None
    #: attempts actually sent on the wire (0 for SKIPPED)
    attempts: int = 0
    #: virtual time of the final attempt (or of the skip decision)
    completed_at: float = 0.0

    @property
    def answered(self) -> bool:
        return self.status is OutcomeStatus.ANSWERED


@dataclass
class EnginePolicy:
    """Fault-tolerance and pacing policy shared by all engines.

    Defaults are conservative: a couple of retries with exponential
    backoff, no pacing (``per_server_interval=0``), and a circuit
    breaker that opens after five consecutive failures.
    """

    #: worker lanes the batched engine may keep in flight at once
    max_concurrency: int = 8
    #: re-sends after the first attempt times out
    retries: int = 2
    #: virtual seconds a lost query costs before the scanner gives up
    timeout: float = 5.0
    #: first retry waits this long ...
    backoff_base: float = 0.5
    #: ... and each further retry multiplies the wait by this factor
    backoff_factor: float = 2.0
    #: minimum virtual seconds between queries to one server (ethics
    #: pacing; the paper averaged one query per server per 130 s)
    per_server_interval: float = 0.0
    #: consecutive failures that open a server's circuit
    circuit_failure_threshold: int = 5
    #: virtual seconds an open circuit waits before a half-open probe
    circuit_reset_interval: float = 60.0

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.per_server_interval < 0:
            raise ValueError(
                "per_server_interval must be >= 0, "
                f"got {self.per_server_interval}"
            )
        if self.circuit_failure_threshold < 1:
            raise ValueError(
                "circuit_failure_threshold must be >= 1, "
                f"got {self.circuit_failure_threshold}"
            )
        if self.circuit_reset_interval < 0:
            raise ValueError(
                "circuit_reset_interval must be >= 0, "
                f"got {self.circuit_reset_interval}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (1-based)."""
        return self.backoff_base * (self.backoff_factor ** (attempt - 1))


@runtime_checkable
class QueryEngine(Protocol):
    """Anything that can drive a batch of tasks over the network.

    Engines are interchangeable: the collector hands over the full task
    list (already randomized for ethics) and interprets the outcomes,
    never caring about scheduling, pacing, retries, or failures.
    """

    #: short identifier ("sequential", "batched", ...)
    name: str
    #: cumulative observability counters across execute() calls
    metrics: ScanMetrics

    def execute(self, tasks: Sequence[QueryTask]) -> List[QueryOutcome]:
        """Drive every task to completion; outcomes in task order."""
        ...

    def execute_iter(
        self, tasks: Sequence[QueryTask]
    ) -> Iterator[Tuple[int, QueryOutcome]]:
        """Drive tasks lazily, yielding ``(task_index, outcome)`` pairs.

        Outcomes are yielded in *completion* order, which for a
        concurrent engine differs from task order; the index lets a
        streaming consumer re-establish the deterministic task order
        with a reorder buffer.  Not advancing the generator pauses the
        scan — laziness is the backpressure mechanism of the streaming
        dataflow.  Exactly one pair is yielded per task.
        """
        ...
