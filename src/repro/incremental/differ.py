"""Plan diffing: decide which nameserver groups may replay from store.

Two consumers share this module:

* the **incremental scan path** — :class:`PlanDiffer` partitions the
  current :class:`~repro.plan.scanplan.ScanPlan` against a
  :class:`~repro.incremental.store.GroupResultStore` into groups that
  replay (``hit``) and groups that execute through the shard runner
  (``execute``), with a reason per decision;
* the **``repro plan --diff`` command** — :func:`plan_summary_json`
  dumps a plan's deterministic summary (per-group identities included)
  as JSON, :func:`load_plan_summary` validates one from disk, and
  :func:`diff_plan_summaries` reports added/removed/changed groups
  between two dumps.

Cache-safety rules (the byte-identity argument's load-bearing wall):

* a run with **network faults** installed — a global loss profile,
  per-server profiles, or chaos fault windows — bypasses the store
  entirely: fault draws consume the shared fault RNG, so replaying a
  subset of groups would shift every later draw and silently change
  the re-executed groups (see :func:`run_cacheable`);
* a run whose **stage-2/3 sources** may fault (Flaky wrappers with a
  plan that can fire) bypasses the store too — conservative, since a
  degraded run's provenance must reflect the calls it actually made;
* a **group** is only cacheable when its server address resolves to an
  authoritative server whose answer-relevant state is observable (see
  :func:`~repro.incremental.store.server_fingerprint`); recursive-
  fallback servers never cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .store import (
    GroupResultStore,
    group_identity,
    scan_config_fingerprint,
    server_fingerprint,
    state_digest,
)

__all__ = [
    "PLAN_SUMMARY_VERSION",
    "GroupDecision",
    "PlanDiff",
    "PlanDiffer",
    "PlanSummaryError",
    "run_cacheable",
    "plan_summary_json",
    "load_plan_summary",
    "diff_plan_summaries",
    "render_plan_diff",
]

#: bumped whenever the ``repro plan --json`` layout changes
PLAN_SUMMARY_VERSION = 1


# -- cache safety -----------------------------------------------------------


def _network_is_clean(network: Any) -> bool:
    """No installed fault state that could touch a scan query."""
    if getattr(network, "_global_faults", None) is not None:
        return False
    if getattr(network, "_server_faults", None):
        return False
    if getattr(network, "_fault_windows", None):
        return False
    return True


def _source_deterministic(source: Any) -> bool:
    """True unless the source declares (or implies) fault potential."""
    if source is None:
        return True
    flag = getattr(source, "deterministic", None)
    if flag is not None:
        return bool(flag)
    plan = getattr(source, "plan", None)
    if plan is not None and hasattr(plan, "never_faults"):
        return bool(plan.never_faults)
    return True


def run_cacheable(hunter: Any) -> Tuple[bool, Optional[str]]:
    """Whether this run may populate or hit the result store.

    Returns ``(cacheable, reason)`` — the reason names the first
    violated rule (for the bypass note and ``repro plan`` output).
    """
    if not _network_is_clean(hunter.network):
        return False, "network-faults"
    if not _source_deterministic(getattr(hunter, "pdns", None)):
        return False, "nondeterministic-source:pdns"
    if not _source_deterministic(getattr(hunter, "stage2_ipinfo", None)):
        return False, "nondeterministic-source:ipinfo"
    intel = getattr(hunter, "intel", None)
    for vendor in getattr(intel, "vendors", ()):
        if not _source_deterministic(vendor):
            return False, f"nondeterministic-source:{vendor.name}"
    return True, None


# -- per-group partitioning -------------------------------------------------


@dataclass(frozen=True)
class GroupDecision:
    """One group's replay-vs-execute verdict, with provenance."""

    group: int
    server_ip: str
    #: content address of the group (None when uncacheable)
    identity: Optional[str]
    #: full state digest (None when uncacheable)
    digest: Optional[str]
    #: ``hit`` (replay from store) or ``execute`` (shard runner)
    action: str
    #: ``stored`` | ``miss`` | ``stale`` | ``uncacheable``
    reason: str


@dataclass
class PlanDiff:
    """The partition of a plan against a store."""

    decisions: List[GroupDecision]
    #: decoded-payload map for the ``hit`` groups, by group index
    replayed: Dict[int, Dict[str, Any]]

    @property
    def hits(self) -> int:
        return len(self.replayed)

    @property
    def dirty(self) -> int:
        return len(self.decisions) - len(self.replayed)


class PlanDiffer:
    """Partition a plan's groups into store hits and dirty executions."""

    def __init__(self, store: GroupResultStore):
        self.store = store

    def decide(
        self, plan: Any, group: Any, network: Any, config_fp: str, provider: str
    ) -> Tuple[GroupDecision, Optional[Dict[str, Any]]]:
        """One group's decision plus its stored payload on a hit."""
        server = server_fingerprint(network, group.server_ip)
        if server is None:
            self.store.stats["uncacheable"] += 1
            return (
                GroupDecision(
                    group=group.index,
                    server_ip=group.server_ip,
                    identity=None,
                    digest=None,
                    action="execute",
                    reason="uncacheable",
                ),
                None,
            )
        identity = group_identity(plan, group)
        digest = state_digest(identity, server, provider, config_fp)
        payload = self.store.get(identity, digest)
        if payload is not None:
            reason = "stored"
            action = "hit"
        else:
            # the store already counted miss vs invalidate; re-derive
            # the reason from the slot's existence for the decision
            reason = (
                "stale"
                if self.store._group_file(identity).exists()
                else "miss"
            )
            action = "execute"
        return (
            GroupDecision(
                group=group.index,
                server_ip=group.server_ip,
                identity=identity,
                digest=digest,
                action=action,
                reason=reason,
            ),
            payload,
        )

    def partition(
        self,
        plan: Any,
        network: Any,
        config: Any,
        providers: Optional[Dict[str, str]] = None,
    ) -> PlanDiff:
        """Decide every group of ``plan`` against the store.

        ``providers`` maps server address to provider name (the policy
        fingerprint component); missing entries key as ``"unknown"``.
        """
        config_fp = scan_config_fingerprint(config)
        providers = providers or {}
        decisions: List[GroupDecision] = []
        replayed: Dict[int, Dict[str, Any]] = {}
        for group in plan.groups:
            decision, payload = self.decide(
                plan,
                group,
                network,
                config_fp,
                providers.get(group.server_ip, "unknown"),
            )
            decisions.append(decision)
            if payload is not None:
                replayed[group.index] = payload
        return PlanDiff(decisions=decisions, replayed=replayed)


# -- plan summary JSON (repro plan --json / --diff) -------------------------


class PlanSummaryError(ValueError):
    """A plan-summary JSON file is unreadable or malformed."""


def plan_summary_json(plan: Any) -> Dict[str, Any]:
    """The deterministic plan summary as a JSON document.

    Covers exactly what :meth:`ScanPlan.summary` prints plus the
    per-group content identities, so two dumps of the same plan are
    byte-identical and two different plans diff structurally.
    """
    counts = plan.unit_counts()
    return {
        "format": PLAN_SUMMARY_VERSION,
        "plan": plan.plan_hash,
        "seed": plan.seed,
        "probe_domain": plan.probe_domain.to_text(),
        "scanner_ip": plan.scanner_ip,
        "query_types": [int(qt) for qt in plan.query_types],
        "counts": counts,
        "groups": [
            {
                "index": group.index,
                "server": group.server_ip,
                "units": len(group.unit_indices),
                "identity": group_identity(plan, group),
            }
            for group in plan.groups
        ],
    }


def load_plan_summary(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a ``repro plan --json`` dump."""
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise PlanSummaryError(f"cannot read plan summary: {error}")
    except json.JSONDecodeError as error:
        raise PlanSummaryError(f"malformed plan summary JSON: {error}")
    if not isinstance(payload, dict):
        raise PlanSummaryError("malformed plan summary: not an object")
    if payload.get("format") != PLAN_SUMMARY_VERSION:
        raise PlanSummaryError(
            f"unsupported plan summary format {payload.get('format')!r} "
            f"(expected {PLAN_SUMMARY_VERSION})"
        )
    groups = payload.get("groups")
    if not isinstance(groups, list):
        raise PlanSummaryError("malformed plan summary: missing groups")
    for group in groups:
        if not isinstance(group, dict) or not {
            "server",
            "identity",
            "units",
        } <= group.keys():
            raise PlanSummaryError(
                "malformed plan summary: bad group entry"
            )
    return payload


def diff_plan_summaries(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, Any]:
    """Structural diff of two plan summaries, keyed by server address.

    ``changed`` lists servers present in both whose group identity
    moved (different query units aimed at the same nameserver).
    """
    old_groups = {group["server"]: group for group in old["groups"]}
    new_groups = {group["server"]: group for group in new["groups"]}
    added = sorted(set(new_groups) - set(old_groups))
    removed = sorted(set(old_groups) - set(new_groups))
    changed = sorted(
        server
        for server in set(old_groups) & set(new_groups)
        if old_groups[server]["identity"] != new_groups[server]["identity"]
    )
    unchanged = len(set(old_groups) & set(new_groups)) - len(changed)
    return {
        "plans": {"old": old.get("plan"), "new": new.get("plan")},
        "identical": old.get("plan") == new.get("plan"),
        "added": added,
        "removed": removed,
        "changed": changed,
        "unchanged": unchanged,
    }


def render_plan_diff(diff: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_plan_summaries`."""
    lines = [
        f"plan diff: old {diff['plans']['old']}",
        f"           new {diff['plans']['new']}",
    ]
    if diff["identical"]:
        lines.append("  plans are identical")
        return "\n".join(lines)
    lines.append(
        f"  +{len(diff['added'])} groups added, "
        f"-{len(diff['removed'])} removed, "
        f"{len(diff['changed'])} changed, "
        f"{diff['unchanged']} unchanged"
    )
    for label in ("added", "removed", "changed"):
        for server in diff[label]:
            lines.append(f"    {label}: {server}")
    return "\n".join(lines)
