"""The content-addressed group result store.

A longitudinal deployment re-runs the same scan plan over a slowly
changing world: most nameserver groups answer exactly as they did last
round.  :class:`GroupResultStore` persists each group's merged outcome
(the encoded :class:`~repro.plan.shards.GroupResult`: reduced
responses, buffered trace events, ScanMetrics/resilience slices) under
a two-level key:

* the **identity** — a digest over the group's :class:`QueryUnit`
  identities (server, qname, qtype, RD bit) — names the file, so one
  group maps to one slot across runs of the same plan;
* the **state digest** — a digest over the identity *plus* everything
  that may change a group's answers between runs: the serving
  :class:`~repro.dns.server.AuthoritativeServer`'s generation stamp and
  per-zone serials, its unhosted policy and protective records, its
  online bit, and the scan-shaping config fingerprint — decides whether
  the slot may be replayed.

A stored digest equal to the current one is a **hit** (replay, no
queries); a stored file under a different digest is an **invalidate**
(the world moved — re-execute and overwrite); no file is a **miss**.
The classification epoch is deliberately *not* part of the digest:
group results carry only epoch-relative values (elapsed times, latency
deltas, clock-free deterministic events), so a group replayed thirty
virtual days later composes byte-identically — that is the whole point
of the warm run.

Writes are atomic (temp file + ``os.replace``), mirroring the
checkpoint store.  This module is a leaf: it imports nothing from the
rest of :mod:`repro`, so the plan layer can import it lazily without
cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "STORE_FORMAT_VERSION",
    "GroupResultStore",
    "group_identity",
    "server_fingerprint",
    "scan_config_fingerprint",
    "state_digest",
]

#: bumped whenever the stored payload or key derivation changes — a
#: version bump orphans every old slot (safe: orphans read as misses)
STORE_FORMAT_VERSION = 1

#: per-group result files: ``group-<identity>.json``
GROUP_PREFIX = "group-"

#: the store's run-counter sidecar (CI uploads it as an artifact)
STATS_FILE = "store-stats.json"


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def group_identity(plan: Any, group: Any) -> str:
    """The content address of one nameserver group.

    Derived from the group's :class:`QueryUnit` identities in planned
    scan order — the same structural tuple the plan hash covers — so it
    is invariant under shard count, worker count, engine, execution
    mode, and dict iteration order, and stable across runs of the same
    plan.
    """
    return _digest(
        {
            "version": STORE_FORMAT_VERSION,
            "server": group.server_ip,
            "units": [
                plan.ur_units[index].identity()
                for index in group.unit_indices
            ],
        }
    )


def server_fingerprint(network: Any, server_ip: str) -> Optional[Dict[str, Any]]:
    """Everything about the serving nameserver that can change answers.

    Returns ``None`` when the address does not resolve to an
    authoritative server with observable state (the group is then
    uncacheable), and for servers with a ``recursive`` unhosted policy —
    their answers depend on the wider network through the fallback
    resolver, which no per-server stamp can witness.
    """
    service = network.dns_hosts().get(server_ip)
    if service is None:
        return None
    zones = getattr(service, "zones", None)
    generation = getattr(service, "generation", None)
    policy = getattr(service, "unhosted_policy", None)
    if zones is None or generation is None or policy is None:
        return None
    policy_value = getattr(policy, "value", str(policy))
    if policy_value == "recursive" or getattr(
        service, "recursive_fallback", None
    ) is not None:
        return None
    return {
        "generation": generation,
        "zones": sorted(
            [zone.origin.to_text(), zone.serial] for zone in zones
        ),
        "policy": policy_value,
        "protective": sorted(
            [int(rrtype), rdata.to_text()]
            for rrtype, rdata in getattr(service, "protective_records", ())
        ),
        "online": bool(network.is_online(server_ip)),
    }


#: config knobs that shape what a group's scan computes — anything that
#: can change a single query's outcome or the group's reduced counters.
#: Over-keying is safe (a spurious re-execute); under-keying is not.
SCAN_SHAPING_KNOBS = (
    "seed",
    "scanner_ip",
    "probe_domain",
    "query_types",
    "engine",
    "max_concurrency",
    "retries",
    "timeout",
    "per_server_interval",
    "run_deadline",
    "stage_deadline",
    "hedge_delay",
    "aimd",
)


def scan_config_fingerprint(config: Any) -> str:
    """Digest of the scan-shaping config knobs (see the tuple above)."""
    knobs: Dict[str, Any] = {}
    for knob in SCAN_SHAPING_KNOBS:
        value = getattr(config, knob, None)
        if isinstance(value, tuple):
            value = [int(item) for item in value]
        knobs[knob] = value
    return _digest({"version": STORE_FORMAT_VERSION, "knobs": knobs})


def state_digest(
    identity: str, server: Dict[str, Any], provider: str, config_fp: str
) -> str:
    """The full replay-safety digest of one group slot."""
    return _digest(
        {
            "version": STORE_FORMAT_VERSION,
            "identity": identity,
            "server": server,
            "provider": provider,
            "config": config_fp,
        }
    )


class GroupResultStore:
    """One directory of per-group result files plus run counters.

    Payloads are the JSON-safe dicts produced by
    :func:`~repro.plan.shards.encode_group_result` — the same encoding
    shard partials and the process-pool wire format use — so replaying
    a slot is exactly the merge path a freshly executed group takes.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: run-scoped counters (reset per process, persisted on demand)
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "invalidated": 0,
            "stored": 0,
            "uncacheable": 0,
            "bypassed_runs": 0,
        }

    def _group_file(self, identity: str) -> Path:
        return self.path / f"{GROUP_PREFIX}{identity}.json"

    # -- slots -------------------------------------------------------------

    def get(
        self, identity: str, digest: str
    ) -> Optional[Dict[str, Any]]:
        """The stored payload when the slot matches ``digest``, else None.

        Counts a hit, a miss (no slot), or an invalidate (stale slot —
        the caller re-executes and :meth:`put` overwrites it).
        """
        path = self._group_file(identity)
        try:
            with path.open("r", encoding="utf-8") as handle:
                slot = json.load(handle)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, json.JSONDecodeError):
            # a torn or unreadable slot degrades to a miss, never an abort
            self.stats["misses"] += 1
            return None
        if (
            slot.get("format") != STORE_FORMAT_VERSION
            or slot.get("digest") != digest
        ):
            self.stats["invalidated"] += 1
            return None
        self.stats["hits"] += 1
        return slot["group"]

    def put(
        self, identity: str, digest: str, payload: Dict[str, Any]
    ) -> None:
        """Persist one freshly executed group under its current digest."""
        self.path.mkdir(parents=True, exist_ok=True)
        self._write(
            self._group_file(identity),
            {
                "format": STORE_FORMAT_VERSION,
                "identity": identity,
                "digest": digest,
                "group": payload,
            },
        )
        self.stats["stored"] += 1

    def identities(self) -> List[str]:
        """All stored slot identities (sorted, for inspection/tests)."""
        return sorted(
            path.name[len(GROUP_PREFIX) : -len(".json")]
            for path in self.path.glob(f"{GROUP_PREFIX}*.json")
        )

    # -- stats -------------------------------------------------------------

    def write_stats(self) -> Path:
        """Persist the run counters next to the slots (CI artifact)."""
        self.path.mkdir(parents=True, exist_ok=True)
        target = self.path / STATS_FILE
        self._write(
            target,
            {
                "format": STORE_FORMAT_VERSION,
                "slots": len(self.identities()),
                **self.stats,
            },
        )
        return target

    # -- raw io ------------------------------------------------------------

    @staticmethod
    def _write(path: Path, payload: Dict[str, Any]) -> None:
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
