"""Incremental re-scans: reuse unchanged group results across runs.

The longitudinal workload the paper cares about re-runs the same scan
plan over a slowly changing world.  This package adds the reuse layer
on top of the scan-plan IR (:mod:`repro.plan`): a content-addressed
:class:`GroupResultStore` persisting each nameserver group's merged
outcome, and a :class:`PlanDiffer` partitioning the current plan into
``hit`` (replay from store) vs ``execute`` (run through the shard
runner).  The shard runner's clock/RNG pinning guarantees replayed and
re-executed groups compose into byte-identical reports, traces, and
deterministic metrics versus a cold full scan — see DESIGN §15.
"""

from .differ import (
    PLAN_SUMMARY_VERSION,
    GroupDecision,
    PlanDiff,
    PlanDiffer,
    PlanSummaryError,
    diff_plan_summaries,
    load_plan_summary,
    plan_summary_json,
    render_plan_diff,
    run_cacheable,
)
from .store import (
    STORE_FORMAT_VERSION,
    GroupResultStore,
    group_identity,
    scan_config_fingerprint,
    server_fingerprint,
    state_digest,
)

__all__ = [
    "PLAN_SUMMARY_VERSION",
    "STORE_FORMAT_VERSION",
    "GroupDecision",
    "GroupResultStore",
    "PlanDiff",
    "PlanDiffer",
    "PlanSummaryError",
    "diff_plan_summaries",
    "group_identity",
    "load_plan_summary",
    "plan_summary_json",
    "render_plan_diff",
    "run_cacheable",
    "scan_config_fingerprint",
    "server_fingerprint",
    "state_digest",
]
