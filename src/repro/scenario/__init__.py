"""Scenario layer: synthetic top list, attacker model, world generation."""

from .attacker import (
    ATTACKER_COUNTRIES,
    Attacker,
    AttackerCampaign,
    C2Server,
    PlantedRecord,
)
from .config import ScenarioConfig, paper_scale_config, small_config
from .related import (
    DanglingTakeover,
    ShadowedDomain,
    attempt_dangling_takeover,
    create_dangling_delegation,
    resolves_to,
    shadow_domain,
)
from .tranco import DEFAULT_PINS, TrancoEntry, TrancoList, generate_tranco
from .world import (
    ATTACKER_PROVIDER_WEIGHTS,
    HEADLINE_HOSTING_WEIGHTS,
    World,
    build_world,
)

__all__ = [
    "ATTACKER_COUNTRIES",
    "ATTACKER_PROVIDER_WEIGHTS",
    "Attacker",
    "AttackerCampaign",
    "C2Server",
    "DanglingTakeover",
    "DEFAULT_PINS",
    "HEADLINE_HOSTING_WEIGHTS",
    "PlantedRecord",
    "ScenarioConfig",
    "ShadowedDomain",
    "TrancoEntry",
    "TrancoList",
    "World",
    "attempt_dangling_takeover",
    "create_dangling_delegation",
    "build_world",
    "generate_tranco",
    "paper_scale_config",
    "resolves_to",
    "shadow_domain",
    "small_config",
]
