"""Scenario configuration.

One :class:`ScenarioConfig` fully determines a simulated world — every
random draw flows from ``seed``.  The defaults produce a laptop-scale
world (~10^2 domains x ~10^2 nameservers) whose *shapes* match the
paper's measurement; the benchmarks scale these knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass
class ScenarioConfig:
    """All knobs of the simulated internet."""

    seed: int = 7

    # -- topology -----------------------------------------------------------
    #: size of the synthetic top list (the paper's "top 1M" proxy)
    top_list_size: int = 400
    #: how many best-ranked domains URHunter measures (the paper: 2K)
    target_domains: int = 120
    #: long-tail providers in addition to the 11 headline ones
    longtail_providers: int = 8
    #: open resolvers available as vantage points (the paper: 3K)
    open_resolvers: int = 24
    #: fraction of open resolvers that manipulate answers
    manipulated_resolver_fraction: float = 0.08

    # -- legitimate hosting -----------------------------------------------------
    #: fraction of top domains hosted on one of the headline providers
    headline_hosting_fraction: float = 0.55
    #: fraction of top domains that switched providers in the past,
    #: leaving a stale (still-served) zone at the old provider
    past_delegation_fraction: float = 0.10
    #: fraction of provider nameservers misconfigured as open recursives
    misconfigured_recursive_fraction: float = 0.05
    #: IPs per domain's legitimate origin set
    origins_per_domain: Tuple[int, int] = (1, 3)

    # -- attacker activity --------------------------------------------------------
    #: independent generic campaigns planting URs
    attacker_campaigns: int = 26
    #: (min, max) domains targeted per campaign
    domains_per_campaign: Tuple[int, int] = (2, 6)
    #: (min, max) providers used per campaign
    providers_per_campaign: Tuple[int, int] = (1, 3)
    #: probability a campaign also plants TXT (command / SPF-shaped) URs
    txt_campaign_probability: float = 0.35
    #: probability an attacker C2 IP is observable at all (threat intel
    #: or a sandboxed sample); the rest stay "unknown" — the paper's
    #: under-reporting discussion
    c2_observable_probability: float = 0.30
    #: split of observed C2s: (intel only, ids only, both) — Figure 3(a)
    observation_split: Tuple[float, float, float] = (0.342, 0.366, 0.292)
    #: generic-sample behaviour mix, shaped to Figure 3(c):
    #: (trojan, scanner/other, exfil, c2, bad-traffic)
    behaviour_mix: Tuple[float, float, float, float, float] = (
        0.42,
        0.24,
        0.21,
        0.10,
        0.03,
    )
    #: benign sandbox samples (false-positive pressure)
    benign_samples: int = 6

    # -- threat intel -------------------------------------------------------------
    #: number of vendors in the fleet (paper: up to 11 flag one IP)
    vendor_count: int = 11
    #: Figure 3(b) bucket weights for how many vendors flag an IP
    vendor_count_weights: Tuple[float, float, float, float] = (
        0.779,
        0.163,
        0.020,
        0.038,
    )
    #: Figure 3(d) per-tag probabilities (multi-label)
    tag_probabilities: Tuple[Tuple[str, float], ...] = (
        ("Trojan", 0.89),
        ("Scanner", 0.41),
        ("Other", 0.33),
        ("Malware", 0.19),
        ("C&C", 0.16),
        ("Botnet", 0.10),
    )

    # -- measurement ---------------------------------------------------------------
    #: a nameserver must host at least this many top-list domains to be
    #: targeted (the paper: >50 of the top 1M)
    min_hosted_domains: int = 1
    #: include the post-disclosure provider mitigations
    post_disclosure: bool = False
    #: include the three §5.3 case-study campaigns
    include_case_studies: bool = True

    def __post_init__(self) -> None:
        if self.target_domains > self.top_list_size:
            raise ValueError(
                "target_domains cannot exceed top_list_size "
                f"({self.target_domains} > {self.top_list_size})"
            )
        if abs(sum(self.observation_split) - 1.0) > 1e-6:
            raise ValueError("observation_split must sum to 1")
        if abs(sum(self.behaviour_mix) - 1.0) > 1e-6:
            raise ValueError("behaviour_mix must sum to 1")
        if abs(sum(self.vendor_count_weights) - 1.0) > 1e-6:
            raise ValueError("vendor_count_weights must sum to 1")


def small_config(seed: int = 7) -> ScenarioConfig:
    """A fast configuration for unit tests."""
    return ScenarioConfig(
        seed=seed,
        top_list_size=120,
        target_domains=40,
        longtail_providers=3,
        open_resolvers=8,
        attacker_campaigns=10,
        benign_samples=2,
    )


def paper_scale_config(seed: int = 7) -> ScenarioConfig:
    """A larger configuration for the benchmark harness."""
    return ScenarioConfig(
        seed=seed,
        top_list_size=1200,
        target_domains=300,
        longtail_providers=20,
        open_resolvers=60,
        attacker_campaigns=45,
        benign_samples=10,
    )
