"""World generation: assemble a full simulated internet from a config.

:func:`build_world` produces everything URHunter needs, in dependency
order:

1. network + DNS root + public-suffix TLDs;
2. hosting providers (headline presets + sampled long tail);
3. the synthetic top list, legitimately hosted and delegated (including
   past-delegation leftovers and misconfigured recursive nameservers);
4. worldwide open resolvers (a few manipulated);
5. the attacker: generic campaigns plus the three §5.3 case studies;
6. threat-intel flagging calibrated to Figures 3(b)/3(d);
7. sandbox detonation of every sample.

Everything is driven by one seeded RNG, so a config maps to exactly one
world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..dns.message import Message
from ..dns.name import Name, name
from ..dns.rdata import RRType
from ..dns.resolver import OpenResolver, RecursiveResolver
from ..dns.server import UnhostedPolicy
from ..hosting.presets import build_headline_providers, make_longtail_provider
from ..hosting.provider import HostingProvider
from ..hosting.registry import DnsRoot
from ..intel.aggregator import ThreatIntelAggregator
from ..intel.ipinfo import HttpPage, IpInfoDatabase
from ..intel.pdns import PassiveDnsStore
from ..intel.vendor import SecurityVendor, default_vendor_fleet
from ..net.address import AddressPool, PrefixPlanner
from ..net.network import SimulatedInternet
from ..sandbox.families import (
    UrTarget,
    make_benign_updater,
    make_darkiot_2021_variants,
    make_darkiot_2023_variant,
    make_generic_badtraffic,
    make_generic_c2,
    make_generic_exfil,
    make_generic_scanner,
    make_generic_trojan,
    make_micropsia_samples,
    make_specter_variants,
    make_tesla_samples,
)
from ..sandbox.malware import MalwareSample
from ..sandbox.sandbox import Sandbox, SandboxReport
from ..core.collector import DomainTarget, NameserverTarget
from .attacker import Attacker, AttackerCampaign, PlantedRecord
from .config import ScenarioConfig
from .tranco import TrancoList, generate_tranco

#: legitimate-hosting weights across the headline providers (Cloudflare
#: heavy, mirroring real market share and Figure 2's UR volume ordering)
HEADLINE_HOSTING_WEIGHTS = {
    "Cloudflare": 0.34,
    "Amazon": 0.16,
    "Godaddy": 0.12,
    "Akamai": 0.08,
    "Tencent Cloud": 0.06,
    "Alibaba Cloud": 0.06,
    "ClouDNS": 0.05,
    "Namecheap": 0.05,
    "Baidu Cloud": 0.03,
    "NHN Cloud": 0.03,
    "CSC": 0.02,
}

#: providers attackers prefer for generic campaigns (permissive policies)
ATTACKER_PROVIDER_WEIGHTS = {
    "ClouDNS": 0.26,
    "Amazon": 0.22,
    "Cloudflare": 0.16,
    "Namecheap": 0.12,
    "Godaddy": 0.10,
    "Tencent Cloud": 0.07,
    "Alibaba Cloud": 0.07,
}

_LEGIT_OPERATORS = (
    ("HostCo US-East", "US"),
    ("HostCo US-West", "US"),
    ("RheinHosting", "DE"),
    ("SakuraDC", "JP"),
    ("PandaCloud", "CN"),
    ("GallicNet", "FR"),
    ("ThamesHosting", "GB"),
    ("TulipServers", "NL"),
    ("LionCity DC", "SG"),
    ("MapleHost", "CA"),
)

_ATTACKER_ASNS = (
    ("BulletProof Net", "RU"),
    ("OffshoreVPS", "SC"),
    ("GreyCloud", "NL"),
)

#: domains the §5.3 case studies must be able to squat on ClouDNS /
#: Namecheap / CSC; the scenario keeps legitimate owners and parkers off
#: those providers for these names
CASE_STUDY_DOMAINS = frozenset(
    {
        "github.com",
        "gitlab.com",
        "pastebin.com",
        "ibm.com",
        "speedtest.net",
    }
)
CASE_STUDY_PROVIDERS = frozenset({"ClouDNS", "Namecheap", "CSC"})

EMERDNS_IP = "198.18.200.1"
AD_SERVER_IP = "198.18.100.1"


@dataclass
class World:
    """Everything :func:`build_world` assembled."""

    config: ScenarioConfig
    network: SimulatedInternet
    root: DnsRoot
    planner: PrefixPlanner
    providers: Dict[str, HostingProvider]
    tranco: TrancoList
    domain_targets: List[DomainTarget]
    nameserver_targets: List[NameserverTarget]
    delegated_to: Dict[Name, Set[str]]
    open_resolver_ips: List[str]
    open_resolvers: List[OpenResolver]
    ipinfo: IpInfoDatabase
    pdns: PassiveDnsStore
    vendors: List[SecurityVendor]
    intel: ThreatIntelAggregator
    attacker: Attacker
    sandbox: Sandbox
    sandbox_reports: List[SandboxReport]
    samples: List[MalwareSample]
    case_studies: Dict[str, AttackerCampaign]
    #: ground truth: (domain, rrtype, rdata) triples the attacker planted
    attacker_identities: Set[Tuple[Name, int, str]]

    def provider_of_nameserver(self, address: str) -> Optional[str]:
        for target in self.nameserver_targets:
            if target.address == address:
                return target.provider
        return None

    def is_attacker_record(
        self, domain: Name, rrtype: int, rdata_text: str
    ) -> bool:
        """Ground-truth check used by precision/recall tests."""
        return (domain, rrtype, rdata_text) in self.attacker_identities


def build_world(config: Optional[ScenarioConfig] = None) -> World:
    """Assemble a complete simulated world from ``config``."""
    config = config or ScenarioConfig()
    builder = _WorldBuilder(config)
    return builder.build()


class _WorldBuilder:
    """Stateful assembly, split into readable steps."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.network = SimulatedInternet()
        self.root = DnsRoot(self.network)
        self.planner = PrefixPlanner()
        self.ipinfo = IpInfoDatabase()
        self.pdns = PassiveDnsStore()
        self.vendors = default_vendor_fleet(config.vendor_count)
        self.intel = ThreatIntelAggregator(self.vendors)
        self.providers: Dict[str, HostingProvider] = {}
        self.tranco: Optional[TrancoList] = None
        self.delegated_to: Dict[Name, Set[str]] = {}
        self.samples: List[MalwareSample] = []
        self.case_studies: Dict[str, AttackerCampaign] = {}
        self._operator_pools: List[Tuple[AddressPool, str, str, int]] = []
        self._owner_accounts: Dict[str, object] = {}
        # Simulated epoch: "now" sits well past zero so past-delegation
        # history has somewhere to live.
        self.network.tick(1_000_000.0)

    # -- step 1+2: providers ---------------------------------------------------

    def _build_providers(self) -> None:
        self.providers = build_headline_providers(
            self.network,
            self.planner,
            post_disclosure=self.config.post_disclosure,
        )
        for index in range(self.config.longtail_providers):
            pool = self.planner.pool(f"longtail-{index}")
            provider = make_longtail_provider(
                index, self.network, pool, self.rng
            )
            self.providers[provider.name] = provider
        for asn_offset, provider in enumerate(self.providers.values()):
            self.root.connect_provider(provider)
            provider.delegation_lookup = self.root.delegation_of
        # Legit origin-hosting operators with distinct AS/country.
        for index, (operator, country) in enumerate(_LEGIT_OPERATORS):
            pool = self.planner.pool(operator)
            asn = 64500 + index
            for prefix in pool.prefixes:
                self.ipinfo.register_prefix(
                    prefix.cidr, asn, operator, country
                )
            self._operator_pools.append((pool, operator, country, asn))

    # -- step 3: legitimate hosting ------------------------------------------------

    def _provider_for_rank(self) -> HostingProvider:
        if self.rng.random() < self.config.headline_hosting_fraction:
            names = list(HEADLINE_HOSTING_WEIGHTS)
            weights = [HEADLINE_HOSTING_WEIGHTS[key] for key in names]
            return self.providers[self.rng.choices(names, weights)[0]]
        longtail = [
            provider
            for key, provider in self.providers.items()
            if key.startswith("Provider-")
        ]
        if not longtail:
            return self.providers["Godaddy"]
        return self.rng.choice(longtail)

    def _host_legitimately(
        self,
        domain: Name,
        provider: HostingProvider,
        origin_ips: List[str],
        spf_value: str,
        timestamp: float,
    ):
        account = provider.create_account()
        hosted = provider.host_zone(account, domain, is_registered=True)
        for address in origin_ips:
            provider.add_record(hosted, domain, "A", address)
            self.pdns.observe(domain, RRType.A, address, timestamp)
        for sub in ("www", "api"):
            provider.add_record(
                hosted, domain.prepend(sub), "A", origin_ips[0]
            )
            self.pdns.observe(
                domain.prepend(sub), RRType.A, origin_ips[0], timestamp
            )
        provider.add_record(hosted, domain, "TXT", f'"{spf_value}"')
        self.pdns.observe(domain, RRType.TXT, spf_value, timestamp)
        mx_value = f"10 mail.{domain}."
        provider.add_record(hosted, domain, "MX", mx_value)
        provider.add_record(hosted, domain.prepend("mail"), "A", origin_ips[0])
        self.pdns.observe(domain, RRType.MX, mx_value, timestamp)
        return hosted

    def _build_legitimate_hosting(self) -> None:
        assert self.tranco is not None
        now = self.network.now
        for entry in self.tranco:
            domain = entry.domain
            operator_pool, operator, country, asn = self.rng.choice(
                self._operator_pools
            )
            origin_count = self.rng.randint(*self.config.origins_per_domain)
            origin_ips = []
            for _ in range(origin_count):
                address = operator_pool.allocate()
                self.ipinfo.register_host(
                    address,
                    cert_org=f"{domain} Inc",
                    http=HttpPage(
                        status=200,
                        title=f"Welcome to {domain}",
                        body=f"The official site of {domain}.",
                    ),
                )
                origin_ips.append(address)
            spf_value = f"v=spf1 ip4:{origin_ips[0]} -all"
            self.root.register(domain, registrant=f"owner-{entry.rank}")

            # Optional past delegation: an older provider still serving a
            # stale zone with the *previous* origin addresses.  The move
            # was a full infrastructure change (different operator, no
            # TLS anymore), so only the passive-DNS condition can
            # recognise these as correct records.
            if self.rng.random() < self.config.past_delegation_fraction:
                old_provider = self._provider_for_rank()
                if (
                    self.config.include_case_studies
                    and str(domain) in CASE_STUDY_DOMAINS
                ):
                    while old_provider.name in CASE_STUDY_PROVIDERS:
                        old_provider = self._provider_for_rank()
                old_operator_pool, _, old_country, _ = self.rng.choice(
                    [
                        candidate
                        for candidate in self._operator_pools
                        if candidate[2] != country
                    ]
                    or self._operator_pools
                )
                old_address = old_operator_pool.allocate()
                self.ipinfo.register_host(
                    old_address,
                    cert_org=None,
                    http=HttpPage(status=200, title=f"{domain} (legacy)"),
                )
                try:
                    old_account = old_provider.create_account()
                    old_zone = old_provider.host_zone(
                        old_account, domain, is_registered=True
                    )
                    old_provider.add_record(
                        old_zone, domain, "A", old_address
                    )
                    past = now - 2 * 365 * 24 * 3600.0
                    self.pdns.observe(domain, RRType.A, old_address, past)
                    self.pdns.observe_delegation(
                        domain,
                        [str(n) for n in old_zone.nameserver_names()],
                        past,
                    )
                except Exception:
                    pass  # old provider refused (reserved list etc.)

            provider = self._provider_for_rank()
            if (
                self.config.include_case_studies
                and str(domain) in CASE_STUDY_DOMAINS
            ):
                while provider.name in CASE_STUDY_PROVIDERS:
                    provider = self._provider_for_rank()
            try:
                hosted = self._host_legitimately(
                    domain, provider, origin_ips, spf_value, now
                )
            except Exception:
                # First choice refused (reserved list, duplicate with a
                # stale zone, ...): walk the other providers until one
                # accepts, keeping case-study domains off their case
                # providers.
                hosted = None
                for fallback in self.providers.values():
                    if fallback is provider:
                        continue
                    if (
                        self.config.include_case_studies
                        and str(domain) in CASE_STUDY_DOMAINS
                        and fallback.name in CASE_STUDY_PROVIDERS
                    ):
                        continue
                    try:
                        hosted = self._host_legitimately(
                            domain, fallback, origin_ips, spf_value, now
                        )
                    except Exception:
                        continue
                    provider = fallback
                    break
                if hosted is None:
                    continue
            ns_set = provider.nameserver_set_for_delegation(hosted)
            self.root.delegate(domain, ns_set)
            self.pdns.observe_delegation(
                domain, [str(ns) for ns, _ in ns_set], now
            )
            self.delegated_to[domain] = {
                address for _, address in ns_set
            }

    # -- step 3b: squatters / domain parkers --------------------------------------

    def _build_squatters(self) -> None:
        """Parking actors host zones for popular domains they don't own.

        Their URs point at parking pages, which URHunter's HTTP-keyword
        condition (Appendix B) excludes as correct records — false-positive
        pressure on the exclusion stage.
        """
        assert self.tranco is not None
        parking_pool = self.planner.pool("parking")
        self.ipinfo.register_prefix(
            parking_pool.prefixes[0].cidr, 64900, "ParkingLot Inc", "US"
        )
        weights = {
            "Amazon": 0.55,
            "Godaddy": 0.25,
            "ClouDNS": 0.10,
        }
        names = list(weights)
        parked_ips = []
        for _ in range(4):
            address = parking_pool.allocate()
            self.ipinfo.register_host(
                address, cert_org="ParkingLot Inc", http=HttpPage.parked()
            )
            parked_ips.append(address)
        for entry in self.tranco.top(self.config.target_domains):
            if self.rng.random() >= 0.35:
                continue
            if (
                self.config.include_case_studies
                and str(entry.domain) in CASE_STUDY_DOMAINS
            ):
                continue
            provider = self.providers[
                self.rng.choices(names, [weights[key] for key in names])[0]
            ]
            try:
                account = provider.create_account()
                hosted = provider.host_zone(
                    account, entry.domain, is_registered=True
                )
            except Exception:
                continue
            provider.add_record(
                hosted, entry.domain, "A", self.rng.choice(parked_ips)
            )
            if self.rng.random() < 0.5:
                provider.add_record(
                    hosted, entry.domain, "TXT", '"v=spf1 -all"'
                )

    # -- step 3c: misconfigured recursive nameservers ----------------------------

    def _misconfigure_recursives(self) -> None:
        fallback_resolver = RecursiveResolver(
            "198.18.250.1", self.network, self.root.root_addresses
        )

        def recursive_lookup(qname, qtype):
            try:
                return fallback_resolver.resolve(qname, qtype)
            except Exception:
                return None

        for provider in self.providers.values():
            if not provider.name.startswith("Provider-"):
                continue
            for entry in provider.pool:
                if (
                    self.rng.random()
                    < self.config.misconfigured_recursive_fraction
                    and entry.server.unhosted_policy
                    is UnhostedPolicy.REFUSED
                ):
                    entry.server.unhosted_policy = UnhostedPolicy.RECURSIVE
                    entry.server.recursive_fallback = recursive_lookup

    # -- step 4: open resolvers -------------------------------------------------

    def _build_open_resolvers(self) -> Tuple[List[str], List[OpenResolver]]:
        pool = self.planner.pool("open-resolvers")
        countries = ("US", "DE", "BR", "IN", "JP", "ZA", "FR", "KR")
        resolvers: List[OpenResolver] = []
        addresses: List[str] = []
        self.ipinfo.register_host(AD_SERVER_IP, cert_org="AdTech Inc")
        manipulated_budget = int(
            round(
                self.config.open_resolvers
                * self.config.manipulated_resolver_fraction
            )
        )
        for index in range(self.config.open_resolvers):
            address = pool.allocate()
            rewriter = None
            if index < manipulated_budget:
                rewriter = _make_ad_rewriter(AD_SERVER_IP)
            resolver = OpenResolver(
                address,
                self.network,
                self.root.root_addresses,
                rewriter=rewriter,
                country=countries[index % len(countries)],
            )
            self.network.register_dns_host(address, resolver)
            resolvers.append(resolver)
            addresses.append(address)
        return addresses, resolvers

    # -- step 5: attacker ---------------------------------------------------------

    def _build_attacker(self) -> Attacker:
        c2_pool = AddressPool(label="attacker", rotate=True)
        for index, (operator, country) in enumerate(_ATTACKER_ASNS):
            block = self.planner.next_slash16(operator)
            c2_pool.add_prefix(block)
            self.ipinfo.register_prefix(
                block, 65000 + index, operator, country
            )
        return Attacker(self.network, c2_pool, rng=self.rng)

    def _attacker_provider(self) -> HostingProvider:
        names = [
            key
            for key in ATTACKER_PROVIDER_WEIGHTS
            if key in self.providers
        ]
        weights = [ATTACKER_PROVIDER_WEIGHTS[key] for key in names]
        return self.providers[self.rng.choices(names, weights)[0]]

    def _flag_ip_in_intel(self, address: str) -> None:
        """Blacklist ``address`` with Figure 3(b)/3(d)-calibrated noise."""
        buckets = ((1, 2), (3, 4), (5, 6), (7, 11))
        low, high = self.rng.choices(
            buckets, weights=self.config.vendor_count_weights
        )[0]
        high = min(high, len(self.vendors))
        low = min(low, high)
        count = self.rng.randint(low, high)
        tags = [
            tag
            for tag, probability in self.config.tag_probabilities
            if self.rng.random() < probability
        ]
        if not tags:
            tags = ["Other"]
        flagged = self.rng.sample(self.vendors, count)
        for vendor in flagged:
            vendor.flag(address, tags, timestamp=self.network.now)

    def _behaviour_plan(self, total: int) -> List[str]:
        """Apportion ``total`` samples across behaviours per the config
        mix, deterministically (largest-remainder), so small worlds still
        land on the Figure 3(c) proportions."""
        kinds = ("trojan", "scanner", "exfil", "c2", "badtraffic")
        quotas = [weight * total for weight in self.config.behaviour_mix]
        counts = [int(quota) for quota in quotas]
        remainders = sorted(
            range(len(kinds)),
            key=lambda index: quotas[index] - counts[index],
            reverse=True,
        )
        for index in remainders[: total - sum(counts)]:
            counts[index] += 1
        plan: List[str] = []
        for kind, count in zip(kinds, counts):
            plan.extend([kind] * count)
        # Interleave rather than blocking, so truncation keeps the mix.
        self.rng.shuffle(plan)
        return plan

    def _sample_for_behaviour(
        self, index: int, kind: str, ur_target: UrTarget
    ) -> MalwareSample:
        if kind == "trojan":
            return make_generic_trojan(index, ur_target)
        if kind == "scanner":
            return make_generic_scanner(index, ur_target)
        if kind == "exfil":
            return make_generic_exfil(index, ur_target)
        if kind == "c2":
            return make_generic_c2(index, ur_target)
        return make_generic_badtraffic(index, ur_target)

    def _build_generic_campaigns(self, attacker: Attacker) -> None:
        assert self.tranco is not None
        target_domains = [
            entry.domain
            for entry in self.tranco.top(self.config.target_domains)
        ]
        # Phase 1: plant everything, remembering which campaign owns each
        # C2 address.
        campaign_of_c2: Dict[str, AttackerCampaign] = {}
        for campaign_index in range(self.config.attacker_campaigns):
            provider_count = self.rng.randint(
                *self.config.providers_per_campaign
            )
            campaign_providers: List[HostingProvider] = []
            while len(campaign_providers) < provider_count:
                candidate = self._attacker_provider()
                if candidate not in campaign_providers:
                    campaign_providers.append(candidate)
            campaign = attacker.new_campaign(
                f"campaign-{campaign_index:03d}",
                [provider.name for provider in campaign_providers],
            )
            c2_ips = attacker.stand_up_c2(self.rng.randint(1, 2))
            for address in c2_ips:
                self.ipinfo.register_host(address, cert_org=None)
                campaign_of_c2[address] = campaign
            domain_count = self.rng.randint(
                *self.config.domains_per_campaign
            )
            domains = self.rng.sample(
                target_domains, min(domain_count, len(target_domains))
            )
            a_domains = domains[: max(1, len(domains) * 2 // 3)]
            txt_domains = domains[len(a_domains):]
            for domain in a_domains:
                c2_ip = self.rng.choice(c2_ips)
                for provider in campaign_providers:
                    hosted = attacker.plant_a_record(
                        campaign, provider, str(domain), c2_ip
                    )
                    if hosted is None:
                        continue
                    # A minority of TXT URs ride the same zone as an A UR
                    # (exercising §4.3's co-hosting join).
                    if self.rng.random() < 0.03:
                        blob = f"cmd={self.rng.getrandbits(80):020x}"
                        attacker.plant_txt_record(
                            campaign, provider, str(domain), blob
                        )
                    # Rarely, an MX UR for SMTP-based channels (measured
                    # only when the future-work MX sweep is enabled).
                    if self.rng.random() < 0.05:
                        provider.add_record(
                            hosted,
                            str(domain),
                            "MX",
                            f"10 relay.{domain}.",
                        )
                        campaign.planted.append(
                            PlantedRecord(
                                domain=domain,
                                rrtype=RRType.MX,
                                rdata_text=f"10 relay.{domain}.",
                                provider=provider.name,
                            )
                        )
            # TXT-only planting on separate domains: mostly opaque command
            # blobs with no embedded IP (the paper excludes those from
            # maliciousness analysis, so they stay "unknown"); a minority
            # masquerade as SPF/DMARC with the C2 embedded.
            for domain in txt_domains:
                if self.rng.random() >= self.config.txt_campaign_probability:
                    continue
                c2_ip = self.rng.choice(c2_ips)
                provider = self.rng.choice(campaign_providers)
                roll = self.rng.random()
                if roll < 0.30:
                    attacker.plant_txt_record(
                        campaign,
                        provider,
                        str(domain),
                        f"v=spf1 ip4:{c2_ip} ~all",
                        embedded_ips=[c2_ip],
                    )
                elif roll < 0.45:
                    attacker.plant_txt_record(
                        campaign,
                        provider,
                        str(domain),
                        (
                            "v=DMARC1; p=none; rua=mailto:rua@"
                            f"{domain}; fo={c2_ip}"
                        ),
                        embedded_ips=[c2_ip],
                    )
                else:
                    blob = (
                        f"cmd={self.rng.getrandbits(80):020x}"
                        f";k={self.rng.getrandbits(64):016x}"
                    )
                    attacker.plant_txt_record(
                        campaign, provider, str(domain), blob
                    )
        # Phase 2: stratified observability — exactly the configured
        # fraction of generic C2s is observable, split per Figure 3(a).
        all_c2s = sorted(campaign_of_c2)
        self.rng.shuffle(all_c2s)
        observable_count = int(
            round(len(all_c2s) * self.config.c2_observable_probability)
        )
        observable = all_c2s[:observable_count]
        intel_share, ids_share, both_share = self.config.observation_split
        # The case studies contribute fixed provenance (Dark.IoT and the
        # SPF campaign are intel+IDS "both"; Specter is IDS-only), which
        # would skew Figure 3(a) at small scale — compensate by shifting
        # the generic allocation so the *overall* split tracks the config.
        case_both = 5 if self.config.include_case_studies else 0
        case_ids = 1 if self.config.include_case_studies else 0
        grand_total = len(observable) + case_both + case_ids
        intel_count = round(grand_total * intel_share)
        ids_count = max(round(grand_total * ids_share) - case_ids, 0)
        intel_count = min(intel_count, len(observable))
        ids_count = min(ids_count, len(observable) - intel_count)
        intel_cut = intel_count
        ids_cut = intel_cut + ids_count
        ids_total = len(observable) - intel_cut
        behaviour_plan = self._behaviour_plan(max(ids_total, 0))
        sample_index = 0
        for position, address in enumerate(observable):
            if position < intel_cut:
                mode = "intel"
            elif position < ids_cut:
                mode = "ids"
            else:
                mode = "both"
            campaign = campaign_of_c2[address]
            if mode in ("intel", "both"):
                self._flag_ip_in_intel(address)
            if mode in ("ids", "both"):
                planted_for_ip = [
                    record
                    for record in campaign.planted
                    if record.rdata_text == address
                    and record.rrtype == RRType.A
                ]
                if not planted_for_ip:
                    continue
                record = self.rng.choice(planted_for_ip)
                nameserver_ips = _nameservers_serving(
                    campaign, record.domain, record.provider
                )
                if not nameserver_ips:
                    continue
                ur_target = UrTarget(
                    domain=str(record.domain),
                    nameserver_ips=nameserver_ips,
                )
                kind = (
                    behaviour_plan[sample_index % len(behaviour_plan)]
                    if behaviour_plan
                    else "trojan"
                )
                sample = self._sample_for_behaviour(
                    sample_index, kind, ur_target
                )
                sample_index += 1
                campaign.samples.append(sample)
                self.samples.append(sample)

    # -- step 5b: case studies ------------------------------------------------------

    def _build_case_studies(self, attacker: Attacker) -> None:
        cloudns = self.providers["ClouDNS"]
        namecheap = self.providers["Namecheap"]
        csc = self.providers["CSC"]

        # EmerDNS: an alternative-root resolver serving OpenNIC zones.
        from ..dns.server import AuthoritativeServer
        from ..dns.zone import zone_from_records

        emer_c2 = attacker.stand_up_c2(1)[0]
        self.ipinfo.register_host(emer_c2, cert_org=None)
        emer_server = AuthoritativeServer("dns.emercoin.sim")
        emer_server.load_zone(
            zone_from_records(
                "dark.libre", [("dark.libre", "A", emer_c2)]
            )
        )
        self.network.register_dns_host(EMERDNS_IP, emer_server)

        # --- Dark.IoT ---
        darkiot = attacker.new_campaign("Dark.IoT", ["ClouDNS"])
        darkiot_c2_old = attacker.stand_up_c2(1)[0]
        darkiot_c2_new = attacker.stand_up_c2(1)[0]
        for address in (darkiot_c2_old, darkiot_c2_new):
            self.ipinfo.register_host(address, cert_org=None)
            self._flag_ip_in_intel(address)
        gitlab_zone = attacker.plant_a_record(
            darkiot, cloudns, "api.gitlab.com", darkiot_c2_old
        )
        pastebin_zone = attacker.plant_a_record(
            darkiot, cloudns, "raw.pastebin.com", darkiot_c2_new
        )
        opennic_zone = attacker.plant_a_record(
            darkiot, cloudns, "dark.libre", darkiot_c2_new,
            is_registered=False,
        )
        assert gitlab_zone is not None and pastebin_zone is not None
        assert opennic_zone is not None
        gitlab_target = UrTarget(
            "api.gitlab.com", gitlab_zone.nameserver_addresses()
        )
        pastebin_target = UrTarget(
            "raw.pastebin.com", pastebin_zone.nameserver_addresses()
        )
        opennic_target = UrTarget(
            "dark.libre", opennic_zone.nameserver_addresses()
        )
        darkiot.samples.extend(
            make_darkiot_2021_variants(gitlab_target, EMERDNS_IP)
        )
        darkiot.samples.append(
            make_darkiot_2023_variant(pastebin_target, opennic_target)
        )
        self.samples.extend(darkiot.samples)
        self.case_studies["Dark.IoT"] = darkiot

        # --- Specter ---
        specter = attacker.new_campaign("Specter", ["ClouDNS"])
        specter_c2 = attacker.stand_up_c2(1)[0]
        self.ipinfo.register_host(specter_c2, cert_org=None)
        # Deliberately NOT flagged in intel: IDS-only evidence, matching
        # the paper's "not flagged by 74 mainstream vendors".
        ibm_zone = attacker.plant_a_record(
            specter, cloudns, "ibm.com", specter_c2
        )
        github_zone = attacker.plant_a_record(
            specter, cloudns, "api.github.com", specter_c2
        )
        assert ibm_zone is not None and github_zone is not None
        specter.samples.extend(
            make_specter_variants(
                UrTarget("ibm.com", ibm_zone.nameserver_addresses()),
                UrTarget(
                    "api.github.com", github_zone.nameserver_addresses()
                ),
            )
        )
        self.samples.extend(specter.samples)
        self.case_studies["Specter"] = specter

        # --- Masquerading SPF ---
        spf = attacker.new_campaign(
            "SPF-masquerade", ["Namecheap", "CSC"]
        )
        mail_ips = attacker.stand_up_c2_same_slash24(3)
        for address in mail_ips:
            self.ipinfo.register_host(address, cert_org=None)
            self._flag_ip_in_intel(address)
        spf_value = (
            "v=spf1 "
            + " ".join(f"ip4:{address}" for address in mail_ips)
            + " -all"
        )
        spf_zones = []
        for provider in (namecheap, csc):
            hosted = attacker.plant_txt_record(
                spf, provider, "speedtest.net", spf_value,
                embedded_ips=mail_ips,
            )
            if hosted is not None:
                spf_zones.append(hosted)
        nameserver_ips = [
            address
            for hosted in spf_zones
            for address in hosted.nameserver_addresses()
        ]
        spf_target = UrTarget("speedtest.net", nameserver_ips)
        spf.samples.extend(make_micropsia_samples(spf_target, count=2))
        spf.samples.extend(
            make_tesla_samples(spf_target, count=4, detected=3)
        )
        self.samples.extend(spf.samples)
        self.case_studies["SPF-masquerade"] = spf

    # -- step 6: sandbox ------------------------------------------------------------

    def _detonate(self, open_resolver_ips: List[str]) -> Sandbox:
        sandbox = Sandbox(
            self.network,
            victim_ip="198.18.50.10",
            default_resolver_ip=(
                open_resolver_ips[0] if open_resolver_ips else None
            ),
        )
        assert self.tranco is not None
        benign_domains = [
            str(entry.domain)
            for entry in self.tranco.top(self.config.benign_samples or 1)
        ]
        for index in range(self.config.benign_samples):
            self.samples.append(
                make_benign_updater(
                    index, benign_domains[index % len(benign_domains)]
                )
            )
        sandbox.run_all(self.samples)
        return sandbox

    # -- step 7: measurement targets ----------------------------------------------

    def _build_targets(self) -> Tuple[List[DomainTarget], List[NameserverTarget]]:
        assert self.tranco is not None
        domain_targets = [
            DomainTarget(domain=entry.domain, rank=entry.rank)
            for entry in self.tranco.top(self.config.target_domains)
        ]
        # The case-study domains join the target set (§5.3: "we included
        # all FQDNs of the top Tranco 2K sites"); at small scales some of
        # their SLD ranks fall past the target cut, so they are added
        # explicitly.
        if self.config.include_case_studies:
            targeted = {target.domain for target in domain_targets}
            for extra in (
                "api.gitlab.com",
                "raw.pastebin.com",
                "api.github.com",
                "github.com",
                "gitlab.com",
                "pastebin.com",
                "ibm.com",
                "speedtest.net",
            ):
                extra_name = name(extra)
                if extra_name in targeted:
                    continue
                sld = (
                    extra_name
                    if self.tranco.rank_of(extra_name) is not None
                    else extra_name.parent()
                )
                rank = self.tranco.rank_of(sld) or 0
                domain_targets.append(
                    DomainTarget(domain=extra_name, rank=rank)
                )
                targeted.add(extra_name)
        # Nameserver selection: hosted-domain counts over the full list.
        hosting_counts: Dict[str, int] = {}
        for domain, addresses in self.delegated_to.items():
            for address in addresses:
                hosting_counts[address] = hosting_counts.get(address, 0) + 1
        nameserver_targets: List[NameserverTarget] = []
        for provider in self.providers.values():
            for entry in provider.pool:
                count = hosting_counts.get(entry.address, 0)
                provider_hosts = sum(
                    hosting_counts.get(item.address, 0)
                    for item in provider.pool
                )
                if (
                    count >= self.config.min_hosted_domains
                    or provider_hosts >= self.config.min_hosted_domains
                ):
                    nameserver_targets.append(
                        NameserverTarget(
                            address=entry.address,
                            provider=provider.name,
                            hostname=entry.hostname,
                        )
                    )
        return domain_targets, nameserver_targets

    # -- orchestration ---------------------------------------------------------------

    def build(self) -> World:
        self._build_providers()
        self.tranco = generate_tranco(
            self.config.top_list_size, random.Random(self.config.seed + 1)
        )
        self._build_legitimate_hosting()
        self._build_squatters()
        self._misconfigure_recursives()
        open_resolver_ips, open_resolvers = self._build_open_resolvers()
        attacker = self._build_attacker()
        self._build_generic_campaigns(attacker)
        if self.config.include_case_studies:
            self._build_case_studies(attacker)
        sandbox = self._detonate(open_resolver_ips)
        domain_targets, nameserver_targets = self._build_targets()
        return World(
            config=self.config,
            network=self.network,
            root=self.root,
            planner=self.planner,
            providers=self.providers,
            tranco=self.tranco,
            domain_targets=domain_targets,
            nameserver_targets=nameserver_targets,
            delegated_to=self.delegated_to,
            open_resolver_ips=open_resolver_ips,
            open_resolvers=open_resolvers,
            ipinfo=self.ipinfo,
            pdns=self.pdns,
            vendors=self.vendors,
            intel=self.intel,
            attacker=attacker,
            sandbox=sandbox,
            sandbox_reports=list(sandbox.reports),
            samples=list(self.samples),
            case_studies=self.case_studies,
            attacker_identities=attacker.all_planted_identities(),
        )


def _nameservers_serving(
    campaign: AttackerCampaign, domain: Name, provider: str
) -> List[str]:
    """Addresses of the campaign's nameservers hosting ``domain``."""
    for hosted in campaign.hosted_zones:
        if hosted.domain == domain:
            return hosted.nameserver_addresses()
    return []


def _make_ad_rewriter(ad_ip: str):
    """A resolver manipulation: every A answer becomes the ad server."""
    from ..dns.message import ResourceRecord
    from ..dns.rdata import A

    def rewriter(response: Message) -> Message:
        rewritten = []
        for record in response.answers:
            if isinstance(record.rdata, A):
                rewritten.append(
                    ResourceRecord(record.owner, A(ad_ip), record.ttl)
                )
            else:
                rewritten.append(record)
        response.answers = rewritten
        return response

    return rewriter
