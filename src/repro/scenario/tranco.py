"""Synthetic Tranco-like top list.

The measurement targets the top 2K sites of a 1M-entry ranking.  This
module generates a deterministic ranked list with realistic TLD mix and
pins the paper's case-study domains at their published SLD ranks:
``github.com`` (30), ``ibm.com`` (125), ``speedtest.net`` (415),
``gitlab.com`` (527) and ``pastebin.com`` (2033 in the paper; pinned
within range when the list is smaller).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from ..dns.name import Name, name

#: (domain, paper rank) pins for the case studies.
DEFAULT_PINS: Dict[str, int] = {
    "google.com": 1,
    "facebook.com": 3,
    "microsoft.com": 5,
    "github.com": 30,
    "ibm.com": 125,
    "speedtest.net": 415,
    "gitlab.com": 527,
    "pastebin.com": 2033,
}

_TLD_WEIGHTS = (
    ("com", 0.52),
    ("net", 0.09),
    ("org", 0.08),
    ("io", 0.05),
    ("co", 0.03),
    ("info", 0.03),
    ("cn", 0.04),
    ("de", 0.03),
    ("uk", 0.02),
    ("jp", 0.02),
    ("ru", 0.02),
    ("fr", 0.02),
    ("br", 0.02),
    ("in", 0.02),
    ("xyz", 0.01),
)

_WORDS_A = (
    "cloud", "data", "fast", "smart", "open", "net", "blue", "hyper",
    "stream", "pixel", "alpha", "nova", "prime", "zen", "echo", "flux",
    "atlas", "metro", "orbit", "delta", "lumen", "vertex", "quant",
    "nimbus", "raven", "cobalt", "ember", "drift", "forge", "pulse",
)

_WORDS_B = (
    "hub", "lab", "base", "zone", "ware", "works", "link", "port",
    "box", "mart", "shop", "page", "desk", "cast", "grid", "mind",
    "flow", "spot", "gate", "dock", "nest", "path", "rank", "wave",
    "loop", "core", "site", "line", "stack", "feed",
)


@dataclass(frozen=True)
class TrancoEntry:
    """One ranked site."""

    rank: int
    domain: Name


class TrancoList:
    """A ranked list of registrable domains."""

    def __init__(self, entries: List[TrancoEntry]):
        self.entries = sorted(entries, key=lambda entry: entry.rank)
        self._by_domain = {entry.domain: entry.rank for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TrancoEntry]:
        return iter(self.entries)

    def top(self, count: int) -> List[TrancoEntry]:
        """The ``count`` best-ranked entries."""
        return self.entries[:count]

    def rank_of(self, domain: Union[str, Name]) -> Optional[int]:
        return self._by_domain.get(name(domain))

    def __contains__(self, domain: Union[str, Name]) -> bool:
        return name(domain) in self._by_domain

    def domains(self) -> List[Name]:
        return [entry.domain for entry in self.entries]


def generate_tranco(
    size: int,
    rng: Optional[random.Random] = None,
    pins: Optional[Dict[str, int]] = None,
) -> TrancoList:
    """Generate a deterministic ranked list of ``size`` domains.

    Pinned domains whose paper rank exceeds ``size`` are folded into the
    last decile so every case-study target exists in small scenarios.
    """
    rng = rng or random.Random(42)
    pins = dict(DEFAULT_PINS if pins is None else pins)

    rank_to_domain: Dict[int, Name] = {}
    used: set = set()
    overflow: List[str] = []
    for domain_text, rank in sorted(pins.items(), key=lambda item: item[1]):
        if rank <= size:
            rank_to_domain[rank] = name(domain_text)
        else:
            overflow.append(domain_text)
        used.add(domain_text)
    # Place overflow pins near the end of the available range.
    slot = size
    for domain_text in overflow:
        while slot in rank_to_domain and slot > 1:
            slot -= 1
        rank_to_domain[slot] = name(domain_text)
        slot -= 1

    tlds = [tld for tld, _ in _TLD_WEIGHTS]
    weights = [weight for _, weight in _TLD_WEIGHTS]
    entries: List[TrancoEntry] = []
    for rank in range(1, size + 1):
        pinned = rank_to_domain.get(rank)
        if pinned is not None:
            entries.append(TrancoEntry(rank=rank, domain=pinned))
            continue
        while True:
            label = (
                rng.choice(_WORDS_A)
                + rng.choice(_WORDS_B)
                + (str(rng.randrange(100)) if rng.random() < 0.25 else "")
            )
            tld = rng.choices(tlds, weights=weights)[0]
            candidate = f"{label}.{tld}"
            if candidate not in used:
                used.add(candidate)
                break
        entries.append(TrancoEntry(rank=rank, domain=name(candidate)))
    return TrancoList(entries)
