"""Related attack techniques, for comparison with URs (paper §2/§3).

The paper positions URs against two prior domain-abuse techniques:

* **dangling-record takeover** — a domain's TLD delegation still points
  at a hosting provider, but the owner's zone there is gone; on
  global-fixed providers the attacker re-hosts the domain and instantly
  controls its *real* resolution;
* **domain shadowing** — the attacker compromises the owner's hosting
  account and spawns subdomains under the legitimate zone.

Both hijack normal resolution (and are therefore visible to anyone
re-resolving the domain); URs do not touch normal resolution at all.
These builders make that contrast executable — see
``tests/scenario/test_related.py`` and the threat-model comparison in
the README.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dns.name import Name, name
from ..dns.resolver import RecursiveResolver
from ..hosting.provider import HostedZone, HostingError, HostingProvider
from ..hosting.registry import DnsRoot


@dataclass
class DanglingTakeover:
    """Outcome of a dangling-record takeover attempt."""

    domain: Name
    provider: str
    attacker_zone: Optional[HostedZone]
    #: whether the attacker's zone is served by the *delegated* servers
    hijacks_normal_resolution: bool

    @property
    def succeeded(self) -> bool:
        return self.attacker_zone is not None


def create_dangling_delegation(
    root: DnsRoot,
    provider: HostingProvider,
    domain: str,
    registrant: str = "negligent-owner",
) -> None:
    """Set up the vulnerable state: a registered domain delegated to
    ``provider`` whose zone was deleted there (e.g. an expired trial)."""
    owner = provider.create_account()
    hosted = provider.host_zone(owner, domain, is_registered=True)
    if not root.is_registered(domain):
        root.register(domain, registrant)
    root.delegate(domain, provider.nameserver_set_for_delegation(hosted))
    # The owner abandons the hosting; the delegation stays.
    provider.delete_zone(hosted)


def attempt_dangling_takeover(
    root: DnsRoot,
    provider: HostingProvider,
    domain: str,
    attacker_ip: str,
) -> DanglingTakeover:
    """The attacker re-hosts a dangling domain at the same provider.

    Success means the attacker's zone answers on nameservers the TLD
    actually delegates to — a full hijack of normal resolution, unlike a
    UR.  On random-allocation providers the attacker may land on other
    nameservers and must retry (the classic Route 53 takeover dance);
    this helper reports whether the allocated set intersects the
    delegation.
    """
    domain_name = name(domain)
    try:
        hosted = provider.host_zone(
            provider.create_account(), domain, is_registered=True
        )
    except HostingError:
        return DanglingTakeover(
            domain=domain_name,
            provider=provider.name,
            attacker_zone=None,
            hijacks_normal_resolution=False,
        )
    provider.add_record(hosted, domain, "A", attacker_ip)
    delegated = set(root.delegated_addresses(domain))
    serving = set(hosted.nameserver_addresses())
    if provider.policy.serves_fleet_wide:
        serving = {entry.address for entry in provider.pool}
    return DanglingTakeover(
        domain=domain_name,
        provider=provider.name,
        attacker_zone=hosted,
        hijacks_normal_resolution=bool(delegated & serving),
    )


@dataclass
class ShadowedDomain:
    """Outcome of a domain-shadowing compromise."""

    parent: Name
    shadow: Name
    attacker_ip: str


def shadow_domain(
    hosted: HostedZone,
    shadow_label: str,
    attacker_ip: str,
) -> ShadowedDomain:
    """Domain shadowing: with control of the owner's account, spawn a
    subdomain under the legitimate zone (Liu et al., CCS'17).

    Unlike URs this requires compromising the victim's hosting account —
    and the shadow resolves through *normal* recursion, so defenders
    re-resolving the domain tree can see it.
    """
    shadow = hosted.domain.prepend(shadow_label)
    hosted.zone.add(shadow, _a(attacker_ip))
    return ShadowedDomain(
        parent=hosted.domain, shadow=shadow, attacker_ip=attacker_ip
    )


def resolves_to(
    resolver: RecursiveResolver, domain: str, address: str
) -> bool:
    """True when normal recursion returns ``address`` for ``domain``."""
    try:
        return address in resolver.lookup_a(domain)
    except Exception:
        return False


def _a(address: str):
    from ..dns.rdata import A

    return A(address)
