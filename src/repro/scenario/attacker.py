"""Attacker model: campaigns that plant URs and run malware through them.

One :class:`Attacker` owns C2 infrastructure (addresses from its own
pools, simple C2 server processes) and opens accounts at hosting
providers to plant undelegated records, following the threat model's
steps ① (host URs) and ② (distribute malware).  Campaign builders cover
the generic bulk activity plus the three §5.3 case studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dns.name import Name, name
from ..dns.rdata import RRType
from ..hosting.provider import Account, HostedZone, HostingError, HostingProvider
from ..net.address import AddressPool
from ..net.network import SimulatedInternet
from ..sandbox.malware import MalwareSample

#: countries attacker infrastructure is rented in (bulletproof-ish mix)
ATTACKER_COUNTRIES = ("RU", "MD", "SC", "PA", "HK", "NL", "RO", "US")


class C2Server:
    """A minimal command-and-control endpoint.

    Accepts any TCP payload and answers with a short task blob; SMTP
    sessions get a banner-style acknowledgement.  Its existence makes the
    malware's connections *succeed*, so captures look like live traffic.
    """

    def __init__(self, address: str):
        self.address = address
        self.connections = 0

    def handle_tcp_connect(
        self, src_ip: str, dst_port: int, payload: bytes,
        network: SimulatedInternet,
    ) -> Optional[bytes]:
        self.connections += 1
        if payload.startswith(b"EHLO"):
            return b"250 OK queued"
        return b"TASK sleep=3600"


@dataclass
class PlantedRecord:
    """Ground truth: one record the attacker configured."""

    domain: Name
    rrtype: int
    rdata_text: str
    provider: str

    @property
    def identity(self) -> Tuple[Name, int, str]:
        return (self.domain, self.rrtype, self.rdata_text)


@dataclass
class AttackerCampaign:
    """One coordinated abuse campaign."""

    name: str
    provider_names: List[str]
    hosted_zones: List[HostedZone] = field(default_factory=list)
    c2_ips: List[str] = field(default_factory=list)
    planted: List[PlantedRecord] = field(default_factory=list)
    samples: List[MalwareSample] = field(default_factory=list)

    def planted_identities(self) -> Set[Tuple[Name, int, str]]:
        return {record.identity for record in self.planted}

    def nameserver_ips(self) -> List[str]:
        seen: Dict[str, None] = {}
        for hosted in self.hosted_zones:
            for address in hosted.nameserver_addresses():
                seen.setdefault(address, None)
        return list(seen)


class Attacker:
    """The adversary: infrastructure plus provider accounts."""

    def __init__(
        self,
        network: SimulatedInternet,
        c2_pool: AddressPool,
        rng: Optional[random.Random] = None,
    ):
        self.network = network
        self.c2_pool = c2_pool
        self.rng = rng or random.Random(99)
        self._accounts: Dict[str, Account] = {}
        self.c2_servers: Dict[str, C2Server] = {}
        self.campaigns: List[AttackerCampaign] = []

    # -- infrastructure ----------------------------------------------------

    def stand_up_c2(self, count: int = 1) -> List[str]:
        """Rent ``count`` C2 servers; returns their addresses."""
        addresses = []
        for _ in range(count):
            address = self.c2_pool.allocate()
            server = C2Server(address)
            self.network.register_tcp_host(address, server)
            self.c2_servers[address] = server
            addresses.append(address)
        return addresses

    def stand_up_c2_same_slash24(self, count: int) -> List[str]:
        """C2 addresses guaranteed to share a /24 (the SPF case study)."""
        addresses = [self.c2_pool.allocate()]
        base = addresses[0].rsplit(".", 1)[0]
        suffix = int(addresses[0].rsplit(".", 1)[1])
        while len(addresses) < count:
            suffix += 1
            if suffix > 254:
                raise RuntimeError("ran out of room in the /24")
            address = f"{base}.{suffix}"
            addresses.append(address)
        for address in addresses:
            if address not in self.c2_servers:
                server = C2Server(address)
                self.network.register_tcp_host(address, server)
                self.c2_servers[address] = server
        return addresses

    # -- provider interaction -----------------------------------------------

    def account_at(
        self, provider: HostingProvider, paid: bool = False
    ) -> Account:
        """One account per (attacker, provider); reused across campaigns."""
        key = provider.name + ("/paid" if paid else "")
        account = self._accounts.get(key)
        if account is None:
            account = provider.create_account(paid=paid)
            self._accounts[key] = account
        return account

    def plant_a_record(
        self,
        campaign: AttackerCampaign,
        provider: HostingProvider,
        domain: str,
        c2_ip: str,
        is_registered: bool = True,
    ) -> Optional[HostedZone]:
        """Host a UR zone with an A record pointing at a C2.

        Returns None when the provider's policy refuses the domain — the
        attacker just moves on (as Table 2's reserved lists force).
        """
        hosted = self._host(campaign, provider, domain, is_registered)
        if hosted is None:
            return None
        provider.add_record(hosted, domain, "A", c2_ip)
        campaign.planted.append(
            PlantedRecord(
                domain=name(domain),
                rrtype=RRType.A,
                rdata_text=c2_ip,
                provider=provider.name,
            )
        )
        if c2_ip not in campaign.c2_ips:
            campaign.c2_ips.append(c2_ip)
        return hosted

    def plant_txt_record(
        self,
        campaign: AttackerCampaign,
        provider: HostingProvider,
        domain: str,
        value: str,
        embedded_ips: Sequence[str] = (),
        is_registered: bool = True,
    ) -> Optional[HostedZone]:
        """Host a UR zone with a TXT record (command blob or SPF masquerade)."""
        hosted = self._host(campaign, provider, domain, is_registered)
        if hosted is None:
            return None
        provider.add_record(hosted, domain, "TXT", f'"{value}"')
        campaign.planted.append(
            PlantedRecord(
                domain=name(domain),
                rrtype=RRType.TXT,
                rdata_text=value,
                provider=provider.name,
            )
        )
        for address in embedded_ips:
            if address not in campaign.c2_ips:
                campaign.c2_ips.append(address)
        return hosted

    def _host(
        self,
        campaign: AttackerCampaign,
        provider: HostingProvider,
        domain: str,
        is_registered: bool,
    ) -> Optional[HostedZone]:
        account = self.account_at(provider)
        existing = next(
            (
                hosted
                for hosted in campaign.hosted_zones
                if hosted.domain == name(domain)
                and hosted.account is account
            ),
            None,
        )
        if existing is not None:
            return existing
        try:
            hosted = provider.host_zone(
                account, domain, is_registered=is_registered
            )
        except HostingError:
            return None
        campaign.hosted_zones.append(hosted)
        return hosted

    def new_campaign(
        self, campaign_name: str, provider_names: Sequence[str]
    ) -> AttackerCampaign:
        campaign = AttackerCampaign(
            name=campaign_name, provider_names=list(provider_names)
        )
        self.campaigns.append(campaign)
        return campaign

    # -- ground truth -----------------------------------------------------------

    def all_planted_identities(self) -> Set[Tuple[Name, int, str]]:
        """Every (domain, rrtype, rdata) the attacker configured."""
        identities: Set[Tuple[Name, int, str]] = set()
        for campaign in self.campaigns:
            identities |= campaign.planted_identities()
        return identities

    def all_c2_ips(self) -> Set[str]:
        return set(self.c2_servers)
