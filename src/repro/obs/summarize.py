"""``repro trace summarize``: render a trace JSONL as a span tree.

Reads a file written by :meth:`~repro.obs.events.RunTrace.finalize`
and prints, per stage, the span markers and body events in canonical
order, followed by an event-name counter block and (when present) the
timing section.  The renderer is deterministic: two traces with equal
deterministic sections summarize to equal text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .events import STAGE1, STAGE2, STAGE3, TRACE_FORMAT_VERSION

_STAGES = (STAGE1, STAGE2, STAGE3)
_SKIP_KEYS = frozenset({"seq", "event", "stage", "section"})


class TraceFormatError(ValueError):
    """The file is not a trace this version knows how to read."""


def _fields(event: Dict[str, Any]) -> str:
    parts = [
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in _SKIP_KEYS
    ]
    return " ".join(parts)


def _parse(text: str) -> List[Dict[str, Any]]:
    events = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise TraceFormatError(
                f"line {number} is not JSON: {error}"
            ) from error
    return events


def summarize_trace(source: Union[str, Path]) -> str:
    """Render the per-stage span tree and counters of one trace file."""
    text = Path(source).read_text()
    events = _parse(text)
    if not events or events[0].get("event") != "trace.header":
        raise TraceFormatError("missing trace.header line")
    version = events[0].get("format")
    if version != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"trace format {version!r} is not supported "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    body = events[1:]
    deterministic = [
        event for event in body if event.get("section") != "timing"
    ]
    timing = [event for event in body if event.get("section") == "timing"]

    lines = [
        f"trace format {version} — {len(deterministic)} deterministic "
        f"events, {len(timing)} timing events"
    ]
    by_stage: Dict[str, List[Dict[str, Any]]] = {
        stage: [] for stage in _STAGES
    }
    run_level: List[Dict[str, Any]] = []
    for event in deterministic:
        stage = event.get("stage")
        if stage in by_stage:
            by_stage[stage].append(event)
        else:
            run_level.append(event)
    for event in run_level:
        if event["event"].startswith("run."):
            lines.append(f"[run] {event['event']} {_fields(event)}".rstrip())
    for stage in _STAGES:
        stage_events = by_stage[stage]
        if not stage_events:
            continue
        lines.append(f"[{stage}]")
        for event in stage_events:
            lines.append(f"  {event['event']} {_fields(event)}".rstrip())
    counters: Dict[str, int] = {}
    for event in deterministic:
        name = event["event"]
        counters[name] = counters.get(name, 0) + 1
    lines.append(
        "event counts: "
        + "  ".join(
            f"{name}={count}" for name, count in sorted(counters.items())
        )
    )
    if timing:
        lines.append("timing:")
        for event in timing:
            lines.append(f"  {event['event']} {_fields(event)}".rstrip())
    return "\n".join(lines)
