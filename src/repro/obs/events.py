"""The run-scoped event bus: deterministic trace events + JSONL sink.

Every structured thing the pipeline does — a stage starting or ending,
a collection phase completing, a checkpoint written or loaded, a data
source degrading, a circuit breaker tripping, a segment replayed — is
emitted as a :class:`TraceEvent` on one :class:`RunTrace`.

**Determinism is the design center.**  The batch and streaming
execution modes do the same logical work in different chronological
orders (streaming interleaves stage-2 classification with the stage-1
scan), so raw emission order cannot be a byte-compared surface.
Instead every event carries a logical *stage* tag and the trace
canonicalizes at read time: events sort by

    ``(stage rank, sub-rank, emission id)``

where the stage rank orders ``run.start`` → stage 1 → stage 2 →
stage 3 → ``run.end``, and the sub-rank orders, within one stage,
span-open markers (``stage.start``, ``stage.resumed``,
``checkpoint.load``) before body events before ``stage.end`` before
``checkpoint.save``.  Within one (stage, sub-rank) cell the emission id
preserves chronological order — and because every body-event producer
(the collector's phase accounting, the single-threaded fault path of
stage 2, the record-ordered stage 3) is itself deterministic, the
canonical stream is byte-identical between ``--execution batch`` and
``--execution stream`` and across ``--stage2-workers`` /
``--channel-depth`` (enforced by ``tests/obs/test_equivalence.py``).

Wall-clock readings never enter deterministic events; they go through
:meth:`RunTrace.emit_timing` into a separate section whose lines are
marked ``"section": "timing"`` (the timing-leakage tests key off the
absence of that marker).

Segment events (``segment.save``/``segment.replay``) only exist in
streaming runs with ``--checkpoint-every`` > 0, so strict cross-*mode*
identity is specified at ``checkpoint_every=0``; cross-depth and
cross-worker identity holds with segments too (segment boundaries fall
on the canonical classified-record order).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: bumped whenever the JSONL layout or canonical ordering changes
#: (v2: resilience events — hedge.*, aimd.cut, budget.exhausted — and
#: the ``shed`` counter on run.end; v3: the scan-plan hash in the
#: header when a plan is bound, the ``plan.built`` deterministic event,
#: and the ``shard.*`` timing events)
TRACE_FORMAT_VERSION = 3

#: logical stage tags — string-equal to the pipeline runner's stage
#: names so checkpoints, failure provenance, and trace events share one
#: vocabulary
STAGE1 = "stage1-collect"
STAGE2 = "stage2-exclude"
STAGE3 = "stage3-analyze"

_STAGE_RANKS = {STAGE1: 1, STAGE2: 2, STAGE3: 3}

#: events that open a stage span (or stand in for one on resume)
_SUB_OPEN = frozenset({"stage.start", "stage.resumed", "checkpoint.load"})
#: events that close a stage span
_SUB_CLOSE = frozenset({"stage.end"})
#: events sealing a stage's artifact after the span closed
_SUB_SEAL = frozenset({"checkpoint.save"})

#: run-level terminators (sort after every stage)
_RUN_END = frozenset({"run.end", "run.abort", "run.stopped"})


def _json_safe(value: Any) -> Any:
    """Coerce a field value into something ``json.dumps`` accepts.

    Non-finite floats become ``None`` (strict JSON has no Infinity) and
    unknown objects fall back to ``str()`` — domain names, enums, and
    similar value objects serialize as their text form.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else None
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=str)
        return [_json_safe(item) for item in items]
    return str(value)


class TraceEvent:
    """One structured event: a name, an optional stage tag, flat fields."""

    __slots__ = ("name", "stage", "fields", "emission_id")

    def __init__(
        self,
        name: str,
        stage: Optional[str],
        fields: Dict[str, Any],
        emission_id: int,
    ):
        self.name = name
        self.stage = stage
        self.fields = fields
        self.emission_id = emission_id

    def sort_key(self) -> Tuple[int, int, int]:
        """The canonical ``(stage rank, sub-rank, emission id)`` key."""
        if self.name == "run.start":
            return (0, 0, self.emission_id)
        if self.name in _RUN_END:
            return (9, 0, self.emission_id)
        rank = _STAGE_RANKS.get(self.stage or "", 8)
        if self.name in _SUB_OPEN:
            sub = 0
        elif self.name in _SUB_CLOSE:
            sub = 2
        elif self.name in _SUB_SEAL:
            sub = 3
        else:
            sub = 1
        return (rank, sub, self.emission_id)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"event": self.name}
        if self.stage is not None:
            payload["stage"] = self.stage
        for key, value in self.fields.items():
            payload[key] = _json_safe(value)
        return payload


class RunTrace:
    """In-memory event buffer with an optional JSONL sink.

    Deterministic events go through :meth:`emit`; wall-clock or
    otherwise run-variant observations go through :meth:`emit_timing`.
    :meth:`finalize` writes the canonical JSONL document (header line,
    deterministic section, timing section) to ``sink_path``.
    """

    def __init__(self, sink_path: Optional[Union[str, Path]] = None):
        self.sink_path = Path(sink_path) if sink_path is not None else None
        self._events: List[TraceEvent] = []
        self._timing: List[TraceEvent] = []
        self._plan_hash: Optional[str] = None

    def bind_plan(self, plan_hash: str) -> None:
        """Stamp the scan-plan content hash into the trace header.

        The hash is a pure function of (world, config), so stamping it
        keeps the header byte-identical across shard counts, worker
        counts, engines, and execution modes — while proving which scan
        the trace describes.
        """
        self._plan_hash = plan_hash

    # -- emission ----------------------------------------------------------

    def emit(
        self, name: str, stage: Optional[str] = None, **fields: Any
    ) -> None:
        """Record one deterministic event (timing-free by contract)."""
        self._events.append(
            TraceEvent(name, stage, fields, len(self._events))
        )

    def emit_timing(self, name: str, **fields: Any) -> None:
        """Record one non-deterministic (wall-clock/variant) event."""
        self._timing.append(
            TraceEvent(name, None, fields, len(self._timing))
        )

    # -- reading -----------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """Deterministic events in canonical order, as plain dicts."""
        ordered = sorted(self._events, key=TraceEvent.sort_key)
        out = []
        for seq, event in enumerate(ordered):
            payload = {"seq": seq}
            payload.update(event.to_dict())
            out.append(payload)
        return out

    def timing_events(self) -> List[Dict[str, Any]]:
        """Timing events in emission order, marked ``section: timing``."""
        out = []
        for event in self._timing:
            payload = event.to_dict()
            payload["section"] = "timing"
            out.append(payload)
        return out

    def raw_events(
        self,
    ) -> List[Tuple[str, Optional[str], Dict[str, Any]]]:
        """Deterministic events as (name, stage, fields), emission order.

        The shard runner buffers a group engine's events on a private
        trace and replays them into the parent via :meth:`emit`; raw
        tuples (not canonicalized dicts) keep the replay loss-free.
        """
        return [
            (event.name, event.stage, dict(event.fields))
            for event in self._events
        ]

    def counters(self) -> Dict[str, int]:
        """Occurrence count per deterministic event name."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return dict(sorted(counts.items()))

    # -- serialization -----------------------------------------------------

    @staticmethod
    def _line(payload: Dict[str, Any]) -> str:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def header(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "event": "trace.header",
            "format": TRACE_FORMAT_VERSION,
        }
        if self._plan_hash is not None:
            payload["plan"] = self._plan_hash
        return payload

    def deterministic_lines(self) -> List[str]:
        """The byte-compared surface: header + canonical events."""
        lines = [self._line(self.header())]
        lines.extend(self._line(event) for event in self.events())
        return lines

    def lines(self) -> List[str]:
        """The full JSONL document (deterministic, then timing)."""
        lines = self.deterministic_lines()
        lines.extend(self._line(event) for event in self.timing_events())
        return lines

    def finalize(self) -> Optional[Path]:
        """Write the JSONL document to the sink, if one is configured.

        Idempotent: finalizing again rewrites the file with whatever
        has been emitted since — callers may finalize in a ``finally``
        block without tracking state.
        """
        if self.sink_path is None:
            return None
        self.sink_path.parent.mkdir(parents=True, exist_ok=True)
        self.sink_path.write_text("\n".join(self.lines()) + "\n")
        return self.sink_path


def run_end_fields(report: Any, status: Optional[str] = None) -> Dict[str, Any]:
    """The loss-accounting fields of a ``run.end`` event.

    ``unaccounted`` is the invariant CI greps for: every sent attempt
    must be a response or a timeout — anything else is silent query
    loss, which at the paper's scale skews every per-provider statistic.
    Duck-typed over :class:`~repro.core.report.MeasurementReport` so
    this module stays import-free.
    """
    metrics = getattr(report, "scan_metrics", None)
    if metrics is not None:
        queries = metrics.queries
        responses = metrics.responses
        timeouts = metrics.timeouts
        giveups = metrics.giveups
        skipped = metrics.skipped
        shed = getattr(metrics, "shed", 0)
    else:
        queries = report.queries_sent
        responses = report.responses_seen
        timeouts = report.timeouts
        giveups = 0
        skipped = 0
        shed = 0
    return {
        "status": status
        or ("degraded" if report.is_degraded else "clean"),
        "classified": len(report.classified),
        "suspicious": len(report.suspicious),
        "queries": queries,
        "responses": responses,
        "timeouts": timeouts,
        "giveups": giveups,
        "skipped": skipped,
        "shed": shed,
        "unaccounted": queries - responses - timeouts,
    }
