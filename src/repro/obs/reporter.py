"""Leveled operator messaging: the one stderr API.

The CLI used to scatter ``print(..., file=sys.stderr)`` around its main
function; every operator-facing message now goes through one
:class:`Reporter`, which enforces the contract the byte-compared
transcripts rely on: **stdout carries machine-readable output only**,
stderr carries human diagnostics, and ``-q``/``-v`` select how much of
the latter the operator sees.

Levels:

* :meth:`Reporter.error` — always shown (even ``--quiet``); failures
  the exit code also reports.
* :meth:`Reporter.warn` — always shown; degraded-run banners and
  recovery hints operators must not miss.
* :meth:`Reporter.info` — shown at normal verbosity and above; progress
  banners and per-run diagnostics (``# scenario: ...``).
* :meth:`Reporter.debug` — shown only with ``-v``; scheduling detail.

The stream is resolved at call time (default ``sys.stderr``) so pytest
capture and stream redirection work without re-wiring the reporter.
"""

from __future__ import annotations

import enum
import sys
from typing import Any, Optional, TextIO


class Verbosity(enum.IntEnum):
    """How chatty stderr is; stdout is unaffected."""

    QUIET = 0
    NORMAL = 1
    VERBOSE = 2


class Reporter:
    """Writes leveled operator messages to stderr (or a given stream)."""

    def __init__(
        self,
        verbosity: Verbosity = Verbosity.NORMAL,
        stream: Optional[TextIO] = None,
    ):
        self.verbosity = Verbosity(verbosity)
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def _write(self, message: Any) -> None:
        print(message, file=self.stream)

    # -- levels ------------------------------------------------------------

    def error(self, message: Any) -> None:
        """A failure; shown at every verbosity."""
        self._write(message)

    def warn(self, message: Any) -> None:
        """An operator-critical condition; shown at every verbosity."""
        self._write(message)

    def info(self, message: Any) -> None:
        """Routine diagnostics; hidden by ``--quiet``."""
        if self.verbosity >= Verbosity.NORMAL:
            self._write(message)

    def debug(self, message: Any) -> None:
        """Scheduling/tracing detail; shown only with ``--verbose``."""
        if self.verbosity >= Verbosity.VERBOSE:
            self._write(message)
