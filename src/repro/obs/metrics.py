"""One metrics API: the snapshot protocol, the registry, the document.

Before this module the reproduction had four disjoint telemetry
surfaces — engine :class:`~repro.engine.metrics.ScanMetrics`, stage-2
:class:`~repro.core.parallel.Stage2Metrics`, flow channel occupancy,
and the :class:`~repro.pipeline.resilience.SourceGuard` health ledgers
— each with its own rendering and aggregation conventions.  They now
all implement one :class:`MetricsSnapshot` protocol and report through
one :class:`MetricRegistry`.

:func:`build_metrics_document` assembles the consolidated
``--metrics-out metrics.json``.  Its schema is versioned
(:data:`METRICS_FORMAT_VERSION`) and split into two sections mirroring
the ``summary()`` / ``timing_summary()`` split the byte-identity tests
already enforce:

* ``deterministic`` — counters that are byte-identical across
  execution modes, worker counts, and channel depths (and therefore
  safe to diff in CI);
* ``timing`` — wall-clock figures, worker/scheduling context, and
  channel occupancy, all of which legitimately vary run to run.

This module imports nothing from the rest of :mod:`repro`; snapshot
holders and the report are duck-typed against the protocol.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

#: bumped whenever the metrics.json layout changes
#: (v2: ``shed`` counters in the scan-engine block and the optional
#: ``resilience`` deterministic section; v3: optional ``scan_path``
#: timing block — cache hit rates depend on the scan-cache/capture-mode
#: knobs, so they live outside the byte-compared section; v4: optional
#: ``incremental`` timing block with the group-result-store counters —
#: hit/miss tallies depend on what an earlier run left in the store,
#: so they can never join the byte-compared section)
METRICS_FORMAT_VERSION = 4


@runtime_checkable
class MetricsSnapshot(Protocol):
    """What every metric holder exposes: a name, a dict, a merge.

    ``to_dict()`` returns only **deterministic** counters — anything
    wall-clock or scheduling-dependent belongs in a separate,
    holder-specific timing view (e.g. ``timing_dict()``), never here.
    ``merge()`` folds another snapshot of the same kind into this one
    (shard aggregation).  ``summary()`` renders the human-readable
    block the report embeds; the text is part of the byte-compared
    report surface and must stay deterministic too.
    """

    name: str

    def to_dict(self) -> Dict[str, Any]: ...

    def merge(self, other: Any) -> None: ...

    def summary(self, indent: str = "") -> str: ...


class MetricRegistry:
    """Aggregates heterogeneous snapshots behind the one protocol.

    Registration order is presentation order — the report registers the
    scan-engine block before the stage-2 block, reproducing the legacy
    layout byte for byte through :meth:`render_lines`.
    """

    def __init__(self) -> None:
        self._snapshots: List[MetricsSnapshot] = []

    def register(self, snapshot: MetricsSnapshot) -> MetricsSnapshot:
        for attribute in ("name", "to_dict", "merge", "summary"):
            if not hasattr(snapshot, attribute):
                raise TypeError(
                    f"{type(snapshot).__name__} does not implement "
                    f"MetricsSnapshot (missing {attribute!r})"
                )
        self._snapshots.append(snapshot)
        return snapshot

    def snapshots(self) -> Tuple[MetricsSnapshot, ...]:
        return tuple(self._snapshots)

    def get(self, name: str) -> Optional[MetricsSnapshot]:
        for snapshot in self._snapshots:
            if snapshot.name == name:
                return snapshot
        return None

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic counters of every registered snapshot."""
        return {
            snapshot.name: snapshot.to_dict()
            for snapshot in self._snapshots
        }

    def render_lines(self, indent: str = "  ") -> List[str]:
        """The single renderer replacing the bespoke ``summary()`` call
        sites: one heading plus one summary block per snapshot."""
        lines: List[str] = []
        for snapshot in self._snapshots:
            heading = getattr(
                snapshot, "heading", f"{snapshot.name} metrics:"
            )
            lines.append(heading)
            lines.append(snapshot.summary(indent=indent))
        return lines


def build_metrics_document(
    report: Any,
    *,
    fingerprint: Optional[str] = None,
    execution: Optional[str] = None,
    stage2_workers: Optional[int] = None,
    channel_depth: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    flow_metrics: Any = None,
    scan_path: Any = None,
    incremental: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the consolidated ``metrics.json`` document.

    ``report`` is duck-typed over
    :class:`~repro.core.report.MeasurementReport`.  The ``deterministic``
    section is byte-identical across execution modes and worker counts
    for the same scenario and fault schedule; everything that may vary
    (wall clock, worker context, channel occupancy — occupancy depends
    on channel depth and exists only in streaming runs) goes under
    ``timing``.
    """
    deterministic: Dict[str, Any] = {
        "report": {
            "classified": len(report.classified),
            "categories": report.category_counts(),
            "suspicious": len(report.suspicious),
            "queries_sent": report.queries_sent,
            "responses_seen": report.responses_seen,
            "timeouts": report.timeouts,
            "txt_without_ip": report.txt_without_ip,
            "false_negative_rate": report.false_negative_rate,
        }
    }
    if fingerprint is not None:
        deterministic["fingerprint"] = fingerprint
    scan = getattr(report, "scan_metrics", None)
    if scan is not None:
        deterministic["scan_engine"] = scan.to_dict()
    stage2 = getattr(report, "stage2_metrics", None)
    if stage2 is not None:
        deterministic["stage2_exclusion"] = stage2.to_dict()
    resilience = getattr(report, "resilience_metrics", None)
    if resilience is not None:
        # hedge/shed/AIMD decisions are virtual-clock deterministic, so
        # the whole block belongs to the byte-compared section
        deterministic["resilience"] = resilience.to_dict()
    degraded = getattr(report, "degraded", None)
    if degraded is not None:
        deterministic["sources"] = {
            "sources": {
                source: ledger.to_dict()
                for source, ledger in sorted(degraded.sources.items())
            },
            "skipped_conditions": dict(
                sorted(degraded.skipped_conditions.items())
            ),
            "unverifiable_urs": degraded.unverifiable_urs,
            "partial_ip_verdicts": degraded.partial_ip_verdicts,
            "notes": list(degraded.notes),
        }

    timing: Dict[str, Any] = {}
    context: Dict[str, Any] = {}
    if execution is not None:
        context["execution"] = execution
    if stage2_workers is not None:
        context["stage2_workers"] = stage2_workers
    if channel_depth is not None:
        context["channel_depth"] = channel_depth
    # shard knobs are performance context, like worker counts — the
    # deterministic section is byte-identical across every value
    if shards is not None:
        context["shards"] = shards
    if shard_workers is not None:
        context["shard_workers"] = shard_workers
    if context:
        timing["context"] = context
    if stage2 is not None and hasattr(stage2, "timing_dict"):
        timing["stage2_exclusion"] = stage2.timing_dict()
    if flow_metrics is not None:
        timing["flow_channels"] = flow_metrics.to_dict()
    if scan_path is not None:
        # hit/miss tallies vary with --no-scan-cache/--capture-mode,
        # which by contract leave the deterministic section untouched
        timing["scan_path"] = scan_path.to_dict()
    if incremental is not None:
        # group-result-store counters: a warm run's hits depend on what
        # the previous run stored, so they are run-history context —
        # the deterministic section stays byte-identical warm vs cold
        timing["incremental"] = dict(incremental)

    return {
        "format": METRICS_FORMAT_VERSION,
        "deterministic": deterministic,
        "timing": timing,
    }
