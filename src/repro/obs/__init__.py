"""Unified observability: run-event bus, stage spans, one metrics API.

The reproduction's conclusions rest on loss-free accounting (the paper
tracks ~17.8M queries across 8,941 nameservers); this package is the
single spine every telemetry surface reports through:

* :class:`RunTrace` — a run-scoped event bus.  Deterministic,
  timing-free events (stage spans, collection progress, checkpoint
  writes/loads, degraded-source transitions, circuit-breaker trips,
  segment replay) buffer in memory and serialize to a JSONL sink
  (``--trace-out``).  The deterministic section is **byte-identical**
  across execution modes, worker counts, and channel depths; wall-clock
  readings ride in a separate, explicitly non-deterministic timing
  section.
* :class:`MetricsSnapshot` / :class:`MetricRegistry` — the one protocol
  all metric holders implement (engine ``ScanMetrics``, stage-2
  ``Stage2Metrics``, flow channel stats, source-guard health) and the
  registry that renders and aggregates them uniformly.
* :class:`Reporter` — leveled operator messaging on stderr
  (``-q``/``-v``), keeping stdout machine-readable.
* :func:`summarize_trace` — the ``repro trace summarize`` renderer.

This package imports nothing from the rest of :mod:`repro`, so any
layer (engine, core, pipeline, flow, CLI) may import it freely.
"""

from .events import (
    STAGE1,
    STAGE2,
    STAGE3,
    TRACE_FORMAT_VERSION,
    RunTrace,
    run_end_fields,
)
from .metrics import (
    METRICS_FORMAT_VERSION,
    MetricRegistry,
    MetricsSnapshot,
    build_metrics_document,
)
from .reporter import Reporter, Verbosity
from .summarize import summarize_trace

__all__ = [
    "METRICS_FORMAT_VERSION",
    "MetricRegistry",
    "MetricsSnapshot",
    "Reporter",
    "RunTrace",
    "STAGE1",
    "STAGE2",
    "STAGE3",
    "TRACE_FORMAT_VERSION",
    "Verbosity",
    "build_metrics_document",
    "run_end_fields",
    "summarize_trace",
]
