"""Correct-record database and the Appendix-B uniformity conditions.

URHunter must not count a UR as abuse when it is really:

* the domain's genuine data reached through a misconfigured recursive
  nameserver, possibly geo-distributed (CDN), or
* a leftover of a *past delegation* (the domain moved providers).

The paper's insight (Appendix B): IP-level facts about a domain — its
addresses, ASes, locations, TLS certificates — are uniform because one
organisation operates them.  A UR whose facts are a subset of the
domain's known-correct facts is a correct record; so is one found in six
years of passive DNS.  An HTTP-keyword filter additionally excludes URs
pointing at parked/redirect pages.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..dns.name import Name, name
from ..dns.rdata import RRType
from ..intel.ipinfo import IpInfoDatabase, PAGE_KEYWORDS, PageKind
from ..intel.pdns import PassiveDnsStore
from ..pipeline.resilience import SourceGuard, SourceHealth
from .records import UndelegatedRecord

#: Names for the five Appendix-B conditions plus the HTTP filter, used in
#: verdict reasons and in the ablation benchmarks.
COND_IP = "ip-subset"
COND_AS = "as-subset"
COND_GEO = "geo-subset"
COND_CERT = "cert-subset"
COND_PDNS = "pdns-history"
COND_HTTP = "http-keyword"
ALL_CONDITIONS = frozenset(
    {COND_IP, COND_AS, COND_GEO, COND_CERT, COND_PDNS, COND_HTTP}
)


@dataclass
class DomainProfile:
    """The known-correct facts for one domain."""

    domain: Name
    ips: Set[str] = field(default_factory=set)
    asns: Set[int] = field(default_factory=set)
    countries: Set[str] = field(default_factory=set)
    cert_orgs: Set[str] = field(default_factory=set)
    txt_values: Set[str] = field(default_factory=set)
    mx_values: Set[str] = field(default_factory=set)

    def merge_ip(self, address: str, info: IpInfoDatabase) -> None:
        """Fold one correct A answer (and its metadata) into the profile."""
        self.ips.add(address)
        meta = info.lookup(address)
        self.asns.add(meta.asn)
        self.countries.add(meta.country)
        if meta.cert_org is not None:
            self.cert_orgs.add(meta.cert_org)


class CorrectRecordDatabase:
    """Per-domain profiles built from open resolvers and historical data.

    §4.1(2): URHunter queries ~3K open resolvers worldwide for the A and
    TXT records of every targeted domain and folds in the IP metadata of
    every answer.
    """

    def __init__(self, ipinfo: IpInfoDatabase):
        self.ipinfo = ipinfo
        self._profiles: Dict[Name, DomainProfile] = {}
        # domains() is called on hot report paths; re-sorting every call
        # is wasted work, so the sorted view is cached and invalidated
        # whenever a new profile appears
        self._domains_cache: Optional[List[Name]] = None

    def profile(self, domain: Union[str, Name]) -> DomainProfile:
        domain = name(domain)
        existing = self._profiles.get(domain)
        if existing is None:
            existing = DomainProfile(domain=domain)
            self._profiles[domain] = existing
            self._domains_cache = None
        return existing

    def observe_a(self, domain: Union[str, Name], address: str) -> None:
        self.profile(domain).merge_ip(address, self.ipinfo)

    def observe_txt(self, domain: Union[str, Name], value: str) -> None:
        self.profile(domain).txt_values.add(value)

    def observe_mx(self, domain: Union[str, Name], value: str) -> None:
        self.profile(domain).mx_values.add(value)

    def has_profile(self, domain: Union[str, Name]) -> bool:
        profile = self._profiles.get(name(domain))
        return profile is not None and bool(
            profile.ips or profile.txt_values
        )

    def domains(self) -> List[Name]:
        if self._domains_cache is None:
            self._domains_cache = sorted(self._profiles)
        return list(self._domains_cache)


#: the conditions that need IP metadata (AS, geo, cert, HTTP content)
META_CONDITIONS = (COND_AS, COND_GEO, COND_CERT, COND_HTTP)


@dataclass(frozen=True)
class CorrectnessVerdict:
    """Why (or why not) a UR was excluded as a correct record.

    ``degraded_conditions`` lists enabled conditions that could not be
    evaluated because their data source was unavailable; a suspicious
    verdict carrying them is *unverifiable*, not definitive.
    """

    is_correct: bool
    matched_condition: Optional[str] = None
    degraded_conditions: Tuple[str, ...] = ()


class UniformityChecker:
    """Implements Appendix B over a correct-record database + passive DNS.

    ``enabled_conditions`` supports the ablation study: removing
    conditions widens the suspicious set (more false positives among
    CDN-backed domains); the default enables everything, matching the
    paper.

    Both external dependencies — the passive-DNS API and the IP
    metadata service — are consulted through a
    :class:`~repro.pipeline.resilience.SourceGuard`: a flaky source is
    retried, a dead one is circuit-broken and its conditions are
    *skipped* (recorded per-condition in :attr:`skipped_conditions`)
    instead of aborting the exclusion stage.  ``ipinfo`` overrides the
    database's own metadata service, which lets the chaos harness
    fault-inject stage 2 without touching the stage-1 profiles.
    """

    def __init__(
        self,
        database: CorrectRecordDatabase,
        pdns: Optional[PassiveDnsStore] = None,
        enabled_conditions: FrozenSet[str] = ALL_CONDITIONS,
        ipinfo: Optional[IpInfoDatabase] = None,
        guard: Optional[SourceGuard] = None,
    ):
        unknown = enabled_conditions - ALL_CONDITIONS
        if unknown:
            raise ValueError(f"unknown conditions: {sorted(unknown)}")
        self.database = database
        self.pdns = pdns
        self.enabled = enabled_conditions
        self.ipinfo = ipinfo if ipinfo is not None else database.ipinfo
        self.guard = guard or SourceGuard()
        #: condition name -> number of records it could not be checked for
        self.skipped_conditions: Dict[str, int] = {}
        # verdict memo: distinct (domain, rrtype, rdata) keys repeat once
        # per nameserver serving them, so each is evaluated once and the
        # verdict fanned back out (see check_cached)
        self._memo: Dict[Tuple, CorrectnessVerdict] = {}
        self._memo_lock = threading.Lock()
        #: memo accounting, read by Stage2Metrics
        self.memo_hits = 0
        self.memo_misses = 0

    @property
    def memoizable(self) -> bool:
        """May repeat evaluations be answered from the verdict memo?

        Only when every consulted source is *deterministic* — repeat
        calls provably return the same answer and carry no call-count
        dependent side effects.  The in-memory stores qualify; fault
        injectors (chaos mode) do not, so degraded runs take the exact
        per-record path and stay byte-identical to the naive
        implementation.
        """
        if not getattr(self.ipinfo, "deterministic", False):
            return False
        if self.pdns is not None and not getattr(
            self.pdns, "deterministic", False
        ):
            return False
        return True

    def check_cached(
        self, record: UndelegatedRecord, now: float = 0.0
    ) -> CorrectnessVerdict:
        """Like :meth:`check`, but memoized per distinct UR key.

        The cache key folds in the guard's degraded-event counter: any
        change in source availability invalidates verdicts cached under
        the previous state, so a memoized answer is always one the live
        path would have produced under the current conditions.
        """
        if not self.memoizable:
            return self.check(record, now)
        key = (
            record.domain,
            record.rrtype,
            record.rdata_text,
            now,
            self.guard.degraded_events,
        )
        with self._memo_lock:
            hit = self._memo.get(key)
            if hit is not None:
                self.memo_hits += 1
                return hit
        verdict = self.check(record, now)
        with self._memo_lock:
            self.memo_misses += 1
            self._memo[key] = verdict
        return verdict

    def _note_skips(self, conditions: Tuple[str, ...]) -> None:
        for condition in conditions:
            self.skipped_conditions[condition] = (
                self.skipped_conditions.get(condition, 0) + 1
            )

    def source_health(self) -> Dict[str, SourceHealth]:
        """Health ledgers for pdns/ipinfo (see ``DegradedSources``)."""
        return self.guard.snapshot()

    def _pdns_hit(
        self, record: UndelegatedRecord, rrtype: int, now: float
    ) -> Tuple[bool, bool]:
        """(available, matched) for the pdns-history condition."""
        ok, hit = self.guard.try_call(
            "pdns",
            self.pdns.record_in_history,
            record.domain,
            rrtype,
            record.rdata_text,
            now,
        )
        return ok, bool(hit)

    def check(
        self, record: UndelegatedRecord, now: float = 0.0
    ) -> CorrectnessVerdict:
        """Evaluate every enabled condition against ``record``."""
        if record.rrtype == RRType.A:
            return self._check_a(record, now)
        if record.rrtype == RRType.TXT:
            return self._check_txt(record, now)
        if record.rrtype == RRType.MX:
            return self._check_mx(record, now)
        return CorrectnessVerdict(is_correct=False)

    # -- A records -------------------------------------------------------

    def _check_a(
        self, record: UndelegatedRecord, now: float
    ) -> CorrectnessVerdict:
        address = record.rdata_text
        profile = self.database.profile(record.domain)
        degraded: List[str] = []

        if COND_IP in self.enabled and profile.ips:
            if address in profile.ips:
                return CorrectnessVerdict(True, COND_IP)

        # the metadata-backed conditions share one guarded lookup
        meta = None
        if any(cond in self.enabled for cond in META_CONDITIONS):
            ok, meta = self.guard.try_call(
                "ipinfo", self.ipinfo.lookup, address
            )
            if not ok:
                meta = None
                degraded.extend(
                    cond for cond in META_CONDITIONS if cond in self.enabled
                )

        if COND_AS in self.enabled and profile.asns and meta is not None:
            if meta.asn in profile.asns and meta.asn != IpInfoDatabase.UNKNOWN_ASN:
                return CorrectnessVerdict(True, COND_AS)
        if COND_GEO in self.enabled and profile.countries and meta is not None:
            # Plain subset semantics, faithful to Appendix B.  Geo is the
            # weakest condition (an attacker can rent a server in the same
            # country); the ablation benchmark quantifies this.
            if meta.country in profile.countries:
                return CorrectnessVerdict(True, COND_GEO)
        if COND_CERT in self.enabled and profile.cert_orgs and meta is not None:
            if meta.cert_org is not None and meta.cert_org in profile.cert_orgs:
                return CorrectnessVerdict(True, COND_CERT)
        if COND_PDNS in self.enabled and self.pdns is not None:
            available, hit = self._pdns_hit(record, RRType.A, now)
            if available and hit:
                return CorrectnessVerdict(True, COND_PDNS)
            if not available:
                degraded.append(COND_PDNS)
        if COND_HTTP in self.enabled and meta is not None:
            page = meta.http
            if page.kind in (PageKind.PARKED, PageKind.REDIRECT):
                return CorrectnessVerdict(True, COND_HTTP)
            for kind in (PageKind.PARKED, PageKind.REDIRECT):
                if page.contains_keywords(PAGE_KEYWORDS[kind]):
                    return CorrectnessVerdict(True, COND_HTTP)
        if degraded:
            self._note_skips(tuple(degraded))
        return CorrectnessVerdict(False, degraded_conditions=tuple(degraded))

    # -- TXT records ------------------------------------------------------

    def _check_txt(
        self, record: UndelegatedRecord, now: float
    ) -> CorrectnessVerdict:
        profile = self.database.profile(record.domain)
        # §4.2: "URHunter excludes correct TXT records that exactly match
        # the correct records in the database."
        if record.rdata_text in profile.txt_values:
            return CorrectnessVerdict(True, COND_IP)
        if COND_PDNS in self.enabled and self.pdns is not None:
            available, hit = self._pdns_hit(record, RRType.TXT, now)
            if available and hit:
                return CorrectnessVerdict(True, COND_PDNS)
            if not available:
                self._note_skips((COND_PDNS,))
                return CorrectnessVerdict(
                    False, degraded_conditions=(COND_PDNS,)
                )
        return CorrectnessVerdict(False)

    # -- MX records (future-work record type) ------------------------------

    def _check_mx(
        self, record: UndelegatedRecord, now: float
    ) -> CorrectnessVerdict:
        profile = self.database.profile(record.domain)
        if record.rdata_text in profile.mx_values:
            return CorrectnessVerdict(True, COND_IP)
        if COND_PDNS in self.enabled and self.pdns is not None:
            available, hit = self._pdns_hit(record, RRType.MX, now)
            if available and hit:
                return CorrectnessVerdict(True, COND_PDNS)
            if not available:
                self._note_skips((COND_PDNS,))
                return CorrectnessVerdict(
                    False, degraded_conditions=(COND_PDNS,)
                )
        return CorrectnessVerdict(False)
