"""Stage 1 — response collection (§4.1).

Three collections feed the pipeline:

1. **Undelegated records** — every (target nameserver × target domain)
   pair is queried for A and TXT, skipping domains *exactly delegated* to
   that nameserver; NOERROR answers become candidate URs.
2. **Correct records** — the same domains resolved through worldwide open
   resolvers, plus six years of passive DNS, build the per-domain
   correct-record profiles.
3. **Protective records** — a probe domain owned by the measurer (hosted
   nowhere) is queried at every target nameserver; whatever comes back is
   that server's protective-record fingerprint.

The collector only *builds* the query matrix and *interprets* responses;
scheduling, pacing, retries, and failure accounting are delegated to a
:class:`~repro.engine.api.QueryEngine` (see :mod:`repro.engine`), so a
naive sequential scanner and the batched sharded scanner are
interchangeable.

Ethics controls from Appendix A are implemented: queries are issued in a
randomized order and rate-limited per server against the virtual clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..dns.message import Message, Rcode
from ..dns.name import Name, name
from ..dns.rdata import A, MX, TXT, RRType
from ..engine import (
    DEFAULT_ENGINE,
    EnginePolicy,
    QueryEngine,
    QueryOutcome,
    QueryTask,
    ScanMetrics,
    create_engine,
)
from ..net.network import NetworkError, SimulatedInternet
from ..obs.events import STAGE1 as OBS_STAGE1
from ..pipeline.errors import StageFailed
from .correctness import CorrectRecordDatabase
from .records import UndelegatedRecord, dedupe_urs


class CollectionFailure(StageFailed):
    """Stage-1 collection died mid-flight.

    The engine's partial :class:`~repro.engine.metrics.ScanMetrics` ride
    along so a checkpointing caller can preserve the retry/timeout
    accounting of the attempts that *did* happen before the crash —
    without this, a failed collection silently discarded everything the
    scan had already measured.
    """

    def __init__(
        self,
        collection: str,
        cause: BaseException,
        metrics: Optional[ScanMetrics],
    ):
        super().__init__(f"stage1-collect/{collection}", cause)
        #: which of the three collections broke ("protective"/"correct"/"ur")
        self.collection = collection
        #: partial engine accounting up to the failure (may be None)
        self.metrics = metrics


@dataclass(frozen=True)
class NameserverTarget:
    """One nameserver to be measured."""

    address: str
    provider: str
    hostname: Optional[Name] = None


@dataclass(frozen=True)
class DomainTarget:
    """One domain to be measured, with its top-list rank."""

    domain: Name
    rank: int


@dataclass
class ProtectiveFingerprint:
    """The protective records a nameserver serves for unhosted domains.

    Keyed per nameserver; matching is on (rrtype, rdata) because providers
    synthesize the same data for every unhosted name.
    """

    nameserver_ip: str
    records: Set[Tuple[int, str]] = field(default_factory=set)

    def matches(self, rrtype: int, rdata_text: str) -> bool:
        return (rrtype, rdata_text) in self.records


@dataclass
class CollectionResult:
    """Everything stage 1 produced.

    Returned by :meth:`ResponseCollector.collect_urs` (UR fields and
    counters populated) and :meth:`ResponseCollector.collect_all`
    (protective fingerprints, the correct-record database, and the scan
    metrics folded in as well).
    """

    undelegated: List[UndelegatedRecord] = field(default_factory=list)
    correct_db: Optional[CorrectRecordDatabase] = None
    protective: Dict[str, ProtectiveFingerprint] = field(
        default_factory=dict
    )
    responses_seen: int = 0
    queries_sent: int = 0
    timeouts: int = 0
    #: successful responses folded into ``correct_db`` by collect_all
    correct_successes: int = 0
    #: engine observability for the whole collection run
    metrics: Optional[ScanMetrics] = None
    #: virtual time pinned after the protective + correct collections,
    #: before the UR scan — stage 2's classification clock in both the
    #: batch and streaming execution modes (streaming classifies records
    #: while the scan is still running, so the clock cannot depend on
    #: when the scan *ends*)
    classification_epoch: float = 0.0


@dataclass
class CollectionPreamble:
    """Stage 1's eager prefix: everything the UR scan does not produce.

    Protective fingerprints and correct-record profiles are whole-corpus
    inputs to classification, so they are collected up front in both
    execution modes; the UR scan (batched or streamed) then completes
    the :class:`CollectionResult` via :meth:`fold_into`.
    """

    protective: Dict[str, ProtectiveFingerprint]
    correct_db: CorrectRecordDatabase
    correct_successes: int
    #: virtual time when the preamble finished — the classification clock
    classification_epoch: float

    def fold_into(self, result: CollectionResult) -> CollectionResult:
        result.protective = self.protective
        result.correct_db = self.correct_db
        result.correct_successes = self.correct_successes
        result.classification_epoch = self.classification_epoch
        return result


#: the record types the paper measures; MX is the §6 future-work
#: extension ("our methodology is also adaptive for ... other types of
#: records (e.g., MX records)") and can be enabled via ``query_types``.
DEFAULT_QUERY_TYPES = (RRType.A, RRType.TXT)


class ResponseCollector:
    """Builds the stage-1 query matrix and interprets the responses."""

    def __init__(
        self,
        network: SimulatedInternet,
        scanner_ip: str = "203.0.113.53",
        rng: Optional[random.Random] = None,
        per_server_interval: float = 0.0,
        query_types: Sequence[int] = DEFAULT_QUERY_TYPES,
        engine: Optional[QueryEngine] = None,
        policy: Optional[EnginePolicy] = None,
        engine_name: str = DEFAULT_ENGINE,
    ):
        self.network = network
        self.scanner_ip = scanner_ip
        self.rng = rng or random.Random(1)
        #: seconds of virtual time between queries to the same server
        #: (the paper averaged one query per server per 130 s)
        self.per_server_interval = per_server_interval
        self.query_types = tuple(query_types)
        if engine is None:
            if policy is None:
                policy = EnginePolicy(
                    per_server_interval=per_server_interval
                )
            engine = create_engine(
                engine_name, network, scanner_ip, policy=policy
            )
        self.engine: QueryEngine = engine
        network.register_stub(scanner_ip)
        #: optional repro.obs.RunTrace — each completed collection phase
        #: is emitted as a deterministic ``collect.phase`` event
        self.trace = None
        #: optional :class:`repro.plan.scanplan.ScanPlan` — when set,
        #: all three collections materialize their task lists from the
        #: plan's pre-enumerated (and pre-shuffled) units instead of
        #: generating queries inline; ``build_plan`` reproduces the
        #: inline enumeration draw for draw, so outputs are identical
        self.plan = None

    def emit_phase(self, phase: str) -> None:
        """Emit the completion event of one collection phase.

        Emitted *here* (not by the hunter after the fact) so breaker
        trips raised mid-phase interleave identically with the phase
        markers in both execution modes.  The counters come from the
        engine's per-phase ledger, which both modes accumulate in the
        same engine-schedule order.
        """
        if self.trace is None:
            return
        fields = {}
        counters = self.engine.metrics.stages.get(phase)
        if counters is not None:
            fields = {
                "queries": counters.queries,
                "responses": counters.responses,
                "timeouts": counters.timeouts,
                "retries": counters.retries,
                "giveups": counters.giveups,
                "skipped": counters.skipped,
            }
        self.trace.emit(
            "collect.phase", stage=OBS_STAGE1, phase=phase, **fields
        )

    # -- the whole of stage 1 ---------------------------------------------

    def collect_all(
        self,
        nameservers: Sequence[NameserverTarget],
        domains: Sequence[DomainTarget],
        delegated_to: Dict[Name, Set[str]],
        open_resolver_ips: Sequence[str],
        correct_db: CorrectRecordDatabase,
        probe_domain: Union[str, Name] = "urhunter-probe-owned.net",
    ) -> CollectionResult:
        """Run all three stage-1 collections through the engine.

        Order matches the paper's §4.1 narrative (protective → correct →
        UR scan); the engine keeps one metrics object across the three
        so the report sees the full scan accounting.
        """
        preamble = self.collect_preamble(
            nameservers,
            domains,
            open_resolver_ips,
            correct_db,
            probe_domain=probe_domain,
        )
        result = self._guarded(
            "ur", self.collect_urs, nameservers, domains, delegated_to
        )
        self.emit_phase("ur")
        preamble.fold_into(result)
        result.metrics = self.engine.metrics
        return result

    def collect_preamble(
        self,
        nameservers: Sequence[NameserverTarget],
        domains: Sequence[DomainTarget],
        open_resolver_ips: Sequence[str],
        correct_db: CorrectRecordDatabase,
        probe_domain: Union[str, Name] = "urhunter-probe-owned.net",
    ) -> "CollectionPreamble":
        """The batch prefix of stage 1: protective + correct collections.

        Both execution modes run this eagerly — protective fingerprints
        and correct-record profiles must be complete before the first UR
        can be classified.  Resets the engine metrics, so the UR scan
        that follows (eager or streamed) accumulates into the same
        ledger.
        """
        self.engine.metrics = ScanMetrics()
        protective = self._guarded(
            "protective",
            self.collect_protective_records,
            nameservers,
            probe_domain,
        )
        self.emit_phase("protective")
        successes = self._guarded(
            "correct",
            self.collect_correct_records,
            domains,
            open_resolver_ips,
            correct_db,
        )
        self.emit_phase("correct")
        return CollectionPreamble(
            protective=protective,
            correct_db=correct_db,
            correct_successes=successes,
            classification_epoch=self.network.now,
        )

    def _guarded(self, collection: str, fn, *args):
        """Run one collection; on failure, attach the partial metrics.

        Retry/timeout counts accumulated before the crash would
        otherwise vanish with the exception; :class:`CollectionFailure`
        carries them so checkpoints preserve the accounting.
        """
        try:
            return fn(*args)
        except CollectionFailure:
            raise
        except Exception as error:
            raise CollectionFailure(
                collection, error, self.engine.metrics
            ) from error

    # -- undelegated records ----------------------------------------------

    def collect_urs(
        self,
        nameservers: Sequence[NameserverTarget],
        domains: Sequence[DomainTarget],
        delegated_to: Dict[Name, Set[str]],
    ) -> CollectionResult:
        """Query every nameserver for every non-delegated domain.

        ``delegated_to`` maps each domain to the nameserver addresses it
        is genuinely delegated to; those pairs are skipped ("excludes the
        domains exactly delegated to the nameserver").

        Returns a :class:`CollectionResult` with the unique URs and the
        wire counters.
        """
        tasks = self.build_ur_tasks(nameservers, domains, delegated_to)
        outcomes = self.engine.execute(tasks)
        collected: List[UndelegatedRecord] = []
        for outcome in outcomes:
            collected.extend(self.urs_from_outcome(outcome))
        result = CollectionResult(undelegated=dedupe_urs(collected))
        _fold_counters(result, outcomes)
        return result

    def build_ur_tasks(
        self,
        nameservers: Sequence[NameserverTarget],
        domains: Sequence[DomainTarget],
        delegated_to: Dict[Name, Set[str]],
    ) -> List[QueryTask]:
        """The UR scan matrix, in the randomized (ethics) query order.

        Task-list order is the deterministic record order both execution
        modes share: the batch path drains outcomes in this order, the
        streaming path re-establishes it with a reorder buffer.
        """
        if self.plan is not None:
            return self.plan.tasks("ur")
        tasks: List[QueryTask] = []
        for nameserver in nameservers:
            for target in domains:
                if nameserver.address in delegated_to.get(
                    target.domain, set()
                ):
                    continue
                for qtype in self.query_types:
                    tasks.append(
                        QueryTask(
                            server_ip=nameserver.address,
                            qname=target.domain,
                            qtype=qtype,
                            stage="ur",
                            tag=nameserver,
                        )
                    )
        self.rng.shuffle(tasks)  # ethics: randomized query order
        return tasks

    def urs_from_outcome(
        self, outcome: QueryOutcome
    ) -> List[UndelegatedRecord]:
        """Candidate URs of one outcome (empty unless NOERROR answered)."""
        response = outcome.response
        if response is None:
            return []
        if response.header.rcode != Rcode.NOERROR:
            return []
        nameserver = outcome.task.tag
        assert isinstance(nameserver, NameserverTarget)
        return self._extract_urs(nameserver, outcome.task.qname, response)

    def iter_ur_outcomes(
        self, tasks: Sequence[QueryTask]
    ) -> Iterator[Tuple[int, QueryOutcome]]:
        """Stream the UR scan: ``(task_index, outcome)`` in completion
        order, wrapping engine errors in :class:`CollectionFailure` so
        the streaming path reports partial metrics exactly as the batch
        path does."""
        iterator = self.engine.execute_iter(tasks)
        while True:
            try:
                item = next(iterator)
            except StopIteration:
                return
            except CollectionFailure:
                raise
            except Exception as error:
                raise CollectionFailure(
                    "ur", error, self.engine.metrics
                ) from error
            yield item

    def _extract_urs(
        self,
        nameserver: NameserverTarget,
        domain: Name,
        response: Message,
    ) -> List[UndelegatedRecord]:
        records: List[UndelegatedRecord] = []
        for answer in response.answers:
            if answer.rrtype not in self.query_types:
                continue
            records.append(
                UndelegatedRecord(
                    domain=domain,
                    nameserver_ip=nameserver.address,
                    provider=nameserver.provider,
                    rrtype=answer.rrtype,
                    rdata_text=(
                        answer.rdata.address
                        if isinstance(answer.rdata, A)
                        else answer.rdata.value
                        if isinstance(answer.rdata, TXT)
                        else answer.rdata.to_text()
                    ),
                    nameserver_name=nameserver.hostname,
                    ttl=answer.ttl,
                )
            )
        return records

    # -- correct records -----------------------------------------------------

    def collect_correct_records(
        self,
        domains: Sequence[DomainTarget],
        open_resolver_ips: Sequence[str],
        correct_db: CorrectRecordDatabase,
    ) -> int:
        """Resolve each domain's A and TXT through every open resolver.

        Returns the number of successful responses folded into the
        database.  Manipulated resolvers contribute noise — exactly the
        imperfection the paper's vantage-point selection tolerates.
        """
        if self.plan is not None:
            tasks = self.plan.tasks("correct")
        else:
            tasks = []
            for resolver_ip in open_resolver_ips:
                for target in domains:
                    for qtype in self.query_types:
                        tasks.append(
                            QueryTask(
                                server_ip=resolver_ip,
                                qname=target.domain,
                                qtype=qtype,
                                stage="correct",
                                recursion_desired=True,
                                tag=target,
                            )
                        )
            self.rng.shuffle(tasks)
        successes = 0
        for outcome in self.engine.execute(tasks):
            response = outcome.response
            if response is None:
                continue
            if response.header.rcode != Rcode.NOERROR:
                continue
            successes += 1
            domain = outcome.task.qname
            for answer in response.answers:
                if isinstance(answer.rdata, A):
                    correct_db.observe_a(domain, answer.rdata.address)
                elif isinstance(answer.rdata, TXT):
                    correct_db.observe_txt(domain, answer.rdata.value)
                elif isinstance(answer.rdata, MX):
                    correct_db.observe_mx(domain, answer.rdata.to_text())
        return successes

    # -- protective records ------------------------------------------------------

    def collect_protective_records(
        self,
        nameservers: Sequence[NameserverTarget],
        probe_domain: Union[str, Name] = "urhunter-probe-owned.net",
    ) -> Dict[str, ProtectiveFingerprint]:
        """Learn each nameserver's protective-record fingerprint.

        The probe domain is ours and hosted nowhere, so any answer a
        server gives for it is synthesized protective data.
        """
        probe_domain = name(probe_domain)
        fingerprints: Dict[str, ProtectiveFingerprint] = {
            nameserver.address: ProtectiveFingerprint(
                nameserver_ip=nameserver.address
            )
            for nameserver in nameservers
        }
        if self.plan is not None:
            tasks = self.plan.tasks("protective")
        else:
            tasks = [
                QueryTask(
                    server_ip=nameserver.address,
                    qname=probe_domain,
                    qtype=qtype,
                    stage="protective",
                )
                for nameserver in nameservers
                for qtype in self.query_types
            ]
        for outcome in self.engine.execute(tasks):
            response = outcome.response
            if response is None:
                continue
            if response.header.rcode != Rcode.NOERROR:
                continue
            fingerprint = fingerprints[outcome.task.server_ip]
            for answer in response.answers:
                if isinstance(answer.rdata, A):
                    fingerprint.records.add(
                        (RRType.A, answer.rdata.address)
                    )
                elif isinstance(answer.rdata, TXT):
                    fingerprint.records.add(
                        (RRType.TXT, answer.rdata.value)
                    )
        return fingerprints

    # -- internals -----------------------------------------------------------

    def _query(
        self, server_ip: str, domain: Name, qtype: int
    ) -> Optional[Message]:
        """One ad-hoc query outside the engine (kept for extensions)."""
        query = Message.make_query(domain, qtype, recursion_desired=False)
        try:
            return self.network.query_dns_auto(
                self.scanner_ip, server_ip, query
            )
        except NetworkError:
            return None


def _fold_counters(
    result: CollectionResult, outcomes: Sequence[QueryOutcome]
) -> None:
    """Translate engine outcomes into the legacy wire counters."""
    attempts = 0
    responses = 0
    for outcome in outcomes:
        attempts += outcome.attempts
        if outcome.answered:
            responses += 1
    result.queries_sent = attempts
    result.responses_seen = responses
    # every sent attempt either produced the answer or timed out
    result.timeouts = attempts - responses


def select_target_nameservers(
    hosting_counts: Dict[str, int],
    nameserver_info: Dict[str, Tuple[str, Optional[Name]]],
    min_hosted: int = 50,
) -> List[NameserverTarget]:
    """§4.1's nameserver selection: servers hosting > ``min_hosted`` of the
    top list.

    ``hosting_counts`` maps nameserver address → number of top-list
    domains delegated to it; ``nameserver_info`` maps address →
    (provider, hostname).
    """
    selected = []
    for address, count in sorted(hosting_counts.items()):
        if count < min_hosted:
            continue
        provider, hostname = nameserver_info.get(address, ("unknown", None))
        selected.append(
            NameserverTarget(
                address=address, provider=provider, hostname=hostname
            )
        )
    return selected
