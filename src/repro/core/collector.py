"""Stage 1 — response collection (§4.1).

Three collections feed the pipeline:

1. **Undelegated records** — every (target nameserver × target domain)
   pair is queried for A and TXT, skipping domains *exactly delegated* to
   that nameserver; NOERROR answers become candidate URs.
2. **Correct records** — the same domains resolved through worldwide open
   resolvers, plus six years of passive DNS, build the per-domain
   correct-record profiles.
3. **Protective records** — a probe domain owned by the measurer (hosted
   nowhere) is queried at every target nameserver; whatever comes back is
   that server's protective-record fingerprint.

Ethics controls from Appendix A are implemented: queries are issued in a
randomized order and rate-limited per server against the virtual clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..dns.message import Message, Rcode
from ..dns.name import Name, name
from ..dns.rdata import A, MX, TXT, RRType
from ..net.network import NetworkError, SimulatedInternet
from .correctness import CorrectRecordDatabase
from .records import UndelegatedRecord, dedupe_urs


@dataclass(frozen=True)
class NameserverTarget:
    """One nameserver to be measured."""

    address: str
    provider: str
    hostname: Optional[Name] = None


@dataclass(frozen=True)
class DomainTarget:
    """One domain to be measured, with its top-list rank."""

    domain: Name
    rank: int


@dataclass
class ProtectiveFingerprint:
    """The protective records a nameserver serves for unhosted domains.

    Keyed per nameserver; matching is on (rrtype, rdata) because providers
    synthesize the same data for every unhosted name.
    """

    nameserver_ip: str
    records: Set[Tuple[int, str]] = field(default_factory=set)

    def matches(self, rrtype: int, rdata_text: str) -> bool:
        return (rrtype, rdata_text) in self.records


@dataclass
class CollectionResult:
    """Everything stage 1 produced."""

    undelegated: List[UndelegatedRecord]
    correct_db: CorrectRecordDatabase
    protective: Dict[str, ProtectiveFingerprint]
    responses_seen: int = 0
    queries_sent: int = 0
    timeouts: int = 0


#: the record types the paper measures; MX is the §6 future-work
#: extension ("our methodology is also adaptive for ... other types of
#: records (e.g., MX records)") and can be enabled via ``query_types``.
DEFAULT_QUERY_TYPES = (RRType.A, RRType.TXT)


class ResponseCollector:
    """Drives stage 1 against the simulated internet."""

    QUERY_TYPES = DEFAULT_QUERY_TYPES  # kept for backward compatibility

    def __init__(
        self,
        network: SimulatedInternet,
        scanner_ip: str = "203.0.113.53",
        rng: Optional[random.Random] = None,
        per_server_interval: float = 0.0,
        query_types: Sequence[int] = DEFAULT_QUERY_TYPES,
    ):
        self.network = network
        self.scanner_ip = scanner_ip
        self.rng = rng or random.Random(1)
        #: seconds of virtual time between queries to the same server
        #: (the paper averaged one query per server per 130 s)
        self.per_server_interval = per_server_interval
        self.query_types = tuple(query_types)
        network.register_stub(scanner_ip)

    # -- undelegated records ----------------------------------------------

    def collect_urs(
        self,
        nameservers: Sequence[NameserverTarget],
        domains: Sequence[DomainTarget],
        delegated_to: Dict[Name, Set[str]],
    ) -> Tuple[List[UndelegatedRecord], int, int, int]:
        """Query every nameserver for every non-delegated domain.

        ``delegated_to`` maps each domain to the nameserver addresses it
        is genuinely delegated to; those pairs are skipped ("excludes the
        domains exactly delegated to the nameserver").

        Returns (unique URs, responses seen, queries sent, timeouts).
        """
        pairs = [
            (nameserver, target)
            for nameserver in nameservers
            for target in domains
            if nameserver.address not in delegated_to.get(target.domain, set())
        ]
        self.rng.shuffle(pairs)  # ethics: randomized query order
        collected: List[UndelegatedRecord] = []
        responses = 0
        queries = 0
        timeouts = 0
        last_query_at: Dict[str, float] = {}
        for nameserver, target in pairs:
            for qtype in self.query_types:
                self._rate_limit(nameserver.address, last_query_at)
                queries += 1
                response = self._query(
                    nameserver.address, target.domain, qtype
                )
                if response is None:
                    timeouts += 1
                    continue
                responses += 1
                if response.header.rcode != Rcode.NOERROR:
                    continue
                collected.extend(
                    self._extract_urs(nameserver, target.domain, response)
                )
        return dedupe_urs(collected), responses, queries, timeouts

    def _extract_urs(
        self,
        nameserver: NameserverTarget,
        domain: Name,
        response: Message,
    ) -> List[UndelegatedRecord]:
        records: List[UndelegatedRecord] = []
        for answer in response.answers:
            if answer.rrtype not in self.query_types:
                continue
            records.append(
                UndelegatedRecord(
                    domain=domain,
                    nameserver_ip=nameserver.address,
                    provider=nameserver.provider,
                    rrtype=answer.rrtype,
                    rdata_text=(
                        answer.rdata.address
                        if isinstance(answer.rdata, A)
                        else answer.rdata.value
                        if isinstance(answer.rdata, TXT)
                        else answer.rdata.to_text()
                    ),
                    nameserver_name=nameserver.hostname,
                    ttl=answer.ttl,
                )
            )
        return records

    # -- correct records -----------------------------------------------------

    def collect_correct_records(
        self,
        domains: Sequence[DomainTarget],
        open_resolver_ips: Sequence[str],
        correct_db: CorrectRecordDatabase,
    ) -> int:
        """Resolve each domain's A and TXT through every open resolver.

        Returns the number of successful responses folded into the
        database.  Manipulated resolvers contribute noise — exactly the
        imperfection the paper's vantage-point selection tolerates.
        """
        successes = 0
        order = list(open_resolver_ips)
        self.rng.shuffle(order)
        for resolver_ip in order:
            for target in domains:
                for qtype in self.query_types:
                    query = Message.make_query(
                        target.domain, qtype, recursion_desired=True
                    )
                    try:
                        response = self.network.query_dns_auto(
                            self.scanner_ip, resolver_ip, query
                        )
                    except NetworkError:
                        continue
                    if response.header.rcode != Rcode.NOERROR:
                        continue
                    successes += 1
                    for answer in response.answers:
                        if isinstance(answer.rdata, A):
                            correct_db.observe_a(
                                target.domain, answer.rdata.address
                            )
                        elif isinstance(answer.rdata, TXT):
                            correct_db.observe_txt(
                                target.domain, answer.rdata.value
                            )
                        elif isinstance(answer.rdata, MX):
                            correct_db.observe_mx(
                                target.domain, answer.rdata.to_text()
                            )
        return successes

    # -- protective records ------------------------------------------------------

    def collect_protective_records(
        self,
        nameservers: Sequence[NameserverTarget],
        probe_domain: Union[str, Name] = "urhunter-probe-owned.net",
    ) -> Dict[str, ProtectiveFingerprint]:
        """Learn each nameserver's protective-record fingerprint.

        The probe domain is ours and hosted nowhere, so any answer a
        server gives for it is synthesized protective data.
        """
        probe_domain = name(probe_domain)
        fingerprints: Dict[str, ProtectiveFingerprint] = {}
        for nameserver in nameservers:
            fingerprint = ProtectiveFingerprint(
                nameserver_ip=nameserver.address
            )
            for qtype in self.query_types:
                response = self._query(
                    nameserver.address, probe_domain, qtype
                )
                if response is None:
                    continue
                if response.header.rcode != Rcode.NOERROR:
                    continue
                for answer in response.answers:
                    if isinstance(answer.rdata, A):
                        fingerprint.records.add(
                            (RRType.A, answer.rdata.address)
                        )
                    elif isinstance(answer.rdata, TXT):
                        fingerprint.records.add(
                            (RRType.TXT, answer.rdata.value)
                        )
            fingerprints[nameserver.address] = fingerprint
        return fingerprints

    # -- internals -----------------------------------------------------------

    def _query(
        self, server_ip: str, domain: Name, qtype: int
    ) -> Optional[Message]:
        query = Message.make_query(domain, qtype, recursion_desired=False)
        try:
            return self.network.query_dns_auto(self.scanner_ip, server_ip, query)
        except NetworkError:
            return None

    def _rate_limit(
        self, server_ip: str, last_query_at: Dict[str, float]
    ) -> None:
        if self.per_server_interval <= 0:
            return
        previous = last_query_at.get(server_ip)
        now = self.network.now
        if previous is not None and now - previous < self.per_server_interval:
            self.network.tick(self.per_server_interval - (now - previous))
        last_query_at[server_ip] = self.network.now


def select_target_nameservers(
    hosting_counts: Dict[str, int],
    nameserver_info: Dict[str, Tuple[str, Optional[Name]]],
    min_hosted: int = 50,
) -> List[NameserverTarget]:
    """§4.1's nameserver selection: servers hosting > ``min_hosted`` of the
    top list.

    ``hosting_counts`` maps nameserver address → number of top-list
    domains delegated to it; ``nameserver_info`` maps address →
    (provider, hostname).
    """
    selected = []
    for address, count in sorted(hosting_counts.items()):
        if count < min_hosted:
            continue
        provider, hostname = nameserver_info.get(address, ("unknown", None))
        selected.append(
            NameserverTarget(
                address=address, provider=provider, hostname=hostname
            )
        )
    return selected
