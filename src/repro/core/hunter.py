"""URHunter: the end-to-end measurement pipeline.

Wires the three stages together exactly as §4 describes:

1. :class:`~repro.core.collector.ResponseCollector` gathers URs, correct
   records (open resolvers + passive DNS) and protective fingerprints —
   driven through a pluggable :class:`~repro.engine.api.QueryEngine`
   (sequential or batched, selected by :attr:`HunterConfig.engine`);
2. :class:`~repro.core.suspicion.SuspicionFilter` excludes correct and
   protective records;
3. :class:`~repro.core.analysis.MaliciousBehaviorAnalyzer` fuses threat
   intel and sandbox IDS evidence into final verdicts.

Run :meth:`URHunter.run` to get a :class:`~repro.core.report.MeasurementReport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

from ..dns.name import Name
from ..engine import ENGINE_REGISTRY, DEFAULT_ENGINE, EnginePolicy, create_engine
from ..intel.aggregator import ThreatIntelAggregator
from ..intel.ipinfo import IpInfoDatabase
from ..intel.pdns import PassiveDnsStore
from ..net.network import SimulatedInternet
from ..net.traffic import CaptureMode
from ..obs.events import (
    STAGE1 as OBS_STAGE1,
    STAGE2 as OBS_STAGE2,
    STAGE3 as OBS_STAGE3,
    RunTrace,
    run_end_fields,
)
from ..pipeline.errors import SourceError
from ..pipeline.resilience import SourceHealth, merge_health
from ..plan.scanplan import ScanPlan, build_plan
from ..plan.shards import ReducedOutcome, run_shard_scan
from ..resilience import AimdController, DeadlineBudget, HedgeController
from ..sandbox.ids import Severity
from ..sandbox.sandbox import SandboxReport
from .analysis import MaliciousAnalysisResult, MaliciousBehaviorAnalyzer
from .collector import (
    DEFAULT_QUERY_TYPES,
    CollectionResult,
    DomainTarget,
    NameserverTarget,
    ResponseCollector,
)
from .correctness import (
    ALL_CONDITIONS,
    CorrectRecordDatabase,
    UniformityChecker,
)
from .parallel import Stage2Metrics
from .records import ClassifiedUR, UndelegatedRecord, dedupe_urs
from .report import DegradedSources, MeasurementReport, ReportAccumulator
from .suspicion import SuspicionFilter, SuspicionOutcome


@dataclass
class Stage1Result:
    """Everything stage 1 (collection) handed to stage 2."""

    collection: CollectionResult
    #: virtual time when collection finished — stage 2's pdns window and
    #: classification clock, checkpointed so a resumed run reproduces it
    now: float
    #: degradation notes accumulated during collection
    notes: Tuple[str, ...] = ()


@dataclass
class Stage2Result:
    """Everything stage 2 (exclusion) handed to stage 3."""

    outcome: SuspicionOutcome
    fn_rate: Optional[float] = None
    #: pdns/ipinfo health ledgers from the uniformity checker
    source_health: Dict[str, SourceHealth] = None  # type: ignore[assignment]
    #: Appendix-B conditions skipped per record count
    skipped_conditions: Dict[str, int] = None  # type: ignore[assignment]
    #: performance counters of the main classification pass
    metrics: Optional[Stage2Metrics] = None

    def __post_init__(self) -> None:
        if self.source_health is None:
            self.source_health = {}
        if self.skipped_conditions is None:
            self.skipped_conditions = {}


@dataclass
class Stage3Result:
    """Everything stage 3 (malicious-behaviour analysis) produced."""

    analysis: MaliciousAnalysisResult
    #: per-vendor health ledgers from the intel aggregator
    source_health: Dict[str, SourceHealth] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.source_health is None:
            self.source_health = {}


@runtime_checkable
class WorldLike(Protocol):
    """What :meth:`URHunter.from_world` needs from a scenario world.

    A typed replacement for the old ``world: "object"`` duck typing:
    :mod:`repro.core` still never imports :mod:`repro.scenario`, but the
    contract is now explicit and checkable.
    """

    network: SimulatedInternet
    nameserver_targets: Sequence[NameserverTarget]
    domain_targets: Sequence[DomainTarget]
    delegated_to: Dict[Name, Set[str]]
    open_resolver_ips: Sequence[str]
    ipinfo: IpInfoDatabase
    intel: ThreatIntelAggregator
    pdns: Optional[PassiveDnsStore]
    sandbox_reports: Sequence[SandboxReport]


@dataclass
class HunterConfig:
    """Tunables of the pipeline (defaults follow the paper).

    Values are validated at construction time; a bad knob raises
    :class:`ValueError` immediately instead of failing mid-measurement.
    """

    #: Appendix-B conditions in force (ablation hook)
    enabled_conditions: FrozenSet[str] = ALL_CONDITIONS
    #: minimum IDS severity accepted as evidence (ablation hook)
    min_severity: Severity = Severity.MEDIUM
    #: evidence-source switches (ablation hooks)
    use_intel: bool = True
    use_ids: bool = True
    #: the §4.3 A/TXT co-hosting join (ablation hook)
    use_cohost_join: bool = True
    #: probe domain owned by the measurer, hosted nowhere
    probe_domain: str = "urhunter-probe-owned.net"
    #: source address of the scanner
    scanner_ip: str = "203.0.113.53"
    #: virtual-time spacing between queries to one server (ethics)
    per_server_interval: float = 0.0
    #: RNG seed for query-order randomization
    seed: int = 1
    #: record types to measure (add RRType.MX for the future-work sweep)
    query_types: Tuple[int, ...] = DEFAULT_QUERY_TYPES
    #: expand the target set with subdomains recovered from passive DNS
    #: (the paper's §6 future-work direction)
    expand_pdns_subdomains: bool = False
    #: which scan engine drives stage 1 (see repro.engine.ENGINE_REGISTRY)
    engine: str = DEFAULT_ENGINE
    #: worker lanes the batched engine keeps in flight
    max_concurrency: int = 8
    #: per-query retry budget after a timeout
    retries: int = 2
    #: virtual seconds a lost query costs before giving up
    timeout: float = 5.0
    #: worker threads for stage-2 classification (output is byte-identical
    #: across worker counts; see repro.core.parallel)
    stage2_workers: int = 1
    #: memoize uniformity verdicts per distinct (domain, rrtype, rdata)
    #: key when the sources are deterministic
    stage2_memoize: bool = True
    #: dataflow mode: "batch" runs each stage to completion before the
    #: next starts; "stream" flows records through bounded channels so
    #: classification overlaps the scan (byte-identical output)
    execution: str = "batch"
    #: bounded-channel capacity (and stage-2 chunk size) of the
    #: streaming dataflow
    channel_depth: int = 64
    #: virtual-seconds budget for the whole run; once exhausted the
    #: engine sheds not-yet-sent queries (0 = unlimited)
    run_deadline: float = 0.0
    #: virtual-seconds budget per pipeline phase (0 = unlimited)
    stage_deadline: float = 0.0
    #: base hedge delay: after a first failed attempt, retry after this
    #: many virtual seconds instead of the full timeout + backoff window
    #: (0 = hedging off)
    hedge_delay: float = 0.0
    #: AIMD adaptive per-server/per-provider send credit (no-op until
    #: the first failure)
    aimd: bool = False
    #: serve compiled zone answers and memoized wire codec results on
    #: the simulated network (the scan-path fast lane; output is
    #: byte-identical either way — False keeps the naive reference path)
    scan_cache: bool = True
    #: scan-phase traffic-capture fidelity: "full" stores every flow,
    #: "sampled" every Nth per protocol, "off" only counts (sandbox
    #: detonation happens at world build and always captures in full)
    capture_mode: str = "full"
    #: shard-mode stage 1: partition the UR scan's nameserver groups
    #: into this many shards, each executed in clock/RNG isolation and
    #: merged back into one byte-identical report (0 = legacy in-line
    #: scan; see repro.plan)
    shards: int = 0
    #: worker processes executing shards concurrently (1 = run every
    #: shard in this process; >1 needs a picklable world recipe, which
    #: the CLI provides)
    shard_workers: int = 1
    #: replay unchanged nameserver groups from an attached
    #: :class:`~repro.incremental.GroupResultStore` instead of
    #: re-querying them (no-op without a store; the warm report is
    #: byte-identical to a cold full scan — see repro.incremental)
    incremental: bool = True

    #: knobs that do not change *what* the pipeline computes, only how
    #: fast — excluded from the checkpoint fingerprint so a run may be
    #: resumed under a different worker count, memoization setting, or
    #: execution mode (batch and streaming reports are byte-identical)
    FINGERPRINT_EXCLUDE: ClassVar[FrozenSet[str]] = frozenset(
        {
            "stage2_workers",
            "stage2_memoize",
            "execution",
            "channel_depth",
            "scan_cache",
            "capture_mode",
            "shards",
            "shard_workers",
            "incremental",
        }
    )

    def __post_init__(self) -> None:
        unknown = frozenset(self.enabled_conditions) - ALL_CONDITIONS
        if unknown:
            raise ValueError(
                "unknown Appendix-B condition(s): "
                f"{', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(ALL_CONDITIONS))})"
            )
        if self.per_server_interval < 0:
            raise ValueError(
                "per_server_interval must be >= 0, got "
                f"{self.per_server_interval}"
            )
        if not self.query_types:
            raise ValueError("query_types must name at least one RR type")
        if self.engine not in ENGINE_REGISTRY:
            raise ValueError(
                f"unknown engine {self.engine!r} "
                f"(known: {', '.join(sorted(ENGINE_REGISTRY))})"
            )
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.stage2_workers < 1:
            raise ValueError(
                f"stage2_workers must be >= 1, got {self.stage2_workers}"
            )
        if self.execution not in ("batch", "stream"):
            raise ValueError(
                f"unknown execution mode {self.execution!r} "
                "(known: batch, stream)"
            )
        if self.channel_depth < 1:
            raise ValueError(
                f"channel_depth must be >= 1, got {self.channel_depth}"
            )
        if self.run_deadline < 0:
            raise ValueError(
                f"run_deadline must be >= 0, got {self.run_deadline}"
            )
        if self.stage_deadline < 0:
            raise ValueError(
                f"stage_deadline must be >= 0, got {self.stage_deadline}"
            )
        if self.hedge_delay < 0:
            raise ValueError(
                f"hedge_delay must be >= 0, got {self.hedge_delay}"
            )
        if self.hedge_delay > 0 and self.hedge_delay >= self.timeout:
            raise ValueError(
                f"hedge_delay ({self.hedge_delay}) must be below the "
                f"engine timeout ({self.timeout}) — a hedge that fires "
                "after the timeout is a plain retry"
            )
        if self.capture_mode not in ("full", "sampled", "off"):
            raise ValueError(
                f"unknown capture_mode {self.capture_mode!r} "
                "(known: full, sampled, off)"
            )
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards}")
        if self.shard_workers < 1:
            raise ValueError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )

    def engine_policy(self) -> EnginePolicy:
        """The engine policy implied by this configuration."""
        return EnginePolicy(
            max_concurrency=self.max_concurrency,
            retries=self.retries,
            timeout=self.timeout,
            per_server_interval=self.per_server_interval,
        )


def _stage1_end(collection: CollectionResult) -> Dict[str, object]:
    """stage.end fields for stage 1 — identical in both execution modes."""
    return {
        "records": len(collection.undelegated),
        "queries": collection.queries_sent,
        "responses": collection.responses_seen,
        "timeouts": collection.timeouts,
    }


def _stage2_end(
    outcome: SuspicionOutcome,
    metrics: Optional[Stage2Metrics],
    fn_rate: Optional[float],
) -> Dict[str, object]:
    """stage.end fields for stage 2 (deterministic counters only)."""
    fields: Dict[str, object] = {
        "records": len(outcome.classified),
        "suspicious": len(outcome.suspicious),
    }
    if metrics is not None:
        fields["protective"] = metrics.protective_matches
    if fn_rate is not None:
        fields["fn_rate"] = fn_rate
    return fields


def _stage3_end(analysis: MaliciousAnalysisResult) -> Dict[str, object]:
    """stage.end fields for stage 3."""
    return {
        "refined": len(analysis.classified),
        "malicious": len(analysis.malicious),
        "ip_verdicts": len(analysis.ip_verdicts),
        "txt_without_ip": analysis.txt_without_ip,
    }


class URHunter:
    """The measurement framework (paper §4)."""

    def __init__(
        self,
        network: SimulatedInternet,
        nameservers: Sequence[NameserverTarget],
        domains: Sequence[DomainTarget],
        delegated_to: Dict[Name, Set[str]],
        open_resolver_ips: Sequence[str],
        ipinfo: IpInfoDatabase,
        intel: ThreatIntelAggregator,
        pdns: Optional[PassiveDnsStore] = None,
        sandbox_reports: Sequence[SandboxReport] = (),
        config: Optional[HunterConfig] = None,
        trace: Optional[RunTrace] = None,
    ):
        self.network = network
        self.nameservers = list(nameservers)
        self.domains = list(domains)
        self.delegated_to = delegated_to
        self.open_resolver_ips = list(open_resolver_ips)
        self.ipinfo = ipinfo
        self.intel = intel
        self.pdns = pdns
        self.sandbox_reports = list(sandbox_reports)
        self.config = config or HunterConfig()
        # Scan-path fast-lane knobs apply to the shared network: the
        # compiled/memoized caches are byte-identity-preserving, and the
        # capture mode only thins the *scan-phase* flow store (sandbox
        # detonation happens at world-build time, before this runs).
        network.scan_cache_enabled = self.config.scan_cache
        capture = getattr(network, "capture", None)
        if capture is not None and hasattr(capture, "mode"):
            capture.mode = CaptureMode(self.config.capture_mode)
        self.engine = create_engine(
            self.config.engine,
            network,
            self.config.scanner_ip,
            policy=self.config.engine_policy(),
        )
        # Resilience controllers attach by duck typing so the QueryEngine
        # protocol stays minimal; every mechanism is a deterministic
        # no-op on a healthy world (clean runs are byte-identical to a
        # config with all of these off).
        if self.config.run_deadline > 0 or self.config.stage_deadline > 0:
            self.engine.budget = DeadlineBudget(
                run_deadline=self.config.run_deadline,
                stage_deadline=self.config.stage_deadline,
            )
        if self.config.hedge_delay > 0:
            self.engine.hedge = HedgeController(
                base_delay=self.config.hedge_delay,
                timeout=self.config.timeout,
            )
        if self.config.aimd:
            self.engine.aimd = AimdController(timeout=self.config.timeout)
        #: the engine's resilience counters (None for engines without them)
        self.resilience = getattr(self.engine, "resilience", None)
        self.collector = ResponseCollector(
            network,
            scanner_ip=self.config.scanner_ip,
            rng=random.Random(self.config.seed),
            per_server_interval=self.config.per_server_interval,
            query_types=self.config.query_types,
            engine=self.engine,
        )
        #: the stage-1 scan plan of the *configured* targets; a pure
        #: value of (world, config), built before any packet moves —
        #: its hash is the identity checkpoints and traces stamp.
        #: (pdns expansion may grow the executed plan at run time; see
        #: :meth:`_executed_plan`)
        self.plan: ScanPlan = build_plan(
            self.nameservers,
            self.domains,
            self.delegated_to,
            self.open_resolver_ips,
            self.config,
        )
        #: picklable world recipe for the process-pool shard runner
        #: (set by the CLI when ``--shard-workers`` > 1; None keeps
        #: pooled execution off and shards run in this process)
        self.world_spec = None
        #: checkpoint store granting per-shard partial persistence
        #: (set by the pipeline runner when sharding is on)
        self.shard_store = None
        #: incremental group result store (set by the CLI's
        #: ``--result-store`` or a longitudinal study); groups whose
        #: world state is unchanged replay from it instead of
        #: re-querying — see :mod:`repro.incremental`
        self.result_store = None
        # Populated by run(); kept for inspection and tests.
        self.correct_db: Optional[CorrectRecordDatabase] = None
        self.last_filter: Optional[SuspicionFilter] = None
        self.last_checker: Optional[UniformityChecker] = None
        self.last_analyzer: Optional[MaliciousBehaviorAnalyzer] = None
        #: optional IP-metadata source override for stage 2 (fault
        #: injection hook); stage 1 keeps using ``self.ipinfo`` so the
        #: correct-record profiles stay intact
        self.stage2_ipinfo: Optional[IpInfoDatabase] = None
        #: channel-occupancy statistics of the last streaming run
        self.last_flow_stats = None
        #: the run-scoped event bus (see repro.obs); stage spans,
        #: collection progress, and degradation transitions are emitted
        #: through it when attached
        self.trace: Optional[RunTrace] = None
        self.attach_trace(trace)

    def attach_trace(self, trace: Optional[RunTrace]) -> None:
        """Wire one event bus through the hunter, engine, and collector."""
        self.trace = trace
        self.engine.trace = trace
        self.collector.trace = trace
        if trace is not None:
            trace.bind_plan(self.plan.plan_hash)

    def _emit(self, name: str, stage: Optional[str] = None, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(name, stage=stage, **fields)

    def _config_fingerprint(self) -> str:
        # lazy import: repro.pipeline.checkpoint imports this module
        from ..pipeline.checkpoint import config_fingerprint

        return config_fingerprint(
            self.config, extra={"plan": self.plan.plan_hash}
        )

    @classmethod
    def from_world(
        cls, world: WorldLike, config: Optional[HunterConfig] = None
    ) -> "URHunter":
        """Build a hunter from anything satisfying :class:`WorldLike`
        (e.g. :class:`repro.scenario.world.World`)."""
        return cls(
            network=world.network,
            nameservers=world.nameserver_targets,
            domains=world.domain_targets,
            delegated_to=world.delegated_to,
            open_resolver_ips=world.open_resolver_ips,
            ipinfo=world.ipinfo,
            intel=world.intel,
            pdns=world.pdns,
            sandbox_reports=world.sandbox_reports,
            config=config,
        )

    # -- pipeline --------------------------------------------------------

    def _expanded_domains(self, notes: List[str]) -> List[DomainTarget]:
        """The target domains, optionally expanded from passive DNS.

        Expansion is best-effort: a dead pdns source degrades the run to
        the configured targets (noted) instead of aborting.
        """
        domains = list(self.domains)
        if self.config.expand_pdns_subdomains and self.pdns is not None:
            try:
                domains.extend(
                    recover_pdns_subdomains(
                        self.pdns, domains, self.network.now
                    )
                )
            except SourceError as error:
                notes.append(f"pdns-expansion-skipped:{error.source}")
        return domains

    def _executed_plan(self, domains: Sequence[DomainTarget]) -> ScanPlan:
        """The plan stage 1 actually executes.

        Identical to :attr:`plan` unless pdns expansion grew the target
        list at run time — in which case the plan is rebuilt over the
        expanded targets (still a pure function of the expanded world,
        so both execution modes and every shard count agree on it).
        """
        if list(domains) == self.domains:
            return self.plan
        return build_plan(
            self.nameservers,
            domains,
            self.delegated_to,
            self.open_resolver_ips,
            self.config,
        )

    def _plan_built(self, plan: ScanPlan) -> None:
        """Emit the deterministic ``plan.built`` event.

        Emitted in every run — sharded or not — so the deterministic
        trace section stays byte-identical across ``--shards`` values.
        (The shard count itself is deliberately absent: it is a
        performance knob, like worker counts.)
        """
        counts = plan.unit_counts()
        self._emit(
            "plan.built",
            stage=OBS_STAGE1,
            hash=plan.plan_hash,
            groups=len(plan.groups),
            protective=counts["protective"],
            correct=counts["correct"],
            ur=counts["ur"],
        )

    def stage1_collect(self) -> Stage1Result:
        """Stage 1: all three collections through the scan engine.

        ``now`` is the collection's *classification epoch* — the virtual
        time pinned after the protective + correct collections, before
        the UR scan.  Both execution modes classify against this clock
        (streaming classifies records while the scan is still running),
        so it is the value checkpoints carry.
        """
        self._emit(
            "stage.start",
            stage=OBS_STAGE1,
            nameservers=len(self.nameservers),
            domains=len(self.domains),
        )
        notes: List[str] = []
        domains = self._expanded_domains(notes)
        plan = self._executed_plan(domains)
        self._plan_built(plan)
        self.collector.plan = plan
        correct_db = CorrectRecordDatabase(self.ipinfo)
        if self.config.shards > 0 or self._incremental_ready():
            collection = self._collect_sharded(domains, correct_db, plan)
        else:
            collection = self.collector.collect_all(
                self.nameservers,
                domains,
                self.delegated_to,
                self.open_resolver_ips,
                correct_db,
                probe_domain=self.config.probe_domain,
            )
        self.correct_db = correct_db
        self._emit("stage.end", stage=OBS_STAGE1, **_stage1_end(collection))
        return Stage1Result(
            collection=collection,
            now=collection.classification_epoch,
            notes=tuple(notes),
        )

    def _incremental_ready(self) -> bool:
        """Whether the incremental group path should run at ``shards=0``.

        True only when a result store is attached, the knob is on, and
        the run is cacheable.  Faulted or chaos-scripted runs stay on
        the legacy in-line path (byte-identical to pre-store behaviour);
        the shard runner re-checks cacheability and bypasses the store
        itself when ``--shards`` forced it onto the group path anyway.
        """
        if self.result_store is None or not self.config.incremental:
            return False
        from ..incremental import run_cacheable

        return run_cacheable(self)[0]

    def _collect_sharded(
        self,
        domains: Sequence[DomainTarget],
        correct_db: CorrectRecordDatabase,
        plan: ScanPlan,
    ) -> CollectionResult:
        """Shard-mode stage 1: eager preamble, then the shard runner.

        The protective and correct collections are whole-corpus inputs
        shared by every shard, so they run once in the parent (exactly
        as the streaming mode's preamble does); the UR scan is then
        executed group by group through :func:`repro.plan.shards`.
        """
        preamble = self.collector.collect_preamble(
            self.nameservers,
            domains,
            self.open_resolver_ips,
            correct_db,
            probe_domain=self.config.probe_domain,
        )
        outcomes = run_shard_scan(
            self, plan, preamble.classification_epoch
        )
        return self._fold_shard_outcomes(outcomes, preamble)

    def _fold_shard_outcomes(
        self,
        outcomes: Sequence[ReducedOutcome],
        preamble,
    ) -> CollectionResult:
        """Assemble the batch-shape :class:`CollectionResult` from the
        merged shard outcomes (already sorted in global plan order)."""
        collected: List[UndelegatedRecord] = []
        attempts = 0
        responses = 0
        for outcome in outcomes:
            attempts += outcome.attempts
            if outcome.answered:
                responses += 1
            collected.extend(outcome.urs)
        # same emission point as the in-line path: the UR phase counters
        # were merged into the parent engine ledger by the shard runner
        self.collector.emit_phase("ur")
        result = CollectionResult(
            undelegated=dedupe_urs(collected),
            queries_sent=attempts,
            responses_seen=responses,
            # every sent attempt either answered or timed out
            timeouts=attempts - responses,
        )
        preamble.fold_into(result)
        result.metrics = self.engine.metrics
        return result

    def stage2_exclude(
        self, stage1: Stage1Result, validate: bool = True
    ) -> Stage2Result:
        """Stage 2: exclusion of correct and protective records.

        Both classification and the §4.2 false-negative validation use
        ``stage1.now`` as the clock — the checkpointed collection
        timestamp — so a resumed run reproduces the live run exactly.
        """
        self._emit(
            "stage.start",
            stage=OBS_STAGE2,
            records=len(stage1.collection.undelegated),
        )
        suspicion = self._stage2_filter(stage1.collection.protective)
        outcome = suspicion.classify(
            stage1.collection.undelegated, now=stage1.now
        )
        # snapshot before the FN validation below reruns classify()
        metrics = suspicion.last_metrics
        fn_rate: Optional[float] = None
        if validate:
            fn_rate = suspicion.false_negative_rate(
                self._delegated_records_sample(), now=stage1.now
            )
        self._emit(
            "stage.end",
            stage=OBS_STAGE2,
            **_stage2_end(outcome, metrics, fn_rate),
        )
        return Stage2Result(
            outcome=outcome,
            fn_rate=fn_rate,
            source_health=suspicion.checker.source_health(),
            skipped_conditions=dict(suspicion.checker.skipped_conditions),
            metrics=metrics,
        )

    def _stage2_filter(self, protective) -> SuspicionFilter:
        """Build the stage-2 checker + filter (shared by both modes)."""
        if self.correct_db is None:
            # resumed run: the correct-record profiles arrived with the
            # checkpoint inside stage1.collection's database reference
            raise RuntimeError(
                "stage 2 requires correct_db; run stage1_collect "
                "or restore it from a checkpoint first"
            )
        checker = UniformityChecker(
            self.correct_db,
            pdns=self.pdns,
            enabled_conditions=self.config.enabled_conditions,
            ipinfo=self.stage2_ipinfo,
        )
        self.last_checker = checker
        suspicion = SuspicionFilter(
            checker,
            protective,
            workers=self.config.stage2_workers,
            memoize=self.config.stage2_memoize,
        )
        self.last_filter = suspicion
        if self.trace is not None:
            checker.guard.bind_trace(self.trace, OBS_STAGE2)
        return suspicion

    def _stage3_analyzer(self) -> MaliciousBehaviorAnalyzer:
        """Build the stage-3 analyzer (shared by both modes)."""
        analyzer = MaliciousBehaviorAnalyzer(
            self.intel,
            self.sandbox_reports,
            min_severity=self.config.min_severity,
            use_intel=self.config.use_intel,
            use_ids=self.config.use_ids,
            use_cohost_join=self.config.use_cohost_join,
        )
        self.last_analyzer = analyzer
        if self.trace is not None:
            self.intel.guard.bind_trace(self.trace, OBS_STAGE3)
        return analyzer

    def stage3_analyze(self, stage2: Stage2Result) -> Stage3Result:
        """Stage 3: malicious behaviour analysis on the suspicious set."""
        self._emit(
            "stage.start",
            stage=OBS_STAGE3,
            suspicious=len(stage2.outcome.suspicious),
        )
        analyzer = self._stage3_analyzer()
        analysis = analyzer.analyze(stage2.outcome.suspicious)
        self._emit("stage.end", stage=OBS_STAGE3, **_stage3_end(analysis))
        return Stage3Result(
            analysis=analysis,
            source_health=self.intel.source_health(),
        )

    def build_report(
        self,
        stage1: Stage1Result,
        stage2: Stage2Result,
        stage3: Stage3Result,
    ) -> MeasurementReport:
        """Assemble the final report, including degradation provenance.

        The :class:`~repro.core.report.ReportAccumulator` defines the
        canonical entry order (clean stage-2 entries, then the refined
        stage-3 entries, each in record order); the streaming sink folds
        the same accumulator incrementally, which is what makes the two
        execution modes byte-identical.
        """
        accumulator = ReportAccumulator()
        for entry in stage2.outcome.classified:
            if not entry.is_suspicious:
                accumulator.add(entry)
        for entry in stage3.analysis.classified:
            accumulator.add(entry)
        classified: List[ClassifiedUR] = accumulator.classified()
        unverifiable = accumulator.unverifiable
        # The resilience snapshot only joins the report once a mechanism
        # actually fired — a healthy run renders byte-identically to a
        # run without resilience configured.
        resilience = self.resilience
        if resilience is not None and not resilience.active:
            resilience = None
        notes = stage1.notes
        if resilience is not None and resilience.shed_total:
            # shed queries degrade coverage: surface them next to the
            # other degradation provenance (drives the degraded-mode
            # exit contract)
            notes = notes + (f"shed-queries:{resilience.shed_total}",)
        degraded = DegradedSources(
            sources=merge_health(
                stage2.source_health, stage3.source_health
            ),
            skipped_conditions=dict(stage2.skipped_conditions),
            unverifiable_urs=unverifiable,
            partial_ip_verdicts=stage3.analysis.partial_ip_verdicts,
            notes=notes,
        )
        collection = stage1.collection
        return MeasurementReport(
            classified=classified,
            ip_verdicts=stage3.analysis.ip_verdicts,
            queries_sent=collection.queries_sent,
            responses_seen=collection.responses_seen,
            timeouts=collection.timeouts,
            txt_without_ip=stage3.analysis.txt_without_ip,
            false_negative_rate=stage2.fn_rate,
            scan_metrics=collection.metrics,
            stage2_metrics=stage2.metrics,
            resilience_metrics=resilience,
            degraded=degraded if degraded.is_degraded else None,
        )

    def run(self, validate: bool = True) -> MeasurementReport:
        """Execute all three stages and build the report.

        ``config.execution`` selects the dataflow: ``"batch"`` runs each
        stage to completion before the next, ``"stream"`` flows records
        through bounded channels (:meth:`run_flow`) — the reports are
        byte-identical.  With ``validate`` the §4.2 zero-false-negative
        check also runs (delegated records of the target domains through
        the exclusion stage).  For checkpointed, resumable execution
        wrap the hunter in :class:`repro.pipeline.PipelineRunner`
        instead.
        """
        self._emit("run.start", fingerprint=self._config_fingerprint())
        if self.config.execution == "stream":
            stage1, stage2, stage3 = self.run_flow(validate=validate)
        else:
            stage1 = self.stage1_collect()
            stage2 = self.stage2_exclude(stage1, validate=validate)
            stage3 = self.stage3_analyze(stage2)
        report = self.build_report(stage1, stage2, stage3)
        self._emit("run.end", **run_end_fields(report))
        return report

    # -- streaming dataflow -------------------------------------------------

    def run_flow(
        self,
        validate: bool = True,
        segment_size: int = 0,
        segment_sink=None,
        resume_entries: Sequence[ClassifiedUR] = (),
        segment_start: int = 0,
    ) -> Tuple[Stage1Result, Stage2Result, Stage3Result]:
        """Run all three stages as one record-level streaming dataflow.

        The collector, exclusion, and analysis stages become nodes of a
        :class:`repro.flow.FlowGraph` connected by bounded channels of
        ``config.channel_depth``; a record is classified while the scan
        is still running, and only the final report (plus the stage-2
        ledger the checkpoints need) is materialised.  Output is
        byte-identical to the batch stages for any channel depth, worker
        count, and fault schedule.

        ``segment_size``/``segment_sink`` enable incremental segment
        checkpoints: every ``segment_size`` classified records the sink
        receives ``(segment_index, entries)``.  ``resume_entries``
        replays previously checkpointed classifications (the scan is
        re-driven — it is deterministic — but stage 2 skips the replayed
        prefix); ``segment_start`` numbers the first *new* segment.
        """
        # Lazy import: repro.flow imports core submodules, so the module
        # level would be a cycle.
        from ..flow import run_pipeline_flow

        # Logical span markers: the flow interleaves the three stages, so
        # the start/end events are emitted around (and after) the pump and
        # rely on the trace's canonical ordering to land exactly where the
        # batch mode puts them (see repro.obs.events.TraceEvent.sort_key).
        self._emit(
            "stage.start",
            stage=OBS_STAGE1,
            nameservers=len(self.nameservers),
            domains=len(self.domains),
        )
        notes: List[str] = []
        domains = self._expanded_domains(notes)
        plan = self._executed_plan(domains)
        self._plan_built(plan)
        self.collector.plan = plan
        correct_db = CorrectRecordDatabase(self.ipinfo)
        preamble = self.collector.collect_preamble(
            self.nameservers,
            domains,
            self.open_resolver_ips,
            correct_db,
            probe_domain=self.config.probe_domain,
        )
        self.correct_db = correct_db
        suspicion = self._stage2_filter(preamble.protective)
        analyzer = self._stage3_analyzer()
        tasks = self.collector.build_ur_tasks(
            self.nameservers, domains, self.delegated_to
        )
        # Shard mode runs the UR scan eagerly through the shard runner
        # (it must own clock/RNG isolation); the collector node then
        # streams the pre-reduced outcomes instead of driving the
        # engine, and everything downstream is unchanged.
        payloads = None
        if self.config.shards > 0 or self._incremental_ready():
            payloads = run_shard_scan(
                self, plan, preamble.classification_epoch
            )
        flow = run_pipeline_flow(
            collector=self.collector,
            tasks=tasks,
            preamble=preamble,
            payloads=payloads,
            suspicion=suspicion,
            analyzer=analyzer,
            now=preamble.classification_epoch,
            channel_depth=self.config.channel_depth,
            segment_size=segment_size,
            segment_sink=segment_sink,
            resume_entries=resume_entries,
            segment_start=segment_start,
            trace=self.trace,
        )
        self.last_flow_stats = flow.stats
        stage1 = Stage1Result(
            collection=flow.collection,
            now=preamble.classification_epoch,
            notes=tuple(notes),
        )
        # The §4.2 validation runs after the flow drains, exactly where
        # the batch mode runs it (after classification, before the
        # stage-2 ledgers are snapshotted).
        fn_rate: Optional[float] = None
        if validate:
            fn_rate = suspicion.false_negative_rate(
                self._delegated_records_sample(), now=stage1.now
            )
        stage2 = Stage2Result(
            outcome=flow.outcome,
            fn_rate=fn_rate,
            source_health=suspicion.checker.source_health(),
            skipped_conditions=dict(suspicion.checker.skipped_conditions),
            metrics=flow.metrics,
        )
        stage3 = Stage3Result(
            analysis=flow.analysis,
            source_health=self.intel.source_health(),
        )
        # The remaining logical span markers (canonically ordered; fields
        # match the batch emissions value-for-value).
        self._emit(
            "stage.end", stage=OBS_STAGE1, **_stage1_end(flow.collection)
        )
        self._emit(
            "stage.start",
            stage=OBS_STAGE2,
            records=len(flow.collection.undelegated),
        )
        self._emit(
            "stage.end",
            stage=OBS_STAGE2,
            **_stage2_end(flow.outcome, flow.metrics, fn_rate),
        )
        self._emit(
            "stage.start",
            stage=OBS_STAGE3,
            suspicious=len(flow.outcome.suspicious),
        )
        self._emit("stage.end", stage=OBS_STAGE3, **_stage3_end(flow.analysis))
        return stage1, stage2, stage3

    # -- validation helper --------------------------------------------------

    def _delegated_records_sample(self) -> List[UndelegatedRecord]:
        """§4.2 validation input: the *delegated* records of the targets,
        packaged in UR form so they can ride the same exclusion stage."""
        from ..dns.rdata import A, TXT, RRType
        from ..dns.message import Message, Rcode
        from ..net.network import NetworkError

        samples: List[UndelegatedRecord] = []
        nameserver_by_ip = {
            target.address: target for target in self.nameservers
        }
        for target in self.domains:
            for address in self.delegated_to.get(target.domain, set()):
                info = nameserver_by_ip.get(address)
                provider = info.provider if info is not None else "unknown"
                for qtype in (RRType.A, RRType.TXT):
                    query = Message.make_query(
                        target.domain, qtype, recursion_desired=False
                    )
                    try:
                        response = self.network.query_dns_auto(
                            self.config.scanner_ip, address, query
                        )
                    except NetworkError:
                        continue
                    if response.header.rcode != Rcode.NOERROR:
                        continue
                    for answer in response.answers:
                        if isinstance(answer.rdata, A):
                            rdata_text: Optional[str] = answer.rdata.address
                        elif isinstance(answer.rdata, TXT):
                            rdata_text = answer.rdata.value
                        else:
                            rdata_text = None
                        if rdata_text is None:
                            continue
                        samples.append(
                            UndelegatedRecord(
                                domain=target.domain,
                                nameserver_ip=address,
                                provider=provider,
                                rrtype=answer.rrtype,
                                rdata_text=rdata_text,
                            )
                        )
        return samples


def recover_pdns_subdomains(
    pdns: PassiveDnsStore,
    targets: Sequence[DomainTarget],
    now: float,
) -> List[DomainTarget]:
    """Recover legitimate subdomains of the targets from passive DNS.

    The paper's future work: "we can recover legitimate subdomains from
    PDNS data and measure whether they appear in URs."  Any historically
    observed name strictly under a target domain joins the sweep with its
    parent's rank.
    """
    known = {target.domain for target in targets}
    rank_of = {target.domain: target.rank for target in targets}
    recovered: List[DomainTarget] = []
    for observed in pdns.domains():
        if observed in known:
            continue
        parent = next(
            (
                target.domain
                for target in targets
                if observed.is_proper_subdomain_of(target.domain)
            ),
            None,
        )
        if parent is None:
            continue
        recovered.append(
            DomainTarget(domain=observed, rank=rank_of[parent])
        )
        known.add(observed)
    recovered.sort(key=lambda target: (target.rank, target.domain))
    return recovered
