"""Undelegated-record data types and the unique-UR key.

The paper defines a *unique UR* as "a DNS record provided by a nameserver
(IP address) for an undelegated domain" — the same record served from two
nameservers counts twice, because each server is an independent retrieval
option for the attacker.  :attr:`UndelegatedRecord.key` implements exactly
that identity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..dns.name import Name
from ..dns.rdata import RRType


class URCategory(enum.Enum):
    """URHunter's final four-way classification (§4.3)."""

    MALICIOUS = "malicious"
    CORRECT = "correct"
    PROTECTIVE = "protective"
    UNKNOWN = "unknown"

    @property
    def is_suspicious(self) -> bool:
        """Suspicious = everything that survives exclusion (§5.1)."""
        return self in (URCategory.MALICIOUS, URCategory.UNKNOWN)


@dataclass(frozen=True)
class UndelegatedRecord:
    """One record collected from a nameserver it was never delegated to."""

    domain: Name
    nameserver_ip: str
    provider: str
    rrtype: int
    rdata_text: str
    nameserver_name: Optional[Name] = None
    ttl: int = 300

    @property
    def key(self) -> Tuple[Name, str, int, str]:
        """The unique-UR identity (domain, server IP, type, rdata)."""
        return (self.domain, self.nameserver_ip, self.rrtype, self.rdata_text)

    @property
    def rrtype_text(self) -> str:
        return RRType.to_text(self.rrtype)

    def describe(self) -> str:
        return (
            f"{self.domain} {self.rrtype_text} {self.rdata_text!r} "
            f"@ {self.nameserver_ip} ({self.provider})"
        )


@dataclass
class ClassifiedUR:
    """An undelegated record with its verdict and supporting evidence."""

    record: UndelegatedRecord
    category: URCategory
    #: why the verdict was reached (condition names, rule ids, ...)
    reasons: Tuple[str, ...] = ()
    #: the IPs URHunter associated with this record (§4.3)
    corresponding_ips: Tuple[str, ...] = ()
    #: TXT semantic category (for TXT records; see repro.core.txt)
    txt_category: Optional[str] = None

    @property
    def is_suspicious(self) -> bool:
        return self.category.is_suspicious

    @property
    def is_malicious(self) -> bool:
        return self.category is URCategory.MALICIOUS


@dataclass(frozen=True)
class IpVerdict:
    """Stage-3 evidence about one corresponding IP address."""

    address: str
    intel_flagged: bool
    ids_flagged: bool
    vendor_count: int = 0
    tags: FrozenSet[str] = frozenset()
    alert_categories: Tuple[str, ...] = ()
    #: some intel vendors were unreachable — the verdict covers only the
    #: surviving quorum (degraded run)
    intel_partial: bool = False

    @property
    def is_malicious(self) -> bool:
        return self.intel_flagged or self.ids_flagged

    @property
    def label_source(self) -> str:
        """Figure 3(a) provenance: 'intel', 'ids', 'both', or 'none'."""
        if self.intel_flagged and self.ids_flagged:
            return "both"
        if self.intel_flagged:
            return "intel"
        if self.ids_flagged:
            return "ids"
        return "none"


def dedupe_urs(records: List[UndelegatedRecord]) -> List[UndelegatedRecord]:
    """Drop duplicate unique-UR keys, keeping first occurrences in order."""
    seen = set()
    unique: List[UndelegatedRecord] = []
    for record in records:
        if record.key in seen:
            continue
        seen.add(record.key)
        unique.append(record)
    return unique
