"""Stage 2 — determining suspicious records (§4.2).

Takes the raw UR collection and labels each record:

* **protective** when it matches the nameserver's protective fingerprint
  (exact match on the data learned from the probe domain);
* **correct** when any Appendix-B uniformity condition fires (or, for
  TXT, an exact match against the correct database / passive DNS);
* otherwise it stays **suspicious** (later refined to malicious/unknown
  by stage 3).

TXT records are additionally classified into semantic categories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..dns.name import Name
from ..dns.rdata import RRType
from .collector import ProtectiveFingerprint
from .correctness import CorrectnessVerdict, UniformityChecker
from .parallel import Stage2Executor, Stage2Metrics
from .records import ClassifiedUR, URCategory, UndelegatedRecord
from .txt import classify_txt


@dataclass
class SuspicionOutcome:
    """Stage-2 output: every UR labeled, suspicious ones surfaced."""

    classified: List[ClassifiedUR]

    @property
    def suspicious(self) -> List[ClassifiedUR]:
        return [entry for entry in self.classified if entry.is_suspicious]

    @property
    def correct(self) -> List[ClassifiedUR]:
        return [
            entry
            for entry in self.classified
            if entry.category is URCategory.CORRECT
        ]

    @property
    def protective(self) -> List[ClassifiedUR]:
        return [
            entry
            for entry in self.classified
            if entry.category is URCategory.PROTECTIVE
        ]

    @property
    def unverifiable(self) -> List[ClassifiedUR]:
        """Suspicious URs whose exclusion could not be fully evaluated
        (a condition's data source was down) — degraded, not definitive."""
        return [
            entry
            for entry in self.classified
            if entry.is_suspicious
            and any(
                reason.startswith("unverifiable") for reason in entry.reasons
            )
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.classified:
            out[entry.category.value] = out.get(entry.category.value, 0) + 1
        return out


#: the memoization identity of one UR: every record sharing it receives
#: the same uniformity verdict (the nameserver is deliberately absent —
#: protective fingerprints are checked per server, before this key)
UrKey = Tuple[Name, int, str]


class SuspicionFilter:
    """Applies the exclusion pipeline to collected URs.

    Two execution strategies produce byte-identical output:

    * the **naive path** evaluates every record independently — always
      used when a data source is fault-injected (non-deterministic), so
      chaos runs behave exactly as they would without the fast path;
    * the **grouped path** (``memoize=True`` and deterministic sources)
      deduplicates records by :data:`UrKey`, evaluates each distinct key
      once — optionally across ``workers`` threads — and fans the
      verdict back out in the original record order.

    ``last_metrics`` carries the :class:`Stage2Metrics` of the most
    recent :meth:`classify` call.
    """

    def __init__(
        self,
        checker: UniformityChecker,
        protective: Dict[str, ProtectiveFingerprint],
        workers: int = 1,
        memoize: bool = True,
    ):
        self.checker = checker
        self.protective = protective
        self.executor = Stage2Executor(workers)
        self.memoize = memoize
        self.last_metrics: Optional[Stage2Metrics] = None

    def classify(
        self, records: Iterable[UndelegatedRecord], now: float = 0.0
    ) -> SuspicionOutcome:
        """Label every UR protective / correct / unknown (=suspicious)."""
        records = list(records)
        metrics = Stage2Metrics(workers=self.executor.workers)
        started = time.perf_counter()
        if self.memoize and self.checker.memoizable:
            metrics.memoized = True
            classified = self._classify_grouped(records, now, metrics)
        else:
            classified = [
                self._classify_one(record, now) for record in records
            ]
        metrics.records = len(records)
        metrics.protective_matches = sum(
            1
            for entry in classified
            if entry.category is URCategory.PROTECTIVE
        )
        metrics.wall_s = time.perf_counter() - started
        self._harvest_store_caches(metrics)
        self.last_metrics = metrics
        return SuspicionOutcome(classified=classified)

    # -- the grouped fast path ---------------------------------------------

    def _classify_grouped(
        self,
        records: List[UndelegatedRecord],
        now: float,
        metrics: Stage2Metrics,
    ) -> List[ClassifiedUR]:
        # pass 1: protective short-circuits, and the distinct keys that
        # still need a uniformity verdict (first-occurrence order)
        pending: Dict[UrKey, UndelegatedRecord] = {}
        needs_verdict: List[bool] = []
        for record in records:
            fingerprint = self.protective.get(record.nameserver_ip)
            protective = fingerprint is not None and fingerprint.matches(
                record.rrtype, record.rdata_text
            )
            needs_verdict.append(not protective)
            if not protective:
                key = (record.domain, record.rrtype, record.rdata_text)
                pending.setdefault(key, record)
        metrics.distinct_keys = len(pending)

        # pass 2: one evaluation per distinct key, sharded over workers;
        # cross-call memo hits (e.g. the FN validation re-using the main
        # pass's verdicts) are counted by the checker itself
        hits_before = self.checker.memo_hits
        misses_before = self.checker.memo_misses
        results = self.executor.map_keys(
            list(pending.items()),
            lambda record: self.checker.check_cached(record, now),
        )
        fresh = self.checker.memo_misses - misses_before
        metrics.cache_misses = fresh
        metrics.cache_hits = (self.checker.memo_hits - hits_before) + (
            sum(needs_verdict) - len(pending)
        )
        for key, (verdict, elapsed) in results.items():
            metrics.attribute(
                verdict.matched_condition or "survived-exclusion", elapsed
            )

        # pass 3: deterministic fan-out in the original record order —
        # output is independent of worker count and scheduling
        classified: List[ClassifiedUR] = []
        for record, checked in zip(records, needs_verdict):
            txt_category: Optional[str] = None
            if record.rrtype == RRType.TXT:
                txt_category = classify_txt(record.rdata_text)
            if not checked:
                classified.append(
                    ClassifiedUR(
                        record=record,
                        category=URCategory.PROTECTIVE,
                        reasons=("protective-fingerprint",),
                        txt_category=txt_category,
                    )
                )
                continue
            verdict, _ = results[
                (record.domain, record.rrtype, record.rdata_text)
            ]
            classified.append(
                self._from_verdict(record, verdict, txt_category)
            )
        return classified

    def _harvest_store_caches(self, metrics: Stage2Metrics) -> None:
        """Copy auxiliary-store cache counters when the stores keep them."""
        pdns = self.checker.pdns
        if pdns is not None:
            metrics.pdns_cache_hits = getattr(pdns, "cache_hits", 0)
            metrics.pdns_cache_misses = getattr(pdns, "cache_misses", 0)
        ipinfo = self.checker.ipinfo
        metrics.ipinfo_cache_hits = getattr(ipinfo, "cache_hits", 0)
        metrics.ipinfo_cache_misses = getattr(ipinfo, "cache_misses", 0)

    # -- the naive per-record path -----------------------------------------

    def _classify_one(
        self, record: UndelegatedRecord, now: float
    ) -> ClassifiedUR:
        txt_category: Optional[str] = None
        if record.rrtype == RRType.TXT:
            txt_category = classify_txt(record.rdata_text)

        fingerprint = self.protective.get(record.nameserver_ip)
        if fingerprint is not None and fingerprint.matches(
            record.rrtype, record.rdata_text
        ):
            return ClassifiedUR(
                record=record,
                category=URCategory.PROTECTIVE,
                reasons=("protective-fingerprint",),
                txt_category=txt_category,
            )

        verdict = self.checker.check(record, now)
        return self._from_verdict(record, verdict, txt_category)

    @staticmethod
    def _from_verdict(
        record: UndelegatedRecord,
        verdict: CorrectnessVerdict,
        txt_category: Optional[str],
    ) -> ClassifiedUR:
        """One verdict → one classified UR (shared by both paths)."""
        if verdict.is_correct:
            reason = verdict.matched_condition or "uniformity"
            return ClassifiedUR(
                record=record,
                category=URCategory.CORRECT,
                reasons=(reason,),
                txt_category=txt_category,
            )
        reasons = ["survived-exclusion"]
        if verdict.degraded_conditions:
            # the record survived, but some enabled conditions never ran:
            # a downgraded, unverifiable verdict the report must flag
            reasons.append(
                "unverifiable:" + "+".join(sorted(verdict.degraded_conditions))
            )
        return ClassifiedUR(
            record=record,
            category=URCategory.UNKNOWN,
            reasons=tuple(reasons),
            txt_category=txt_category,
        )

    def false_negative_rate(
        self,
        delegated_records: Iterable[UndelegatedRecord],
        now: float = 0.0,
    ) -> float:
        """§4.2's validation: feed *delegated* records through the same
        exclusion; any labeled suspicious is a false negative.

        Returns the FN rate in [0, 1] (the paper measured 0.0).
        """
        outcome = self.classify(delegated_records, now)
        total = len(outcome.classified)
        if total == 0:
            return 0.0
        return len(outcome.suspicious) / total
