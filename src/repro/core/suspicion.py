"""Stage 2 — determining suspicious records (§4.2).

Takes the raw UR collection and labels each record:

* **protective** when it matches the nameserver's protective fingerprint
  (exact match on the data learned from the probe domain);
* **correct** when any Appendix-B uniformity condition fires (or, for
  TXT, an exact match against the correct database / passive DNS);
* otherwise it stays **suspicious** (later refined to malicious/unknown
  by stage 3).

TXT records are additionally classified into semantic categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..dns.rdata import RRType
from .collector import ProtectiveFingerprint
from .correctness import UniformityChecker
from .records import ClassifiedUR, URCategory, UndelegatedRecord
from .txt import classify_txt


@dataclass
class SuspicionOutcome:
    """Stage-2 output: every UR labeled, suspicious ones surfaced."""

    classified: List[ClassifiedUR]

    @property
    def suspicious(self) -> List[ClassifiedUR]:
        return [entry for entry in self.classified if entry.is_suspicious]

    @property
    def correct(self) -> List[ClassifiedUR]:
        return [
            entry
            for entry in self.classified
            if entry.category is URCategory.CORRECT
        ]

    @property
    def protective(self) -> List[ClassifiedUR]:
        return [
            entry
            for entry in self.classified
            if entry.category is URCategory.PROTECTIVE
        ]

    @property
    def unverifiable(self) -> List[ClassifiedUR]:
        """Suspicious URs whose exclusion could not be fully evaluated
        (a condition's data source was down) — degraded, not definitive."""
        return [
            entry
            for entry in self.classified
            if entry.is_suspicious
            and any(
                reason.startswith("unverifiable") for reason in entry.reasons
            )
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.classified:
            out[entry.category.value] = out.get(entry.category.value, 0) + 1
        return out


class SuspicionFilter:
    """Applies the exclusion pipeline to collected URs."""

    def __init__(
        self,
        checker: UniformityChecker,
        protective: Dict[str, ProtectiveFingerprint],
    ):
        self.checker = checker
        self.protective = protective

    def classify(
        self, records: Iterable[UndelegatedRecord], now: float = 0.0
    ) -> SuspicionOutcome:
        """Label every UR protective / correct / unknown (=suspicious)."""
        classified: List[ClassifiedUR] = []
        for record in records:
            classified.append(self._classify_one(record, now))
        return SuspicionOutcome(classified=classified)

    def _classify_one(
        self, record: UndelegatedRecord, now: float
    ) -> ClassifiedUR:
        txt_category: Optional[str] = None
        if record.rrtype == RRType.TXT:
            txt_category = classify_txt(record.rdata_text)

        fingerprint = self.protective.get(record.nameserver_ip)
        if fingerprint is not None and fingerprint.matches(
            record.rrtype, record.rdata_text
        ):
            return ClassifiedUR(
                record=record,
                category=URCategory.PROTECTIVE,
                reasons=("protective-fingerprint",),
                txt_category=txt_category,
            )

        verdict = self.checker.check(record, now)
        if verdict.is_correct:
            reason = verdict.matched_condition or "uniformity"
            return ClassifiedUR(
                record=record,
                category=URCategory.CORRECT,
                reasons=(reason,),
                txt_category=txt_category,
            )

        reasons = ["survived-exclusion"]
        if verdict.degraded_conditions:
            # the record survived, but some enabled conditions never ran:
            # a downgraded, unverifiable verdict the report must flag
            reasons.append(
                "unverifiable:" + "+".join(sorted(verdict.degraded_conditions))
            )
        return ClassifiedUR(
            record=record,
            category=URCategory.UNKNOWN,
            reasons=tuple(reasons),
            txt_category=txt_category,
        )

    def false_negative_rate(
        self,
        delegated_records: Iterable[UndelegatedRecord],
        now: float = 0.0,
    ) -> float:
        """§4.2's validation: feed *delegated* records through the same
        exclusion; any labeled suspicious is a false negative.

        Returns the FN rate in [0, 1] (the paper measured 0.0).
        """
        outcome = self.classify(delegated_records, now)
        total = len(outcome.classified)
        if total == 0:
            return 0.0
        return len(outcome.suspicious) / total
