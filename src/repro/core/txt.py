"""TXT record classification and embedded-IP extraction.

§4.2: "By matching regular expression, URHunter further classifies the
undelegated TXT records according to the known categories" — the taxonomy
follows van der Toorn et al.'s *TXTing 101* study of the TXT long tail.

§4.3 labels TXT URs via the IP addresses embedded in their resource data
(the masquerading-SPF case study's ``ip4:`` mechanisms being the canonical
example), so this module also extracts those.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple


class TxtCategory:
    """Known TXT semantic categories (superset of what Figure/§5.2 uses)."""

    SPF = "spf"
    DKIM = "dkim"
    DMARC = "dmarc"
    VERIFICATION = "domain-verification"
    KEY_EXCHANGE = "key-exchange"
    PROVIDER_NOTICE = "provider-notice"
    OTHER = "other"

    #: categories that are email-related (the §5.2 90.95% statistic)
    EMAIL_RELATED = (SPF, DMARC, DKIM)


_CLASSIFIERS: Tuple[Tuple[str, re.Pattern], ...] = (
    (TxtCategory.SPF, re.compile(r"^\s*v=spf1\b", re.IGNORECASE)),
    (TxtCategory.DMARC, re.compile(r"^\s*v=dmarc1\b", re.IGNORECASE)),
    (TxtCategory.DKIM, re.compile(r"^\s*v=dkim1\b|(^|;)\s*k=rsa\b", re.IGNORECASE)),
    (
        TxtCategory.VERIFICATION,
        re.compile(
            r"(site-verification|domain-verification|verify|"
            r"_verification|validation-token)",
            re.IGNORECASE,
        ),
    ),
    (
        TxtCategory.KEY_EXCHANGE,
        re.compile(r"^\s*(k|p)=[A-Za-z0-9+/=]{16,}", re.IGNORECASE),
    ),
    (
        TxtCategory.PROVIDER_NOTICE,
        re.compile(r"^\s*v=parked\b|not hosted", re.IGNORECASE),
    ),
)

def _group_name(category: str) -> str:
    """A category's regex-group alias (group names cannot carry ``-``)."""
    return category.replace("-", "_")


#: every classifier fused into one alternation: a single scan decides
#: whether a value belongs to *any* category, and the named group
#: identifies which alternative fired at the leftmost position
_COMBINED_CLASSIFIER = re.compile(
    "|".join(
        f"(?P<{_group_name(category)}>{pattern.pattern})"
        for category, pattern in _CLASSIFIERS
    ),
    re.IGNORECASE,
)

_GROUP_TO_CATEGORY = {
    _group_name(category): category for category, _ in _CLASSIFIERS
}

_IPV4_PATTERN = re.compile(
    r"(?<![\d.])((?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)"
    r"(?:\.(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)){3})(?![\d.])"
)

_SPF_IP4_PATTERN = re.compile(r"\bip4:((?:\d{1,3}\.){3}\d{1,3})(?:/\d{1,2})?")


def classify_txt(value: str) -> str:
    """The semantic category of one TXT value.

    One combined-alternation scan answers the common cases: no match at
    all (``other``, the long tail) and a match whose alternative is also
    the highest-precedence category that fires.  Only when a *lower*
    precedence alternative matched leftmost does the precedence scan re-
    check the individual patterns, so the result is always identical to
    trying every classifier in declaration order.
    """
    match = _COMBINED_CLASSIFIER.search(value)
    if match is None:
        return TxtCategory.OTHER
    leftmost = {
        _GROUP_TO_CATEGORY[group]
        for group, text in match.groupdict().items()
        if text is not None
    }
    for category, pattern in _CLASSIFIERS:
        if category in leftmost or pattern.search(value):
            return category
    return TxtCategory.OTHER  # unreachable: the combined scan matched


def is_email_related(value: str) -> bool:
    """True for SPF/DMARC/DKIM values (the §5.2 statistic's numerator)."""
    return classify_txt(value) in TxtCategory.EMAIL_RELATED


def extract_ips(value: str) -> List[str]:
    """Every IPv4 address embedded anywhere in a TXT value.

    SPF ``ip4:`` mechanisms are matched first (they may carry prefix
    lengths); any other dotted-quads in the text are appended.  Order is
    preserved and duplicates dropped.
    """
    found: List[str] = []
    for address in _SPF_IP4_PATTERN.findall(value):
        if address not in found:
            found.append(address)
    for address in _IPV4_PATTERN.findall(value):
        if address not in found:
            found.append(address)
    return found


def spf_mechanisms(value: str) -> Optional[List[str]]:
    """The mechanism list of an SPF record, or None for non-SPF values."""
    if classify_txt(value) != TxtCategory.SPF:
        return None
    parts = value.split()
    return parts[1:]  # drop the v=spf1 version tag
