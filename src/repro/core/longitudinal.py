"""Longitudinal measurement: repeated URHunter snapshots and their diffs.

The paper measured twice (April 2022 for A records, December 2022 for
TXT) and its case studies hinge on change over time (Dark.IoT's EmerDNS
abandonment, records still resolvable "at the time of writing").  This
module runs URHunter repeatedly against an evolving world and diffs the
classified record sets — the machinery a longitudinal deployment of
URHunter would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..dns.name import Name
from .hunter import HunterConfig, URHunter
from .records import ClassifiedUR, URCategory
from .report import MeasurementReport

#: the unique-UR key type (domain, nameserver IP, rrtype, rdata)
UrKey = Tuple[Name, str, int, str]


@dataclass
class ReportDiff:
    """What changed between two measurement snapshots."""

    appeared: List[ClassifiedUR]
    disappeared: List[ClassifiedUR]
    persisted: int
    #: URs present in both whose category changed: key -> (old, new)
    category_changes: Dict[UrKey, Tuple[URCategory, URCategory]]

    @property
    def newly_malicious(self) -> List[ClassifiedUR]:
        """URs that appeared already-malicious in the later snapshot."""
        return [
            entry for entry in self.appeared if entry.is_malicious
        ]

    def became_malicious(self) -> List[UrKey]:
        """Persisted URs upgraded to malicious (e.g. late intel flags)."""
        return [
            key
            for key, (old, new) in self.category_changes.items()
            if new is URCategory.MALICIOUS
            and old is not URCategory.MALICIOUS
        ]

    def summary(self) -> str:
        return (
            f"+{len(self.appeared)} URs appeared "
            f"({len(self.newly_malicious)} malicious), "
            f"-{len(self.disappeared)} disappeared, "
            f"{self.persisted} persisted "
            f"({len(self.category_changes)} changed category)"
        )


def diff_reports(
    before: MeasurementReport, after: MeasurementReport
) -> ReportDiff:
    """Diff two snapshots by unique-UR key."""
    old = {entry.record.key: entry for entry in before.classified}
    new = {entry.record.key: entry for entry in after.classified}
    appeared = [entry for key, entry in new.items() if key not in old]
    disappeared = [entry for key, entry in old.items() if key not in new]
    category_changes: Dict[UrKey, Tuple[URCategory, URCategory]] = {}
    persisted = 0
    for key in old.keys() & new.keys():
        persisted += 1
        if old[key].category is not new[key].category:
            category_changes[key] = (old[key].category, new[key].category)
    return ReportDiff(
        appeared=appeared,
        disappeared=disappeared,
        persisted=persisted,
        category_changes=category_changes,
    )


#: a hook that mutates the world between snapshots (attacker churn,
#: provider mitigation roll-outs, intel updates, ...)
WorldMutation = Callable[["object", int], None]


@dataclass
class Snapshot:
    """One longitudinal round."""

    index: int
    taken_at: float
    report: MeasurementReport


class LongitudinalStudy:
    """Run URHunter repeatedly against a world, diffing as it evolves."""

    def __init__(
        self,
        world: "object",
        config: Optional[HunterConfig] = None,
        mutate: Optional[WorldMutation] = None,
        result_store: "object" = None,
    ):
        self.world = world
        self.config = config
        self.mutate = mutate
        #: optional :class:`~repro.incremental.GroupResultStore` shared
        #: across rounds: round 0 runs cold and populates it, later
        #: rounds replay every group the mutation hook left untouched —
        #: the workload the store exists for
        self.result_store = result_store
        self.snapshots: List[Snapshot] = []

    def run(
        self, rounds: int = 2, interval: float = 30 * 24 * 3600.0
    ) -> List[Snapshot]:
        """Take ``rounds`` snapshots, advancing the virtual clock and
        applying the mutation hook between them."""
        if rounds < 1:
            raise ValueError("need at least one round")
        for index in range(rounds):
            if index > 0:
                self.world.network.tick(interval)
                if self.mutate is not None:
                    self.mutate(self.world, index)
            hunter = URHunter.from_world(self.world, self.config)
            hunter.result_store = self.result_store
            report = hunter.run(validate=False)
            self.snapshots.append(
                Snapshot(
                    index=index,
                    taken_at=self.world.network.now,
                    report=report,
                )
            )
        return self.snapshots

    def diffs(self) -> List[ReportDiff]:
        """Consecutive-snapshot diffs (empty with fewer than two)."""
        return [
            diff_reports(
                self.snapshots[index].report,
                self.snapshots[index + 1].report,
            )
            for index in range(len(self.snapshots) - 1)
        ]
