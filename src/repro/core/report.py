"""Measurement report: aggregated views over classified URs.

This is the single object the analysis layer (tables/figures) reads.  It
holds every classified UR (correct, protective, malicious, unknown), the
per-IP verdicts, and collection metadata, and computes the groupings the
paper reports: per-record-type suspicious stats (Table 1), per-provider
category mixes (Figure 2), label provenance (Figure 3a), vendor counts
(3b), alert categories (3c), tags (3d), and the TXT email-related share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from dataclasses import field

from ..dns.name import Name
from ..dns.rdata import RRType
from ..engine.metrics import ScanMetrics
from ..obs.metrics import MetricRegistry
from ..pipeline.resilience import SourceHealth
from .parallel import Stage2Metrics
from .records import ClassifiedUR, IpVerdict, URCategory
from .txt import TxtCategory


@dataclass
class DegradedSources:
    """Provenance of a degraded run: what the measurement *couldn't* check.

    A pipeline that silently drops a dead vendor or a pDNS outage
    produces numbers indistinguishable from a clean run's; this section
    makes the difference explicit so downstream consumers can weigh the
    verdicts accordingly.
    """

    #: per-source health ledgers ("vendor:VirusTotal", "pdns", "ipinfo")
    sources: Dict[str, SourceHealth] = field(default_factory=dict)
    #: Appendix-B condition -> records it could not be evaluated for
    skipped_conditions: Dict[str, int] = field(default_factory=dict)
    #: suspicious URs whose verdict is degraded rather than definitive
    unverifiable_urs: int = 0
    #: IPs whose intel verdict covers only part of the vendor fleet
    partial_ip_verdicts: int = 0
    #: free-form pipeline notes (e.g. "pdns-expansion-skipped")
    notes: Tuple[str, ...] = ()

    @property
    def dead_sources(self) -> List[str]:
        """Sources whose circuit was open when the run finished."""
        return sorted(
            name for name, ledger in self.sources.items() if ledger.dead
        )

    @property
    def degraded_source_names(self) -> List[str]:
        return sorted(
            name
            for name, ledger in self.sources.items()
            if ledger.degraded
        )

    @property
    def is_degraded(self) -> bool:
        return bool(
            self.degraded_source_names
            or self.skipped_conditions
            or self.unverifiable_urs
            or self.partial_ip_verdicts
            or self.notes
        )

    def summary(self, indent: str = "") -> str:
        """Multi-line human-readable degradation accounting."""
        lines = [f"{indent}degraded sources:"]
        for name in self.degraded_source_names:
            ledger = self.sources[name]
            lines.append(f"{indent}  [{name}] {ledger.describe()}")
        if self.dead_sources:
            lines.append(
                f"{indent}  dead (circuit open): "
                + ", ".join(self.dead_sources)
            )
        if self.skipped_conditions:
            skipped = ", ".join(
                f"{condition}={count}"
                for condition, count in sorted(
                    self.skipped_conditions.items()
                )
            )
            lines.append(f"{indent}  conditions skipped: {skipped}")
        if self.partial_ip_verdicts:
            lines.append(
                f"{indent}  partial IP verdicts: {self.partial_ip_verdicts}"
            )
        if self.unverifiable_urs:
            lines.append(
                f"{indent}  unverifiable URs:    {self.unverifiable_urs}"
            )
        for note in self.notes:
            lines.append(f"{indent}  note: {note}")
        return "\n".join(lines)


class ReportAccumulator:
    """Folds classified URs in arrival order into the canonical report
    order.

    The canonical ``MeasurementReport.classified`` order is: every
    non-suspicious entry (stage-2 record order) followed by every
    refined suspicious entry (stage-3 record order).  The streaming
    dataflow delivers the two interleaved — a record refined early
    arrives between still-unrefined neighbours — so the accumulator
    partitions on arrival and concatenates at the end, which reproduces
    the batch order exactly because each partition preserves its own
    arrival order.  The batch path uses the same accumulator (fed
    sequentially), making it the single source of truth for report
    ordering.
    """

    def __init__(self) -> None:
        self._clean: List[ClassifiedUR] = []
        self._refined: List[ClassifiedUR] = []
        #: entries whose verdict rests on an incomplete evidence base
        self.unverifiable = 0

    def add(self, entry: ClassifiedUR) -> None:
        """Fold one final entry (non-suspicious, or stage-3 refined)."""
        if entry.category in (URCategory.CORRECT, URCategory.PROTECTIVE):
            self._clean.append(entry)
        else:
            self._refined.append(entry)
        if any(
            reason.startswith("unverifiable") for reason in entry.reasons
        ):
            self.unverifiable += 1

    def __len__(self) -> int:
        return len(self._clean) + len(self._refined)

    def classified(self) -> List[ClassifiedUR]:
        """The canonical report order (see class docstring)."""
        return [*self._clean, *self._refined]


@dataclass(frozen=True)
class TypeStats:
    """One row of Table 1 (A, TXT, or Total)."""

    label: str
    domains_total: int
    domains_malicious: int
    nameservers_total: int
    nameservers_malicious: int
    providers_total: int
    providers_malicious: int
    urs_total: int
    urs_malicious: int
    ips_total: int
    ips_malicious: int

    @staticmethod
    def _pct(part: int, whole: int) -> float:
        return 100.0 * part / whole if whole else 0.0

    @property
    def urs_malicious_pct(self) -> float:
        return self._pct(self.urs_malicious, self.urs_total)

    @property
    def domains_malicious_pct(self) -> float:
        return self._pct(self.domains_malicious, self.domains_total)

    @property
    def nameservers_malicious_pct(self) -> float:
        return self._pct(self.nameservers_malicious, self.nameservers_total)

    @property
    def providers_malicious_pct(self) -> float:
        return self._pct(self.providers_malicious, self.providers_total)

    @property
    def ips_malicious_pct(self) -> float:
        return self._pct(self.ips_malicious, self.ips_total)


@dataclass
class MeasurementReport:
    """End-to-end URHunter output."""

    classified: List[ClassifiedUR]
    ip_verdicts: Dict[str, IpVerdict]
    queries_sent: int = 0
    responses_seen: int = 0
    timeouts: int = 0
    txt_without_ip: int = 0
    false_negative_rate: Optional[float] = None
    #: engine observability for the whole stage-1 scan (all collections)
    scan_metrics: Optional[ScanMetrics] = None
    #: stage-2 exclusion observability (dedup, verdict-cache hit rates)
    stage2_metrics: Optional[Stage2Metrics] = None
    #: resilience-layer counters (hedges, sheds, AIMD); None unless a
    #: mechanism actually fired, so healthy runs render unchanged
    resilience_metrics: Optional[object] = None
    #: set when any data source degraded during the run (None = clean)
    degraded: Optional[DegradedSources] = None

    @property
    def is_degraded(self) -> bool:
        return self.degraded is not None and self.degraded.is_degraded

    @property
    def unverifiable(self) -> List[ClassifiedUR]:
        """URs whose verdict rests on an incomplete evidence base."""
        return [
            entry
            for entry in self.classified
            if any(
                reason.startswith("unverifiable")
                for reason in entry.reasons
            )
        ]

    # -- basic partitions ---------------------------------------------------

    def by_category(self, category: URCategory) -> List[ClassifiedUR]:
        return [
            entry for entry in self.classified if entry.category is category
        ]

    @property
    def suspicious(self) -> List[ClassifiedUR]:
        return [entry for entry in self.classified if entry.is_suspicious]

    @property
    def malicious(self) -> List[ClassifiedUR]:
        return self.by_category(URCategory.MALICIOUS)

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {
            category.value: 0 for category in URCategory
        }
        for entry in self.classified:
            counts[entry.category.value] += 1
        return counts

    # -- Table 1 --------------------------------------------------------------

    def _stats_over(
        self, label: str, entries: Sequence[ClassifiedUR]
    ) -> TypeStats:
        domains: Set[Name] = set()
        domains_mal: Set[Name] = set()
        servers: Set[str] = set()
        servers_mal: Set[str] = set()
        providers: Set[str] = set()
        providers_mal: Set[str] = set()
        ips: Set[str] = set()
        ips_mal: Set[str] = set()
        urs_mal = 0
        for entry in entries:
            record = entry.record
            domains.add(record.domain)
            servers.add(record.nameserver_ip)
            providers.add(record.provider)
            ips.update(entry.corresponding_ips)
            if entry.is_malicious:
                urs_mal += 1
                domains_mal.add(record.domain)
                servers_mal.add(record.nameserver_ip)
                providers_mal.add(record.provider)
                for address in entry.corresponding_ips:
                    verdict = self.ip_verdicts.get(address)
                    if verdict is not None and verdict.is_malicious:
                        ips_mal.add(address)
        return TypeStats(
            label=label,
            domains_total=len(domains),
            domains_malicious=len(domains_mal),
            nameservers_total=len(servers),
            nameservers_malicious=len(servers_mal),
            providers_total=len(providers),
            providers_malicious=len(providers_mal),
            urs_total=len(entries),
            urs_malicious=urs_mal,
            ips_total=len(ips),
            ips_malicious=len(ips_mal),
        )

    def suspicious_stats(self) -> Dict[str, TypeStats]:
        """Table 1's three rows, computed over the suspicious set."""
        suspicious = self.suspicious
        a_entries = [
            entry for entry in suspicious if entry.record.rrtype == RRType.A
        ]
        txt_entries = [
            entry
            for entry in suspicious
            if entry.record.rrtype == RRType.TXT
        ]
        return {
            "A": self._stats_over("A", a_entries),
            "TXT": self._stats_over("TXT", txt_entries),
            "Total": self._stats_over("Total", suspicious),
        }

    # -- Figure 2 --------------------------------------------------------------

    def provider_category_mix(
        self, top: Optional[int] = None
    ) -> List[Tuple[str, Dict[str, int]]]:
        """Per-provider category counts, sorted by total URs descending."""
        mix: Dict[str, Dict[str, int]] = {}
        for entry in self.classified:
            bucket = mix.setdefault(
                entry.record.provider,
                {category.value: 0 for category in URCategory},
            )
            bucket[entry.category.value] += 1
        ordered = sorted(
            mix.items(),
            key=lambda item: (-sum(item[1].values()), item[0]),
        )
        return ordered[:top] if top is not None else ordered

    # -- Figure 3(a) -------------------------------------------------------------

    def label_provenance(self) -> Dict[str, int]:
        """Counts of malicious IPs by evidence source (intel/ids/both)."""
        counts = {"intel": 0, "ids": 0, "both": 0}
        for verdict in self.ip_verdicts.values():
            if not verdict.is_malicious:
                continue
            counts[verdict.label_source] += 1
        return counts

    # -- Figure 3(b) -------------------------------------------------------------

    def vendor_count_histogram(
        self, buckets: Sequence[Tuple[int, int]] = ((1, 2), (3, 4), (5, 6), (7, 11)),
    ) -> Dict[str, int]:
        """Histogram of per-IP flagging-vendor counts, paper's buckets."""
        histogram = {f"{low}-{high}": 0 for low, high in buckets}
        for verdict in self.ip_verdicts.values():
            if not verdict.intel_flagged:
                continue
            for low, high in buckets:
                if low <= verdict.vendor_count <= high:
                    histogram[f"{low}-{high}"] += 1
                    break
        return histogram

    # -- Figure 3(c) -------------------------------------------------------------

    def alert_category_shares(self) -> Dict[str, float]:
        """Share of IDS alerts by category over malicious-IP traffic."""
        counts: Dict[str, int] = {}
        total = 0
        for verdict in self.ip_verdicts.values():
            if not verdict.is_malicious:
                continue
            for category in verdict.alert_categories:
                counts[category] = counts.get(category, 0) + 1
                total += 1
        if total == 0:
            return {}
        return {
            category: 100.0 * count / total
            for category, count in sorted(
                counts.items(), key=lambda item: -item[1]
            )
        }

    # -- Figure 3(d) -------------------------------------------------------------

    def tag_shares(self) -> Dict[str, float]:
        """Share of vendor-flagged IPs carrying each intel tag.

        Multi-label, so shares sum past 100% (Figure 3(d)).  The
        denominator is IPs with vendor verdicts — IDS-only IPs carry no
        tags and are out of scope for this figure.
        """
        malicious = [
            verdict
            for verdict in self.ip_verdicts.values()
            if verdict.intel_flagged
        ]
        if not malicious:
            return {}
        counts: Dict[str, int] = {}
        for verdict in malicious:
            # sorted: frozenset iteration order is hash-seed dependent,
            # and stable tie-breaking must survive process boundaries
            # (checkpoint resume compares reports byte-for-byte)
            for tag in sorted(verdict.tags):
                counts[tag] = counts.get(tag, 0) + 1
        return {
            tag: 100.0 * count / len(malicious)
            for tag, count in sorted(counts.items(), key=lambda item: -item[1])
        }

    # -- §5.2 TXT statistic -----------------------------------------------------

    def email_related_txt_share(self) -> float:
        """% of malicious TXT URs that are SPF/DMARC/DKIM (paper: 90.95%)."""
        malicious_txt = [
            entry
            for entry in self.malicious
            if entry.record.rrtype == RRType.TXT
        ]
        if not malicious_txt:
            return 0.0
        email = [
            entry
            for entry in malicious_txt
            if entry.txt_category in TxtCategory.EMAIL_RELATED
        ]
        return 100.0 * len(email) / len(malicious_txt)

    # -- presentation -------------------------------------------------------------

    def summary(self) -> str:
        """A multi-line human-readable overview (§5.1-style)."""
        counts = self.category_counts()
        total = len(self.classified)
        suspicious = len(self.suspicious)
        malicious = counts[URCategory.MALICIOUS.value]
        lines = [
            f"unique URs classified:   {total}",
            f"  correct:               {counts['correct']}",
            f"  protective:            {counts['protective']}",
            f"  unknown:               {counts['unknown']}",
            f"  malicious:             {malicious}",
            f"suspicious (unk+mal):    {suspicious}",
        ]
        if suspicious:
            lines.append(
                f"malicious share:         "
                f"{100.0 * malicious / suspicious:.2f}% of suspicious"
            )
        lines.append(
            f"queries sent: {self.queries_sent}, responses: "
            f"{self.responses_seen}, timeouts: {self.timeouts}"
        )
        if self.false_negative_rate is not None:
            lines.append(
                f"validation FN rate:      {self.false_negative_rate:.4f}"
            )
        lines.extend(self.metric_registry().render_lines(indent="  "))
        if self.is_degraded:
            lines.append(self.degraded.summary())
        return "\n".join(lines)

    def metric_registry(self) -> MetricRegistry:
        """Every attached metric holder behind the one snapshot API.

        Registration order is presentation order; the rendered text is
        byte-identical to the pre-registry bespoke blocks (enforced by
        the streaming/batch report-identity tests).
        """
        registry = MetricRegistry()
        if self.scan_metrics is not None:
            registry.register(self.scan_metrics)
        if self.stage2_metrics is not None:
            registry.register(self.stage2_metrics)
        if self.resilience_metrics is not None:
            registry.register(self.resilience_metrics)
        return registry
