"""Stage 3 — malicious behaviour analysis (§4.3).

For each suspicious UR, URHunter determines its *corresponding IP
addresses*:

* A records — the address itself;
* TXT records — addresses embedded in the RDATA, plus the address of an A
  UR for the same domain on the same nameserver (the co-hosting join);
* TXT records with no corresponding IP are excluded from maliciousness
  analysis (they remain unknown).

An IP is malicious when (1) threat intelligence flags it or (2) the IDS
saw malicious traffic toward it at severity >= medium in sandbox runs.
A UR is malicious when any corresponding IP is malicious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dns.name import Name
from ..dns.rdata import RRType
from ..intel.aggregator import ThreatIntelAggregator
from ..sandbox.ids import Alert, Severity
from ..sandbox.sandbox import SandboxReport
from .records import ClassifiedUR, IpVerdict, URCategory, UndelegatedRecord
from .txt import extract_ips


@dataclass
class MaliciousAnalysisResult:
    """Stage-3 output: final verdicts plus the per-IP evidence."""

    classified: List[ClassifiedUR]
    ip_verdicts: Dict[str, IpVerdict]
    #: TXT URs dropped for having no corresponding IP (§4.3, limitation 2)
    txt_without_ip: int = 0

    @property
    def malicious(self) -> List[ClassifiedUR]:
        return [entry for entry in self.classified if entry.is_malicious]

    def malicious_ips(self) -> List[IpVerdict]:
        return [
            verdict
            for verdict in self.ip_verdicts.values()
            if verdict.is_malicious
        ]

    @property
    def partial_ip_verdicts(self) -> int:
        """IPs whose intel verdict covers only part of the vendor fleet."""
        return sum(
            1
            for verdict in self.ip_verdicts.values()
            if verdict.intel_partial
        )


class MaliciousBehaviorAnalyzer:
    """Fuses threat intelligence and sandbox IDS evidence."""

    def __init__(
        self,
        intel: ThreatIntelAggregator,
        sandbox_reports: Sequence[SandboxReport] = (),
        min_severity: Severity = Severity.MEDIUM,
        use_intel: bool = True,
        use_ids: bool = True,
        use_cohost_join: bool = True,
    ):
        self.intel = intel
        self.sandbox_reports = list(sandbox_reports)
        self.min_severity = min_severity
        #: ablation switches: disable one evidence source
        self.use_intel = use_intel
        self.use_ids = use_ids
        #: ablation switch: the §4.3 A/TXT co-hosting join
        self.use_cohost_join = use_cohost_join
        self._ids_index: Optional[Dict[str, List[Alert]]] = None

    # -- IDS evidence ----------------------------------------------------

    def _alerts_by_ip(self) -> Dict[str, List[Alert]]:
        """Actionable alerts across all sandbox runs, grouped by dst IP."""
        if self._ids_index is None:
            index: Dict[str, List[Alert]] = {}
            for report in self.sandbox_reports:
                for alert in report.alerts:
                    if alert.severity < self.min_severity:
                        continue
                    if alert.category == "Network Connectivity":
                        continue
                    index.setdefault(alert.dst, []).append(alert)
            self._ids_index = index
        return self._ids_index

    # -- per-IP verdicts ----------------------------------------------------

    def verdict_for_ip(self, address: str) -> IpVerdict:
        """Combine both evidence sources for one address."""
        report = self.intel.report(address) if self.use_intel else None
        alerts = self._alerts_by_ip().get(address, []) if self.use_ids else []
        # One IP contacted by chatty malware raises the same alert many
        # times; categories are deduped so the Figure 3(c) mix reflects
        # distinct behaviours, not beacon frequency.
        categories: List[str] = []
        for alert in alerts:
            if alert.category not in categories:
                categories.append(alert.category)
        return IpVerdict(
            address=address,
            intel_flagged=bool(report is not None and report.is_malicious),
            ids_flagged=bool(alerts),
            vendor_count=report.vendor_count if report is not None else 0,
            tags=report.tags if report is not None else frozenset(),
            alert_categories=tuple(categories),
            intel_partial=bool(report is not None and report.is_partial),
        )

    # -- corresponding IPs ----------------------------------------------------

    @staticmethod
    def corresponding_ips(
        record: UndelegatedRecord,
        a_record_index: Dict[Tuple[Name, str], List[str]],
    ) -> List[str]:
        """The IPs §4.3 associates with one UR.

        ``a_record_index`` maps (domain, nameserver_ip) to the addresses
        of suspicious A URs — the co-hosting join source.
        """
        if record.rrtype == RRType.A:
            return [record.rdata_text]
        if record.rrtype == RRType.TXT:
            embedded = extract_ips(record.rdata_text)
            cohosted = a_record_index.get(
                (record.domain, record.nameserver_ip), []
            )
            merged: List[str] = []
            for address in [*embedded, *cohosted]:
                if address not in merged:
                    merged.append(address)
            return merged
        if record.rrtype == RRType.MX:
            # Future-work record type: the exchange hostname carries no
            # address itself; only the co-hosted A join applies.
            return list(
                a_record_index.get(
                    (record.domain, record.nameserver_ip), []
                )
            )
        return []

    @staticmethod
    def build_a_record_index(
        suspicious: Iterable[ClassifiedUR],
    ) -> Dict[Tuple[Name, str], List[str]]:
        """Index suspicious A URs by (domain, nameserver) for the join."""
        index: Dict[Tuple[Name, str], List[str]] = {}
        for entry in suspicious:
            if entry.record.rrtype != RRType.A:
                continue
            key = (entry.record.domain, entry.record.nameserver_ip)
            bucket = index.setdefault(key, [])
            if entry.record.rdata_text not in bucket:
                bucket.append(entry.record.rdata_text)
        return index

    # -- the stage itself ------------------------------------------------------

    def refine_entry(
        self,
        entry: ClassifiedUR,
        a_index: Dict[Tuple[Name, str], List[str]],
        ip_verdicts: Dict[str, IpVerdict],
    ) -> Tuple[ClassifiedUR, bool]:
        """Refine one suspicious entry into malicious / unknown.

        ``ip_verdicts`` is the shared first-seen ledger: new addresses
        are looked up (in the entry's IP order) and appended, known ones
        are reused — the per-entry unit both the batch loop and the
        streaming analysis node drive, so intel lookups happen in the
        identical order either way.  Returns the refined entry and
        whether it counted toward ``txt_without_ip``.
        """
        ips = self.corresponding_ips(entry.record, a_index)
        if not ips:
            return (
                ClassifiedUR(
                    record=entry.record,
                    category=URCategory.UNKNOWN,
                    reasons=entry.reasons + ("no-corresponding-ip",),
                    corresponding_ips=(),
                    txt_category=entry.txt_category,
                ),
                entry.record.rrtype == RRType.TXT,
            )
        for address in ips:
            if address not in ip_verdicts:
                ip_verdicts[address] = self.verdict_for_ip(address)
        malicious = any(
            ip_verdicts[address].is_malicious for address in ips
        )
        reasons = list(entry.reasons)
        if malicious:
            sources = {
                ip_verdicts[address].label_source
                for address in ips
                if ip_verdicts[address].is_malicious
            }
            reasons.append("ip-" + "+".join(sorted(sources)))
        elif any(
            ip_verdicts[address].intel_partial for address in ips
        ):
            # a non-malicious verdict reached over a partial vendor
            # quorum is unverifiable, not clean
            reasons.append("unverifiable:intel")
        return (
            ClassifiedUR(
                record=entry.record,
                category=(
                    URCategory.MALICIOUS
                    if malicious
                    else URCategory.UNKNOWN
                ),
                reasons=tuple(reasons),
                corresponding_ips=tuple(ips),
                txt_category=entry.txt_category,
            ),
            False,
        )

    def analyze(
        self, suspicious: Sequence[ClassifiedUR]
    ) -> MaliciousAnalysisResult:
        """Refine suspicious URs into malicious / unknown."""
        a_index = (
            self.build_a_record_index(suspicious)
            if self.use_cohost_join
            else {}
        )
        ip_verdicts: Dict[str, IpVerdict] = {}
        refined: List[ClassifiedUR] = []
        txt_without_ip = 0
        for entry in suspicious:
            result, counted = self.refine_entry(entry, a_index, ip_verdicts)
            refined.append(result)
            if counted:
                txt_without_ip += 1
        return MaliciousAnalysisResult(
            classified=refined,
            ip_verdicts=ip_verdicts,
            txt_without_ip=txt_without_ip,
        )
