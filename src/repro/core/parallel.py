"""Parallel stage-2 execution and its observability block.

Stage 2 (exclusion) is embarrassingly parallel *across distinct UR
keys*: every record sharing a ``(domain, rrtype, rdata)`` key receives
the same verdict, so the unit of work is the distinct key, not the
record.  :class:`Stage2Executor` shards distinct keys across a thread
pool (workers share the uniformity checker; the
:class:`~repro.pipeline.resilience.SourceGuard` and the store caches
are lock-protected) and returns results keyed by UR key — fan-out back
to records happens in the caller's original record order, which makes
reports **byte-identical across worker counts**.

:class:`Stage2Metrics` mirrors the engine's
:class:`~repro.engine.metrics.ScanMetrics` idiom for stage 2: dedup
factor, verdict/auxiliary cache hit rates, throughput, and
per-condition timings.  ``summary()`` deliberately prints only the
deterministic counters — wall-clock figures would break the resume and
worker-count byte-identity guarantees the pipeline tests enforce — the
timing fields ride in the dataclass (and the benchmark JSON) instead.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

K = TypeVar("K")
V = TypeVar("V")
W = TypeVar("W")


@dataclass
class Stage2Metrics:
    """What stage 2 did: volume, dedup, caching, parallelism, timing.

    Implements the :class:`repro.obs.metrics.MetricsSnapshot` protocol.
    The deterministic/timing split is load-bearing: ``to_dict()`` and
    ``summary()`` carry only counters that are byte-identical across
    worker counts and execution modes, while ``timing_dict()`` and
    ``timing_summary()`` carry the wall clock, worker context, and the
    scheduling-dependent store-cache counters.
    """

    #: MetricsSnapshot protocol identity
    name: ClassVar[str] = "stage2-exclusion"
    #: heading the unified renderer prints (legacy report text)
    heading: ClassVar[str] = "stage-2 exclusion metrics:"

    #: candidate URs classified (including protective short-circuits)
    records: int = 0
    #: records answered by a protective-fingerprint match
    protective_matches: int = 0
    #: distinct (domain, rrtype, rdata) keys among the checked records
    distinct_keys: int = 0
    #: verdicts served from the memo instead of re-evaluated
    cache_hits: int = 0
    #: distinct evaluations actually performed
    cache_misses: int = 0
    #: worker threads the executor used
    workers: int = 1
    #: whether the memoized fast path was eligible (deterministic sources)
    memoized: bool = False
    #: wall-clock seconds of the whole classification pass
    wall_s: float = 0.0
    #: wall-clock seconds attributed per matched Appendix-B condition
    #: (plus ``survived-exclusion`` for records no condition excluded)
    condition_s: Dict[str, float] = field(default_factory=dict)
    #: auxiliary-store cache accounting, when the stores expose it
    pdns_cache_hits: int = 0
    pdns_cache_misses: int = 0
    ipinfo_cache_hits: int = 0
    ipinfo_cache_misses: int = 0

    @property
    def dedup_factor(self) -> float:
        """Records per distinct key (1.0 = no sharing across servers)."""
        checked = self.records - self.protective_matches
        if not self.distinct_keys:
            return 1.0
        return checked / self.distinct_keys

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def records_per_s(self) -> float:
        return self.records / self.wall_s if self.wall_s > 0 else 0.0

    def attribute(self, condition: str, seconds: float) -> None:
        self.condition_s[condition] = (
            self.condition_s.get(condition, 0.0) + seconds
        )

    def merge(self, other: "Stage2Metrics") -> None:
        """Fold another pass's counters into this one (shard/run merge)."""
        self.records += other.records
        self.protective_matches += other.protective_matches
        self.distinct_keys += other.distinct_keys
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.workers = max(self.workers, other.workers)
        # a merged pass is memoized only if every constituent was
        self.memoized = self.memoized and other.memoized
        self.wall_s += other.wall_s
        for condition, seconds in other.condition_s.items():
            self.attribute(condition, seconds)
        self.pdns_cache_hits += other.pdns_cache_hits
        self.pdns_cache_misses += other.pdns_cache_misses
        self.ipinfo_cache_hits += other.ipinfo_cache_hits
        self.ipinfo_cache_misses += other.ipinfo_cache_misses

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic counters only (see class docstring)."""
        return {
            "records": self.records,
            "protective_matches": self.protective_matches,
            "distinct_keys": self.distinct_keys,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "memoized": self.memoized,
            "dedup_factor": self.dedup_factor,
            "cache_hit_rate": self.cache_hit_rate,
        }

    def timing_dict(self) -> Dict[str, Any]:
        """Wall-clock + scheduling-dependent counters — never byte-compared."""
        return {
            "workers": self.workers,
            "wall_s": self.wall_s,
            "records_per_s": self.records_per_s,
            "condition_s": dict(sorted(self.condition_s.items())),
            "pdns_cache_hits": self.pdns_cache_hits,
            "pdns_cache_misses": self.pdns_cache_misses,
            "ipinfo_cache_hits": self.ipinfo_cache_hits,
            "ipinfo_cache_misses": self.ipinfo_cache_misses,
        }

    def summary(self, indent: str = "") -> str:
        """Deterministic counters only — safe for byte-compared reports.

        Wall-clock figures, the worker count, and the store-cache
        counters (whose exact values are scheduling-dependent under
        concurrent workers) live in :meth:`timing_summary` instead, so
        this text is byte-identical across worker counts and across
        live/resumed runs.
        """
        mode = "on" if self.memoized else "off"
        return "\n".join(
            [
                f"{indent}records: {self.records:,}  protective: "
                f"{self.protective_matches:,}  distinct keys: "
                f"{self.distinct_keys:,}  dedup: {self.dedup_factor:.2f}x",
                f"{indent}verdict cache: hits={self.cache_hits:,} "
                f"misses={self.cache_misses:,} "
                f"(rate {self.cache_hit_rate:.2f})  "
                f"memoization: {mode}",
            ]
        )

    def timing_summary(self, indent: str = "") -> str:
        """Wall-clock + scheduling-dependent view — diagnostics only."""
        lines = [
            f"{indent}workers: {self.workers}  wall: "
            f"{self.wall_s * 1000:.1f}ms  throughput: "
            f"{self.records_per_s:,.0f} records/s"
        ]
        aux_total = (
            self.pdns_cache_hits
            + self.pdns_cache_misses
            + self.ipinfo_cache_hits
            + self.ipinfo_cache_misses
        )
        if aux_total:
            lines.append(
                f"{indent}store caches: pdns {self.pdns_cache_hits:,}"
                f"/{self.pdns_cache_hits + self.pdns_cache_misses:,}  "
                f"ipinfo {self.ipinfo_cache_hits:,}"
                f"/{self.ipinfo_cache_hits + self.ipinfo_cache_misses:,}"
                " (hits/calls)"
            )
        for condition in sorted(self.condition_s):
            lines.append(
                f"{indent}  [{condition}] "
                f"{self.condition_s[condition] * 1000:.2f}ms"
            )
        return "\n".join(lines)


class Stage2Executor:
    """Shards independent stage-2 evaluations across a worker pool.

    Threads by default: the workload is dominated by shared in-memory
    lookups, so threads avoid serializing the world across processes
    while the guard/caches stay lock-protected.  Results come back as a
    mapping keyed by the work item's key — callers re-assemble output in
    their own deterministic order, so the merged result is independent
    of worker count and scheduling.
    """

    def __init__(self, workers: int = 1, reporter: Optional[Any] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        #: optional repro.obs.Reporter — shard dispatch goes to its
        #: debug level instead of ad-hoc stderr prints
        self.reporter = reporter

    def map_keys(
        self,
        items: Sequence[Tuple[K, W]],
        fn: Callable[[W], V],
    ) -> Dict[K, Tuple[V, float]]:
        """Evaluate ``fn`` over ``items`` (unique-key work units).

        Returns ``{key: (result, elapsed_seconds)}``.  With one worker
        (or one item) everything runs inline; otherwise items are dealt
        round-robin into per-worker shards.
        """
        results: Dict[K, Tuple[V, float]] = {}
        if self.workers == 1 or len(items) <= 1:
            for key, work in items:
                results[key] = self._timed(fn, work)
            return results
        shards: List[List[Tuple[K, W]]] = [
            list(items[index :: self.workers])
            for index in range(self.workers)
        ]
        if self.reporter is not None:
            self.reporter.debug(
                f"# stage-2: dispatching {len(items):,} keys across "
                f"{sum(1 for shard in shards if shard)} worker shards"
            )
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(self._run_shard, shard, fn)
                for shard in shards
                if shard
            ]
            for future in futures:
                results.update(future.result())
        return results

    @staticmethod
    def _timed(
        fn: Callable[[W], V], work: W
    ) -> Tuple[V, float]:
        start = time.perf_counter()
        value = fn(work)
        return value, time.perf_counter() - start

    @classmethod
    def _run_shard(
        cls,
        shard: Sequence[Tuple[K, W]],
        fn: Callable[[W], V],
    ) -> Dict[K, Tuple[V, float]]:
        return {key: cls._timed(fn, work) for key, work in shard}
