"""URHunter core: the paper's measurement framework (§4)."""

from .analysis import MaliciousAnalysisResult, MaliciousBehaviorAnalyzer
from .collector import (
    CollectionResult,
    DomainTarget,
    NameserverTarget,
    ProtectiveFingerprint,
    ResponseCollector,
    select_target_nameservers,
)
from .correctness import (
    ALL_CONDITIONS,
    COND_AS,
    COND_CERT,
    COND_GEO,
    COND_HTTP,
    COND_IP,
    COND_PDNS,
    CorrectRecordDatabase,
    CorrectnessVerdict,
    DomainProfile,
    UniformityChecker,
)
from .hunter import (
    HunterConfig,
    URHunter,
    WorldLike,
    recover_pdns_subdomains,
)
from .longitudinal import (
    LongitudinalStudy,
    ReportDiff,
    Snapshot,
    diff_reports,
)
from .parallel import Stage2Executor, Stage2Metrics
from .records import (
    ClassifiedUR,
    IpVerdict,
    URCategory,
    UndelegatedRecord,
    dedupe_urs,
)
from .report import MeasurementReport, TypeStats
from .suspicion import SuspicionFilter, SuspicionOutcome
from .txt import (
    TxtCategory,
    classify_txt,
    extract_ips,
    is_email_related,
    spf_mechanisms,
)

__all__ = [
    "ALL_CONDITIONS",
    "COND_AS",
    "COND_CERT",
    "COND_GEO",
    "COND_HTTP",
    "COND_IP",
    "COND_PDNS",
    "ClassifiedUR",
    "CollectionResult",
    "CorrectRecordDatabase",
    "CorrectnessVerdict",
    "DomainProfile",
    "DomainTarget",
    "HunterConfig",
    "IpVerdict",
    "LongitudinalStudy",
    "MaliciousAnalysisResult",
    "MaliciousBehaviorAnalyzer",
    "MeasurementReport",
    "NameserverTarget",
    "ProtectiveFingerprint",
    "ReportDiff",
    "ResponseCollector",
    "Stage2Executor",
    "Stage2Metrics",
    "SuspicionFilter",
    "Snapshot",
    "SuspicionOutcome",
    "TxtCategory",
    "TypeStats",
    "URCategory",
    "URHunter",
    "UndelegatedRecord",
    "UniformityChecker",
    "WorldLike",
    "classify_txt",
    "dedupe_urs",
    "diff_reports",
    "extract_ips",
    "is_email_related",
    "recover_pdns_subdomains",
    "select_target_nameservers",
    "spf_mechanisms",
]
