"""Seeded fault injection for the stage-2/3 data dependencies.

Mirrors what :meth:`repro.net.network.SimulatedInternet.inject_faults`
does for stage-1 nameservers: wrap a real dependency in a decorator that
raises :class:`~repro.pipeline.errors.SourceTimeout` /
:class:`~repro.pipeline.errors.SourceRateLimited` on a deterministic,
seeded schedule.  The chaos harness composes these with network loss to
fault all three stages at once.

The wrappers are *transparent proxies*: reads are fault-injected, writes
(``flag``, ``observe`` — scenario setup, not measurement traffic) pass
through untouched, and everything else delegates.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Set, Union

from .errors import SourceRateLimited, SourceTimeout


class FaultPlan:
    """A deterministic schedule of faults for one wrapped source.

    Three knobs compose:

    * ``dead`` — every call fails (a vendor outage);
    * ``fail_first`` — the first N calls fail, later ones succeed
      (a transient outage that retries ride out);
    * ``error_rate`` — each call independently fails with this
      probability, drawn from a ``seed``-keyed RNG (background flakiness).

    ``ratelimit_share`` of injected faults are rate-limit errors, the
    rest timeouts.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        ratelimit_share: float = 0.5,
        fail_first: int = 0,
        dead: bool = False,
    ):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(
                f"error_rate must be in [0, 1], got {error_rate}"
            )
        if not 0.0 <= ratelimit_share <= 1.0:
            raise ValueError(
                f"ratelimit_share must be in [0, 1], got {ratelimit_share}"
            )
        if fail_first < 0:
            raise ValueError(f"fail_first must be >= 0, got {fail_first}")
        self.seed = seed
        self.error_rate = error_rate
        self.ratelimit_share = ratelimit_share
        self.fail_first = fail_first
        self.dead = dead
        self._rng = random.Random(seed)
        #: calls checked / faults injected, for assertions and reports
        self.calls = 0
        self.faults = 0

    @property
    def never_faults(self) -> bool:
        """True when this plan can provably never inject a fault.

        Only such a plan leaves its wrapped source *deterministic*
        (call-count independent), which is what stage 2's verdict memo
        requires before it may skip repeat source calls.
        """
        return (
            not self.dead
            and self.fail_first == 0
            and self.error_rate == 0.0
        )

    def check(self, source: str) -> None:
        """Raise the scheduled fault for this call, if any."""
        self.calls += 1
        fault = (
            self.dead
            or self.calls <= self.fail_first
            or (
                self.error_rate > 0.0
                and self._rng.random() < self.error_rate
            )
        )
        if not fault:
            return
        self.faults += 1
        if self._rng.random() < self.ratelimit_share:
            raise SourceRateLimited(source)
        raise SourceTimeout(source)


class FlakyVendor:
    """A :class:`~repro.intel.vendor.SecurityVendor` that sometimes fails.

    Read paths (``is_malicious``, ``tags``, ``verdict``, ``blacklist``)
    consult the fault plan; write paths used by world construction
    (``flag``, ``clear``) pass through.
    """

    def __init__(self, vendor, plan: FaultPlan):
        self.inner = vendor
        self.plan = plan

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def version(self) -> int:
        return getattr(self.inner, "version", 0)

    @property
    def _source(self) -> str:
        return f"vendor:{self.inner.name}"

    def is_malicious(self, address: str) -> bool:
        self.plan.check(self._source)
        return self.inner.is_malicious(address)

    def tags(self, address: str) -> FrozenSet[str]:
        self.plan.check(self._source)
        return self.inner.tags(address)

    def verdict(self, address: str):
        self.plan.check(self._source)
        return self.inner.verdict(address)

    def blacklist(self) -> List[str]:
        self.plan.check(self._source)
        return self.inner.blacklist()

    def flag(self, address: str, tags=(), timestamp: float = 0.0) -> None:
        self.inner.flag(address, tags, timestamp=timestamp)

    def clear(self, address: str) -> None:
        self.inner.clear(address)

    def __len__(self) -> int:
        return len(self.inner)

    def __repr__(self) -> str:
        return f"FlakyVendor({self.inner!r}, faults={self.plan.faults})"


class FlakyPassiveDNS:
    """A :class:`~repro.intel.pdns.PassiveDnsStore` behind a flaky API."""

    SOURCE = "pdns"

    def __init__(self, pdns, plan: FaultPlan):
        self.inner = pdns
        self.plan = plan

    @property
    def deterministic(self) -> bool:
        """Memoization-safe only when the plan can never fault."""
        return self.plan.never_faults and getattr(
            self.inner, "deterministic", False
        )

    @property
    def horizon(self) -> float:
        return self.inner.horizon

    # reads: fault-injected ------------------------------------------------

    def history(self, domain, now, rrtype=None):
        self.plan.check(self.SOURCE)
        return self.inner.history(domain, now, rrtype)

    def historical_rdata(self, domain, rrtype, now) -> Set[str]:
        self.plan.check(self.SOURCE)
        return self.inner.historical_rdata(domain, rrtype, now)

    def record_in_history(self, domain, rrtype, rdata_text, now) -> bool:
        self.plan.check(self.SOURCE)
        return self.inner.record_in_history(domain, rrtype, rdata_text, now)

    def historical_nameservers(self, domain, now):
        self.plan.check(self.SOURCE)
        return self.inner.historical_nameservers(domain, now)

    def domains(self):
        self.plan.check(self.SOURCE)
        return self.inner.domains()

    # writes: world setup, pass through ------------------------------------

    def observe(self, domain, rrtype, rdata_text, timestamp) -> None:
        self.inner.observe(domain, rrtype, rdata_text, timestamp)

    def observe_delegation(self, domain, ns_targets, timestamp) -> None:
        self.inner.observe_delegation(domain, ns_targets, timestamp)

    def __len__(self) -> int:
        return len(self.inner)

    def __repr__(self) -> str:
        return f"FlakyPassiveDNS({self.inner!r}, faults={self.plan.faults})"


class FlakyIPInfo:
    """An :class:`~repro.intel.ipinfo.IpInfoDatabase` behind a flaky API."""

    SOURCE = "ipinfo"

    def __init__(self, ipinfo, plan: FaultPlan):
        self.inner = ipinfo
        self.plan = plan

    @property
    def deterministic(self) -> bool:
        """Memoization-safe only when the plan can never fault."""
        return self.plan.never_faults and getattr(
            self.inner, "deterministic", False
        )

    def lookup(self, address: str):
        self.plan.check(self.SOURCE)
        return self.inner.lookup(address)

    def asn(self, address: str) -> int:
        return self.lookup(address).asn

    def country(self, address: str) -> str:
        return self.lookup(address).country

    def cert_org(self, address: str) -> Optional[str]:
        return self.lookup(address).cert_org

    def http(self, address: str):
        return self.lookup(address).http

    # population + inventory: pass through ---------------------------------

    def register_prefix(self, cidr, asn, as_name, country) -> None:
        self.inner.register_prefix(cidr, asn, as_name, country)

    def register_host(self, address, **kwargs):
        return self.inner.register_host(address, **kwargs)

    def known_hosts(self) -> List[str]:
        return self.inner.known_hosts()

    def __repr__(self) -> str:
        return f"FlakyIPInfo({self.inner!r}, faults={self.plan.faults})"
