"""Retry, circuit breaking, and health accounting for data sources.

Stage 1 already survives flaky *nameservers* through the scan engine;
this module gives stages 2 and 3 the same protection against flaky
*data sources* (threat-intel vendors, passive DNS, IP metadata).  It
deliberately reuses the engine's primitives — a
:class:`~repro.engine.breaker.CircuitBreaker` keyed by source name and a
:class:`~repro.engine.ratelimit.RateLimiter` for post-429 cool-downs —
so the whole system shares one fault-handling vocabulary.

The central object is :class:`SourceGuard`: every call to a guarded
source goes through :meth:`SourceGuard.try_call`, which retries
:class:`~repro.pipeline.errors.SourceError` with exponential backoff,
trips the source's circuit after consecutive exhausted-retry failures,
and keeps a :class:`SourceHealth` ledger the final report surfaces as
its ``DegradedSources`` section.  The guard never raises: an
unavailable source yields ``(False, None)`` and the caller degrades to
whatever evidence survives.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, Optional, Tuple

from ..engine.breaker import CircuitBreaker, CircuitState
from ..engine.ratelimit import RateLimiter
from .errors import SourceError, SourceRateLimited


@dataclass
class SourceHealth:
    """Everything one guarded source did during a run."""

    name: str
    #: guarded calls requested (including skipped ones)
    calls: int = 0
    #: calls that returned a value (possibly after retries)
    successes: int = 0
    #: calls abandoned after exhausting the retry budget
    failures: int = 0
    #: individual re-attempts after a SourceError
    retries: int = 0
    #: SourceRateLimited errors observed
    rate_limited: int = 0
    #: calls never attempted (open circuit or rate-limit cool-down)
    skipped: int = 0
    #: virtual seconds of backoff the retries accounted for
    backoff_wait: float = 0.0
    #: breaker state at snapshot time ("closed" / "open" / "half_open")
    state: str = CircuitState.CLOSED.value

    @property
    def degraded(self) -> bool:
        """Did this source contribute less than a clean run would have?"""
        return self.failures > 0 or self.skipped > 0

    @property
    def dead(self) -> bool:
        """Is the source's circuit tripped (open or probing half-open)?

        Half-open counts: it means the last attempt failed and the
        breaker is still waiting for a successful probe.
        """
        return self.state != CircuitState.CLOSED.value

    def merge(self, other: "SourceHealth") -> None:
        """Fold another ledger for the same source into this one."""
        self.calls += other.calls
        self.successes += other.successes
        self.failures += other.failures
        self.retries += other.retries
        self.rate_limited += other.rate_limited
        self.skipped += other.skipped
        self.backoff_wait += other.backoff_wait
        # the later snapshot wins the state field
        self.state = other.state

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic ledger counters (backoff is virtual seconds)."""
        return {
            "calls": self.calls,
            "successes": self.successes,
            "failures": self.failures,
            "retries": self.retries,
            "rate_limited": self.rate_limited,
            "skipped": self.skipped,
            "backoff_wait": self.backoff_wait,
            "state": self.state,
            "degraded": self.degraded,
        }

    def describe(self) -> str:
        parts = [
            f"calls={self.calls}",
            f"ok={self.successes}",
            f"fail={self.failures}",
            f"retry={self.retries}",
            f"skip={self.skipped}",
        ]
        if self.rate_limited:
            parts.append(f"429={self.rate_limited}")
        if self.state != CircuitState.CLOSED.value:
            parts.append(f"circuit={self.state}")
        return " ".join(parts)


@dataclass
class SourcesSnapshot:
    """The guard's health ledgers behind the one metrics protocol.

    Implements :class:`repro.obs.metrics.MetricsSnapshot` so source
    degradation reports through the same :class:`MetricRegistry` as the
    engine and stage-2 blocks.  Obtained from
    :meth:`SourceGuard.metrics_snapshot`.
    """

    name: ClassVar[str] = "sources"
    heading: ClassVar[str] = "source health:"

    sources: Dict[str, SourceHealth] = field(default_factory=dict)
    degraded_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "degraded_events": self.degraded_events,
            "sources": {
                source: ledger.to_dict()
                for source, ledger in sorted(self.sources.items())
            },
        }

    def merge(self, other: "SourcesSnapshot") -> None:
        for source, ledger in other.sources.items():
            existing = self.sources.get(source)
            if existing is None:
                self.sources[source] = SourceHealth(
                    name=ledger.name,
                    calls=ledger.calls,
                    successes=ledger.successes,
                    failures=ledger.failures,
                    retries=ledger.retries,
                    rate_limited=ledger.rate_limited,
                    skipped=ledger.skipped,
                    backoff_wait=ledger.backoff_wait,
                    state=ledger.state,
                )
            else:
                existing.merge(ledger)
        self.degraded_events += other.degraded_events

    def summary(self, indent: str = "") -> str:
        lines = [
            f"{indent}[{source}] {ledger.describe()}"
            for source, ledger in sorted(self.sources.items())
        ]
        if not lines:
            lines = [f"{indent}(no guarded calls)"]
        return "\n".join(lines)


class SourceGuard:
    """Retry-with-backoff plus a per-source circuit breaker.

    The guard has no wall clock; its "time" is a monotonic call counter,
    so a ``reset_interval`` of 16 means an open circuit re-probes after
    16 further guarded calls (to any source).  That keeps behaviour
    fully deterministic under test and under the simulator.
    """

    def __init__(
        self,
        retries: int = 2,
        failure_threshold: int = 3,
        reset_interval: float = 16.0,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        ratelimit_cooldown: float = 8.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {backoff_base}"
            )
        if backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        if ratelimit_cooldown < 0:
            raise ValueError(
                f"ratelimit_cooldown must be >= 0, got {ratelimit_cooldown}"
            )
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            reset_interval=reset_interval,
        )
        #: post-rate-limit cool-down: a 429 drains the source's token and
        #: calls made before it regenerates are skipped, not sent
        self.limiter = RateLimiter(interval=ratelimit_cooldown)
        self._clock = 0.0
        self._health: Dict[str, SourceHealth] = {}
        #: monotone counter of degradation events (failures, skips,
        #: rate-limits).  Stage 2's verdict memo folds this into its
        #: cache key: any change in source availability invalidates
        #: every verdict cached under the previous state.
        self.degraded_events = 0
        # stage-2 workers share one guard across threads; the lock keeps
        # the ledgers, breaker clock, and limiter state consistent
        self._lock = threading.Lock()
        #: optional repro.obs.RunTrace + the logical stage tag its
        #: events carry; bound by the hunter before each guarded stage
        self.trace = None
        self.trace_stage: Optional[str] = None

    def bind_trace(self, trace: Any, stage: str) -> None:
        """Attach an event bus; degradation transitions and breaker
        trips are emitted as deterministic events tagged ``stage``.

        Emission order is deterministic because every degradation
        producer runs the record-ordered single-threaded path: fault
        injection makes the sources non-deterministic, which disables
        the memoized (worker-parallel) stage-2 fast path.
        """
        self.trace = trace
        self.trace_stage = stage

    def _emit(self, name: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.emit(name, stage=self.trace_stage, **fields)

    def _note_degraded(
        self, source: str, ledger: SourceHealth, was_degraded: bool, reason: str
    ) -> None:
        """Count one degradation event; emit on the first transition."""
        self.degraded_events += 1
        if not was_degraded and ledger.degraded:
            self._emit("source.degraded", source=source, reason=reason)

    # -- bookkeeping -------------------------------------------------------

    def health(self, source: str) -> SourceHealth:
        ledger = self._health.get(source)
        if ledger is None:
            ledger = self._health[source] = SourceHealth(name=source)
        return ledger

    def snapshot(self) -> Dict[str, SourceHealth]:
        """A copy of every ledger with its live circuit state stamped in."""
        out: Dict[str, SourceHealth] = {}
        for source, ledger in self._health.items():
            out[source] = SourceHealth(
                name=ledger.name,
                calls=ledger.calls,
                successes=ledger.successes,
                failures=ledger.failures,
                retries=ledger.retries,
                rate_limited=ledger.rate_limited,
                skipped=ledger.skipped,
                backoff_wait=ledger.backoff_wait,
                state=self.breaker.state(source).value,
            )
        return out

    def metrics_snapshot(self) -> SourcesSnapshot:
        """The ledgers as one :class:`MetricsSnapshot` (see obs)."""
        return SourcesSnapshot(
            sources=self.snapshot(), degraded_events=self.degraded_events
        )

    @property
    def degraded_sources(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                source
                for source, ledger in self._health.items()
                if ledger.degraded
            )
        )

    # -- the guarded call --------------------------------------------------

    def try_call(
        self,
        source: str,
        fn: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> Tuple[bool, Any]:
        """Call ``fn`` under protection; never raises :class:`SourceError`.

        Returns ``(True, value)`` on success, ``(False, None)`` when the
        source is unavailable (circuit open, in rate-limit cool-down, or
        the retry budget ran dry).  Non-:class:`SourceError` exceptions
        propagate — the guard shields against flaky dependencies, not
        against bugs.
        """
        with self._lock:
            self._clock += 1.0
            ledger = self.health(source)
            ledger.calls += 1
            was_degraded = ledger.degraded
            if not self.breaker.allow(source, self._clock):
                ledger.skipped += 1
                self._note_degraded(
                    source, ledger, was_degraded, "circuit-open"
                )
                return False, None
            if self.limiter.ready_at(source, self._clock) > self._clock:
                ledger.skipped += 1
                self._note_degraded(
                    source, ledger, was_degraded, "rate-limit-cooldown"
                )
                return False, None
            attempt = 0
            while True:
                try:
                    value = fn(*args, **kwargs)
                except SourceError as error:
                    if isinstance(error, SourceRateLimited):
                        ledger.rate_limited += 1
                        self._note_degraded(
                            source, ledger, was_degraded, "rate-limited"
                        )
                        # deliberate cool-down debit (may go negative),
                        # not a paced send — take() would raise here
                        self.limiter.penalize(source, self._clock)
                    attempt += 1
                    if attempt <= self.retries:
                        ledger.retries += 1
                        ledger.backoff_wait += self.backoff_base * (
                            self.backoff_factor ** (attempt - 1)
                        )
                        continue
                    ledger.failures += 1
                    self._note_degraded(
                        source, ledger, was_degraded, "retries-exhausted"
                    )
                    if self.breaker.record_failure(source, self._clock):
                        self._emit(
                            "breaker.trip", scope="source", source=source
                        )
                    return False, None
                self.breaker.record_success(source)
                ledger.successes += 1
                return True, value


def merge_health(
    *snapshots: Dict[str, SourceHealth],
) -> Dict[str, SourceHealth]:
    """Merge per-stage health snapshots into one ledger per source."""
    merged: Dict[str, SourceHealth] = {}
    for snapshot in snapshots:
        for source, ledger in snapshot.items():
            existing = merged.get(source)
            if existing is None:
                merged[source] = SourceHealth(
                    name=ledger.name,
                    calls=ledger.calls,
                    successes=ledger.successes,
                    failures=ledger.failures,
                    retries=ledger.retries,
                    rate_limited=ledger.rate_limited,
                    skipped=ledger.skipped,
                    backoff_wait=ledger.backoff_wait,
                    state=ledger.state,
                )
            else:
                existing.merge(ledger)
    return merged
