"""The pipeline failure taxonomy.

A production measurement run can die in exactly three ways, and the
taxonomy keeps them distinguishable all the way to the exit code:

* **source failures** (:class:`SourceError` and subclasses) — a single
  data dependency (a threat-intel vendor, the passive-DNS API, the IP
  metadata service) timed out or rate-limited one call.  These are
  *retryable* and, past the retry budget, *degradable*: the pipeline
  keeps going on the surviving quorum and reports what it skipped.
* **stage failures** (:class:`StageFailed`) — a whole pipeline stage
  could not complete (the scan engine crashed, a checkpoint could not be
  written).  These abort the run; whatever checkpoints exist allow a
  later ``--resume``.
* **checkpoint failures** (:class:`CheckpointError`) — the on-disk state
  a resume was asked to continue from is missing, unreadable, or was
  produced under a different configuration.

Only :class:`SourceError` is ever raised by the fault-injection
decorators in :mod:`repro.pipeline.faults`; everything that *handles*
faults (:class:`repro.pipeline.resilience.SourceGuard`) catches exactly
that type, so a genuine programming error still surfaces as a crash.
"""

from __future__ import annotations

from typing import Optional


class PipelineError(Exception):
    """Base of everything the resilient pipeline can raise."""


class CheckpointError(PipelineError):
    """A checkpoint is missing, malformed, or configuration-mismatched."""


class StageFailed(PipelineError):
    """A pipeline stage could not complete.

    ``stage`` names the step (``stage1-collect`` etc.); the original
    exception rides along as ``cause`` (and ``__cause__``).
    """

    def __init__(self, stage: str, cause: BaseException):
        super().__init__(f"stage {stage!r} failed: {cause}")
        self.stage = stage
        self.cause = cause


class SourceError(PipelineError):
    """One call to an external data source failed (transiently)."""

    def __init__(self, source: str, message: Optional[str] = None):
        super().__init__(message or f"source {source!r} unavailable")
        self.source = source


class SourceTimeout(SourceError):
    """The source did not answer within its deadline."""

    def __init__(self, source: str, timeout: Optional[float] = None):
        detail = f" after {timeout}s" if timeout is not None else ""
        super().__init__(source, f"source {source!r} timed out{detail}")
        self.timeout = timeout


class SourceRateLimited(SourceError):
    """The source refused the call with a rate-limit response."""

    def __init__(self, source: str, retry_after: Optional[float] = None):
        detail = (
            f" (retry after {retry_after}s)" if retry_after is not None else ""
        )
        super().__init__(source, f"source {source!r} rate-limited{detail}")
        self.retry_after = retry_after
