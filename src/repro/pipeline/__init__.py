"""The resilient pipeline: checkpointed stages over degradable sources.

Layered on top of :class:`repro.core.hunter.URHunter`:

* :mod:`~repro.pipeline.errors` — the shared failure taxonomy;
* :mod:`~repro.pipeline.resilience` — :class:`SourceGuard` (retry +
  circuit breaker + rate-limit cool-down) and :class:`SourceHealth`;
* :mod:`~repro.pipeline.faults` — seeded fault injection for vendors,
  passive DNS, and IP metadata;
* :mod:`~repro.pipeline.checkpoint` — JSON stage checkpoints;
* :mod:`~repro.pipeline.runner` — :class:`PipelineRunner`, which
  executes the three stages as named, individually checkpointed steps
  and resumes a killed run from the last completed stage.

The first three are import-light and loaded eagerly (they are used by
:mod:`repro.intel` and :mod:`repro.core`); the checkpoint store and the
runner depend on :mod:`repro.core` and are loaded lazily to keep the
package cycle-free.
"""

from __future__ import annotations

from .errors import (
    CheckpointError,
    PipelineError,
    SourceError,
    SourceRateLimited,
    SourceTimeout,
    StageFailed,
)
from .faults import FaultPlan, FlakyIPInfo, FlakyPassiveDNS, FlakyVendor
from .resilience import (
    SourceGuard,
    SourceHealth,
    SourcesSnapshot,
    merge_health,
)

_LAZY_RUNNER = {
    "PipelineRunner",
    "PipelineResult",
    "STAGE1",
    "STAGE2",
    "STAGE3",
    "STAGE_ORDER",
    "STREAM_STAGE",
}
_LAZY_CHECKPOINT = {"CheckpointStore", "config_fingerprint"}


def __getattr__(name: str):
    if name in _LAZY_RUNNER:
        from . import runner

        return getattr(runner, name)
    if name in _LAZY_CHECKPOINT:
        from . import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "FaultPlan",
    "FlakyIPInfo",
    "FlakyPassiveDNS",
    "FlakyVendor",
    "PipelineError",
    "PipelineResult",
    "PipelineRunner",
    "STAGE1",
    "STAGE2",
    "STAGE3",
    "STAGE_ORDER",
    "STREAM_STAGE",
    "SourceError",
    "SourceGuard",
    "SourceHealth",
    "SourceRateLimited",
    "SourceTimeout",
    "SourcesSnapshot",
    "StageFailed",
    "config_fingerprint",
    "merge_health",
]
