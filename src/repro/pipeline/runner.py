"""The resilient pipeline runner: staged, checkpointed, resumable.

:class:`PipelineRunner` executes :class:`~repro.core.hunter.URHunter` as
three named stages —

* ``stage1-collect`` — all three response collections,
* ``stage2-exclude`` — uniformity checking + suspicion filtering,
* ``stage3-analyze`` — malicious-behaviour analysis,

— writing a JSON checkpoint after each one (when a
:class:`~repro.pipeline.checkpoint.CheckpointStore` is attached).  A run
killed mid-stage resumes from the last *completed* stage: completed
stages are decoded from their checkpoints without re-querying anything
(the scan engine's live metrics stay at zero), and the first missing
stage onward runs live.  Once any stage runs live, downstream
checkpoints from the earlier run are invalidated — they were derived
from state that no longer exists.

Failure semantics follow the shared taxonomy in
:mod:`repro.pipeline.errors`: a source-level outage inside a stage is
absorbed by the stage itself (degraded run, see
:class:`~repro.core.report.DegradedSources`); an exception escaping a
stage is recorded in the checkpoint directory (``failure.json``) and
re-raised as :class:`~repro.pipeline.errors.StageFailed`, leaving every
completed checkpoint behind for a later ``--resume``.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.hunter import Stage1Result, Stage2Result, Stage3Result, URHunter
from ..core.records import ClassifiedUR
from ..core.report import MeasurementReport
from ..obs.events import run_end_fields
from .checkpoint import (
    CheckpointStore,
    config_fingerprint,
    decode_segment,
    decode_stage1,
    decode_stage2,
    decode_stage3,
    encode_segment,
    encode_stage1,
    encode_stage2,
    encode_stage3,
)
from .errors import StageFailed

STAGE1 = "stage1-collect"
STAGE2 = "stage2-exclude"
STAGE3 = "stage3-analyze"
STAGE_ORDER: Tuple[str, ...] = (STAGE1, STAGE2, STAGE3)
#: the fused streaming dataflow, for failure provenance
STREAM_STAGE = "stream-flow"

#: set this to a stage name to make the runner kill its own process at
#: that stage's start — the kill-and-resume smoke test's crash hook
CRASH_ENV = "URHUNTER_CRASH_STAGE"
#: set this to a segment index to make a streaming runner kill its own
#: process right after persisting that segment — the mid-stream
#: kill-and-resume test's crash hook
CRASH_SEGMENT_ENV = "URHUNTER_CRASH_SEGMENT"


@dataclass
class PipelineResult:
    """What one runner invocation did and produced."""

    report: Optional[MeasurementReport]
    #: stages decoded from checkpoints (no live work)
    resumed: Tuple[str, ...] = ()
    #: stages executed live this invocation
    executed: Tuple[str, ...] = ()

    @property
    def status(self) -> str:
        """``clean`` or ``degraded`` (aborted runs raise instead)."""
        if self.report is not None and self.report.is_degraded:
            return "degraded"
        return "clean"


class PipelineRunner:
    """Drives a hunter stage by stage with optional checkpointing.

    Without a store the runner degrades to a plain staged execution —
    same behaviour as :meth:`URHunter.run`, same report.
    """

    def __init__(
        self,
        hunter: URHunter,
        store: Optional[CheckpointStore] = None,
        resume: bool = False,
        scenario_fingerprint: Optional[str] = None,
        checkpoint_every: int = 0,
    ):
        if resume and store is None:
            raise ValueError("resume requires a checkpoint store")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.hunter = hunter
        self.store = store
        self.resume = resume
        self.scenario_fingerprint = scenario_fingerprint
        #: streaming runs persist a segment every N classified records
        #: (0 disables incremental segments)
        self.checkpoint_every = checkpoint_every

    # -- helpers -----------------------------------------------------------

    def _fingerprint(self) -> str:
        extra: Dict[str, Any] = {
            # the scan-plan hash pins the planned query matrix: a
            # checkpoint may only be resumed against the same plan
            # (shard count and worker count are deliberately NOT part
            # of it — they are performance knobs)
            "plan": self.hunter.plan.plan_hash,
        }
        if self.scenario_fingerprint is not None:
            extra["scenario"] = self.scenario_fingerprint
        return config_fingerprint(self.hunter.config, extra=extra)

    def _emit(self, name: str, stage: Optional[str] = None, **fields) -> None:
        """Emit on the hunter's event bus, if one is attached.

        The runner owns the run-level events (``run.start``/``run.end``/
        ``run.stopped``/``run.abort``) plus resume provenance
        (``checkpoint.load``/``stage.resumed``/``segment.replay``) and
        artifact seals (``checkpoint.save``/``segment.save``); the hunter
        owns the stage spans.
        """
        trace = self.hunter.trace
        if trace is not None:
            trace.emit(name, stage=stage, **fields)

    def _emit_timing(self, name: str, **fields) -> None:
        """Emit a timing-section event (run-to-run variant provenance)."""
        trace = self.hunter.trace
        if trace is not None:
            trace.emit_timing(name, **fields)

    @staticmethod
    def _maybe_crash(stage: str) -> None:
        """Crash hook for kill-and-resume testing (see :data:`CRASH_ENV`)."""
        if os.environ.get(CRASH_ENV) == stage:
            os.kill(os.getpid(), signal.SIGTERM)

    @staticmethod
    def _maybe_crash_segment(index: int) -> None:
        """Segment crash hook (see :data:`CRASH_SEGMENT_ENV`)."""
        target = os.environ.get(CRASH_SEGMENT_ENV)
        if target is not None and int(target) == index:
            os.kill(os.getpid(), signal.SIGTERM)

    def _downstream(self, stage: str) -> Tuple[str, ...]:
        index = STAGE_ORDER.index(stage)
        return STAGE_ORDER[index:]

    def _run_live(self, stage: str, fn, *args):
        """Execute one stage live, recording failure provenance."""
        self._maybe_crash(stage)
        if self.store is not None:
            # a live re-run invalidates this stage's old snapshot and
            # everything derived from it
            self.store.invalidate_from(list(self._downstream(stage)))
        try:
            return fn(*args)
        except StageFailed as error:
            if self.store is not None:
                self.store.record_failure(stage, error)
            self._emit("run.abort", stage=stage, error=type(error).__name__)
            raise
        except Exception as error:
            if self.store is not None:
                self.store.record_failure(stage, error)
            self._emit("run.abort", stage=stage, error=type(error).__name__)
            raise StageFailed(stage, error) from error

    # -- the run -----------------------------------------------------------

    def run(
        self, validate: bool = True, stop_after: Optional[str] = None
    ) -> PipelineResult:
        """Execute (or resume) the pipeline.

        ``stop_after`` names a stage to halt after — checkpoints up to
        and including it are written, the report is not built (the
        returned result carries ``report=None``).  Used by tests and by
        operators splitting a long scan across maintenance windows.
        Batch execution only: the streaming dataflow fuses the stages,
        so there is no between-stages point to stop at.

        With ``config.execution == "stream"`` the three stages run as
        one record-level dataflow (:meth:`URHunter.run_flow`), with
        incremental segment checkpoints every ``checkpoint_every``
        classified records.  Exception: when completed *stage*
        checkpoints from an earlier (batch or finished-stream) run are
        available to resume, the staged path is used so they are
        honoured — output is byte-identical either way.
        """
        if stop_after is not None and stop_after not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage {stop_after!r} "
                f"(known: {', '.join(STAGE_ORDER)})"
            )
        # Anchor any deadline budget at the runner's start so "run
        # deadline" measures the whole pipeline, not just the first
        # engine call (the engine's own begin() is idempotent).
        budget = getattr(self.hunter.engine, "budget", None)
        if budget is not None:
            budget.begin(self.hunter.network.now)
        streaming = self.hunter.config.execution == "stream"
        if streaming and stop_after is not None:
            raise ValueError(
                "stop_after is incompatible with streaming execution: "
                "the dataflow fuses the stages"
            )
        if self.store is not None:
            self.store.prepare(self._fingerprint(), resume=self.resume)
            if self.hunter.config.shards > 0:
                # grant the shard runner per-shard partial persistence
                # (a shard completed before a crash is not re-scanned)
                self.hunter.shard_store = self.store
            if self.resume:
                # GC: a fresh run wiped the directory in prepare(); a
                # resume keeps its usable segments/partials but prunes
                # the ones no resume could ever load (stale plan/shard
                # stamps, files superseded by a stage checkpoint)
                config = self.hunter.config
                pruned = self.store.prune_stale(
                    plan_hash=self.hunter.plan.plan_hash,
                    shards=config.shards if config.shards > 0 else 1,
                    superseded_by=STAGE1,
                )
                if any(pruned.values()):
                    self._emit_timing("checkpoint.pruned", **pruned)
        self._emit("run.start", fingerprint=self._fingerprint())
        if streaming and not (
            self.resume
            and self.store is not None
            and self.store.has(STAGE1)
        ):
            return self._run_stream(validate)
        return self._run_staged(validate, stop_after)

    def _run_staged(
        self, validate: bool, stop_after: Optional[str]
    ) -> PipelineResult:
        """The batch path: three stages, a checkpoint after each."""
        resumed: list = []
        executed: list = []
        # Once any stage runs live, later checkpoints no longer describe
        # this run's state and must not be loaded.
        trust_checkpoints = self.resume and self.store is not None

        # -- stage 1: collection ------------------------------------------
        stage1: Optional[Stage1Result] = None
        if trust_checkpoints and self.store.has(STAGE1):
            self._emit("checkpoint.load", stage=STAGE1)
            stage1 = decode_stage1(
                self.store.load(STAGE1), self.hunter.ipinfo
            )
            # stage 2 reads the profiles through the hunter
            self.hunter.correct_db = stage1.collection.correct_db
            resumed.append(STAGE1)
            self._emit(
                "stage.resumed",
                stage=STAGE1,
                records=len(stage1.collection.undelegated),
            )
        else:
            trust_checkpoints = False
            stage1 = self._run_live(STAGE1, self.hunter.stage1_collect)
            executed.append(STAGE1)
            if self.store is not None:
                self.store.save(STAGE1, encode_stage1(stage1))
                # the stage-1 snapshot supersedes any shard partials
                self.store.clear_shard_partials()
                self._emit("checkpoint.save", stage=STAGE1)
        if stop_after == STAGE1:
            self._emit("run.stopped", after=STAGE1)
            return PipelineResult(
                report=None,
                resumed=tuple(resumed),
                executed=tuple(executed),
            )

        # -- stage 2: exclusion -------------------------------------------
        stage2: Optional[Stage2Result] = None
        if trust_checkpoints and self.store.has(STAGE2):
            payload = self.store.load(STAGE2)
            # a checkpoint written without validation cannot satisfy a
            # validating resume — fall through to a live re-run
            if payload.get("validated", False) or not validate:
                self._emit(
                    "checkpoint.load",
                    stage=STAGE2,
                    validated=bool(payload.get("validated", False)),
                )
                stage2 = decode_stage2(payload)
                resumed.append(STAGE2)
                self._emit(
                    "stage.resumed",
                    stage=STAGE2,
                    records=len(stage2.outcome.classified),
                )
        if stage2 is None:
            trust_checkpoints = False
            stage2 = self._run_live(
                STAGE2, self.hunter.stage2_exclude, stage1, validate
            )
            executed.append(STAGE2)
            if self.store is not None:
                self.store.save(
                    STAGE2, encode_stage2(stage2, validated=validate)
                )
                self._emit(
                    "checkpoint.save", stage=STAGE2, validated=validate
                )
        if stop_after == STAGE2:
            self._emit("run.stopped", after=STAGE2)
            return PipelineResult(
                report=None,
                resumed=tuple(resumed),
                executed=tuple(executed),
            )

        # -- stage 3: analysis --------------------------------------------
        stage3: Optional[Stage3Result] = None
        if trust_checkpoints and self.store.has(STAGE3):
            self._emit("checkpoint.load", stage=STAGE3)
            stage3 = decode_stage3(self.store.load(STAGE3))
            resumed.append(STAGE3)
            self._emit(
                "stage.resumed",
                stage=STAGE3,
                refined=len(stage3.analysis.classified),
            )
        else:
            stage3 = self._run_live(
                STAGE3, self.hunter.stage3_analyze, stage2
            )
            executed.append(STAGE3)
            if self.store is not None:
                self.store.save(STAGE3, encode_stage3(stage3))
                self._emit("checkpoint.save", stage=STAGE3)

        # -- report (cheap, deterministic; never checkpointed) -------------
        report = self.hunter.build_report(stage1, stage2, stage3)
        if self.store is not None:
            self.store.clear_failure()
        self._emit(
            "run.end",
            resumed=list(resumed),
            executed=list(executed),
            **run_end_fields(report),
        )
        return PipelineResult(
            report=report,
            resumed=tuple(resumed),
            executed=tuple(executed),
        )

    # -- the streaming path -------------------------------------------------

    def _run_stream(self, validate: bool) -> PipelineResult:
        """The streaming path: one fused dataflow, segment checkpoints.

        A resumed run replays any contiguous segment prefix left by a
        crashed stream (the scan is re-driven — it is deterministic —
        but stage-2 classification skips the replayed records), then
        continues live.  On success all three *stage* checkpoints are
        written exactly as the batch path writes them — streaming
        assembles byte-identical stage results — and the segments are
        superseded and cleared.
        """
        store = self.store
        resumed: list = []
        resume_entries: list[ClassifiedUR] = []
        segment_start = 0
        if self.resume and store is not None:
            for payload in store.load_segments():
                resume_entries.extend(decode_segment(payload))
                segment_start += 1
            if segment_start:
                resumed.append(f"segments:{segment_start}")
                self._emit(
                    "segment.replay",
                    stage=STAGE2,
                    segments=segment_start,
                    records=len(resume_entries),
                )
        segment_sink = None
        if store is not None and self.checkpoint_every > 0:
            def segment_sink(index: int, entries: list) -> None:
                store.save_segment(index, encode_segment(index, entries))
                self._emit(
                    "segment.save",
                    stage=STAGE2,
                    index=index,
                    records=len(entries),
                )
                self._maybe_crash_segment(index)
        self._maybe_crash(STAGE1)
        if store is not None:
            # going live: stage snapshots of any earlier run no longer
            # describe this run's state (segments are the resume medium)
            store.invalidate_from(list(STAGE_ORDER))
        try:
            stage1, stage2, stage3 = self.hunter.run_flow(
                validate=validate,
                segment_size=self.checkpoint_every,
                segment_sink=segment_sink,
                resume_entries=resume_entries,
                segment_start=segment_start,
            )
        except StageFailed as error:
            if store is not None:
                store.record_failure(error.stage, error)
            self._emit(
                "run.abort", stage=error.stage, error=type(error).__name__
            )
            raise
        except Exception as error:
            if store is not None:
                store.record_failure(STREAM_STAGE, error)
            self._emit(
                "run.abort", stage=STREAM_STAGE, error=type(error).__name__
            )
            raise StageFailed(STREAM_STAGE, error) from error
        executed = (STAGE1, STAGE2, STAGE3)
        if store is not None:
            store.save(STAGE1, encode_stage1(stage1))
            # the stage-1 snapshot supersedes any shard partials
            store.clear_shard_partials()
            self._emit("checkpoint.save", stage=STAGE1)
            store.save(STAGE2, encode_stage2(stage2, validated=validate))
            self._emit("checkpoint.save", stage=STAGE2, validated=validate)
            store.save(STAGE3, encode_stage3(stage3))
            self._emit("checkpoint.save", stage=STAGE3)
            store.clear_segments()
        report = self.hunter.build_report(stage1, stage2, stage3)
        if store is not None:
            store.clear_failure()
        self._emit(
            "run.end",
            resumed=list(resumed),
            executed=list(executed),
            **run_end_fields(report),
        )
        return PipelineResult(
            report=report,
            resumed=tuple(resumed),
            executed=executed,
        )
