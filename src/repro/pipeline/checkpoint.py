"""Stage checkpoints: durable, resumable snapshots of pipeline state.

Each completed stage is serialized to one JSON file inside a checkpoint
directory, next to a ``manifest.json`` carrying a fingerprint of the
:class:`~repro.core.hunter.HunterConfig` (plus an optional scenario
fingerprint supplied by the caller).  A resumed run first verifies the
fingerprint — resuming a checkpoint produced under a different
configuration would silently mix incompatible intermediate state, so a
mismatch raises :class:`~repro.pipeline.errors.CheckpointError` instead.

Determinism notes, because resume is verified *byte-for-byte* against an
uninterrupted run:

* every set-valued field (tags, profile facts, protective fingerprints)
  is serialized as a **sorted** list — set iteration order is hash-seed
  dependent and does not survive process boundaries;
* insertion-ordered mappings (``ip_verdicts``, per-source health) are
  serialized as **lists of entries**, because their order is meaningful
  (first-seen order drives report iteration) and must round-trip;
* the stage-1 virtual timestamp ``now`` rides in the checkpoint so a
  resumed stage 2 classifies against the same clock the live run did.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write
leaves either the previous checkpoint or none, never a torn file.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.analysis import MaliciousAnalysisResult
from ..core.collector import CollectionResult, ProtectiveFingerprint
from ..core.correctness import CorrectRecordDatabase
from ..core.hunter import Stage1Result, Stage2Result, Stage3Result
from ..core.parallel import Stage2Metrics
from ..core.records import ClassifiedUR, IpVerdict, URCategory, UndelegatedRecord
from ..core.suspicion import SuspicionOutcome
from ..dns.name import Name, name
from ..engine.metrics import LatencyHistogram, ScanMetrics, StageCounters
from ..intel.ipinfo import IpInfoDatabase
from .errors import CheckpointError
from .resilience import SourceHealth

#: checkpoint format version; bump when the payload schema changes
#: (v2: stage-1 ``now`` became the classification epoch, stage-2
#: metrics dropped their wall-clock fields, stream segments added;
#: v3: ``shed`` joined the per-stage scan counters; v4: the scan-plan
#: hash joined the manifest fingerprint and per-shard partial files
#: were added)
FORMAT_VERSION = 4


# -- generic json helpers ---------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Reduce config values to a canonical JSON-compatible form."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonify(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonify(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Name):
        return value.to_text()
    return value


def config_fingerprint(
    config: Any, extra: Optional[Dict[str, Any]] = None
) -> str:
    """A stable digest of the run configuration.

    ``extra`` lets callers fold in anything else that must match between
    the checkpointing run and the resuming run (e.g. a scenario seed).
    Knobs the config names in ``FINGERPRINT_EXCLUDE`` (performance
    settings that cannot change results, like the stage-2 worker count)
    are dropped, so a checkpoint may be resumed under a different value.
    """
    jsonified = _jsonify(config)
    excluded = getattr(config, "FINGERPRINT_EXCLUDE", frozenset())
    if isinstance(jsonified, dict):
        for knob in excluded:
            jsonified.pop(knob, None)
    payload = {"config": jsonified, "extra": _jsonify(extra or {})}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- record codecs ----------------------------------------------------------


def encode_record(record: UndelegatedRecord) -> Dict[str, Any]:
    return {
        "domain": record.domain.to_text(),
        "nameserver_ip": record.nameserver_ip,
        "provider": record.provider,
        "rrtype": record.rrtype,
        "rdata_text": record.rdata_text,
        "nameserver_name": (
            record.nameserver_name.to_text()
            if record.nameserver_name is not None
            else None
        ),
        "ttl": record.ttl,
    }


def decode_record(payload: Dict[str, Any]) -> UndelegatedRecord:
    return UndelegatedRecord(
        domain=name(payload["domain"]),
        nameserver_ip=payload["nameserver_ip"],
        provider=payload["provider"],
        rrtype=payload["rrtype"],
        rdata_text=payload["rdata_text"],
        nameserver_name=(
            name(payload["nameserver_name"])
            if payload["nameserver_name"] is not None
            else None
        ),
        ttl=payload["ttl"],
    )


def encode_classified(entry: ClassifiedUR) -> Dict[str, Any]:
    return {
        "record": encode_record(entry.record),
        "category": entry.category.value,
        "reasons": list(entry.reasons),
        "corresponding_ips": list(entry.corresponding_ips),
        "txt_category": entry.txt_category,
    }


def decode_classified(payload: Dict[str, Any]) -> ClassifiedUR:
    return ClassifiedUR(
        record=decode_record(payload["record"]),
        category=URCategory(payload["category"]),
        reasons=tuple(payload["reasons"]),
        corresponding_ips=tuple(payload["corresponding_ips"]),
        txt_category=payload["txt_category"],
    )


def encode_ip_verdict(verdict: IpVerdict) -> Dict[str, Any]:
    return {
        "address": verdict.address,
        "intel_flagged": verdict.intel_flagged,
        "ids_flagged": verdict.ids_flagged,
        "vendor_count": verdict.vendor_count,
        # sorted: frozensets do not iterate deterministically across
        # processes, and resume must reproduce the report byte-for-byte
        "tags": sorted(verdict.tags),
        "alert_categories": list(verdict.alert_categories),
        "intel_partial": verdict.intel_partial,
    }


def decode_ip_verdict(payload: Dict[str, Any]) -> IpVerdict:
    return IpVerdict(
        address=payload["address"],
        intel_flagged=payload["intel_flagged"],
        ids_flagged=payload["ids_flagged"],
        vendor_count=payload["vendor_count"],
        tags=frozenset(payload["tags"]),
        alert_categories=tuple(payload["alert_categories"]),
        intel_partial=payload["intel_partial"],
    )


def encode_fingerprint(fingerprint: ProtectiveFingerprint) -> Dict[str, Any]:
    return {
        "nameserver_ip": fingerprint.nameserver_ip,
        "records": sorted(
            [rrtype, rdata] for rrtype, rdata in fingerprint.records
        ),
    }


def decode_fingerprint(payload: Dict[str, Any]) -> ProtectiveFingerprint:
    return ProtectiveFingerprint(
        nameserver_ip=payload["nameserver_ip"],
        records={
            (rrtype, rdata) for rrtype, rdata in payload["records"]
        },
    )


def encode_profiles(database: CorrectRecordDatabase) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for domain in database.domains():
        profile = database.profile(domain)
        out.append(
            {
                "domain": profile.domain.to_text(),
                "ips": sorted(profile.ips),
                "asns": sorted(profile.asns),
                "countries": sorted(profile.countries),
                "cert_orgs": sorted(profile.cert_orgs),
                "txt_values": sorted(profile.txt_values),
                "mx_values": sorted(profile.mx_values),
            }
        )
    return out


def decode_profiles(
    payload: List[Dict[str, Any]], ipinfo: IpInfoDatabase
) -> CorrectRecordDatabase:
    database = CorrectRecordDatabase(ipinfo)
    for item in payload:
        profile = database.profile(name(item["domain"]))
        profile.ips.update(item["ips"])
        profile.asns.update(item["asns"])
        profile.countries.update(item["countries"])
        profile.cert_orgs.update(item["cert_orgs"])
        profile.txt_values.update(item["txt_values"])
        profile.mx_values.update(item["mx_values"])
    return database


def encode_metrics(metrics: Optional[ScanMetrics]) -> Optional[Dict[str, Any]]:
    if metrics is None:
        return None
    return {
        "stages": {
            stage: {
                "queries": counters.queries,
                "responses": counters.responses,
                "timeouts": counters.timeouts,
                "retries": counters.retries,
                "giveups": counters.giveups,
                "skipped": counters.skipped,
                "shed": counters.shed,
                "rate_limit_wait": counters.rate_limit_wait,
            }
            for stage, counters in sorted(metrics.stages.items())
        },
        "latency": {
            "bounds": list(metrics.latency.bounds),
            "counts": list(metrics.latency.counts),
            "total": metrics.latency.total,
            "sum": metrics.latency.sum,
        },
    }


def decode_metrics(
    payload: Optional[Dict[str, Any]],
) -> Optional[ScanMetrics]:
    if payload is None:
        return None
    metrics = ScanMetrics()
    for stage, counters in payload["stages"].items():
        metrics.stages[stage] = StageCounters(**counters)
    latency = LatencyHistogram(tuple(payload["latency"]["bounds"]))
    latency.counts = list(payload["latency"]["counts"])
    latency.total = payload["latency"]["total"]
    latency.sum = payload["latency"]["sum"]
    metrics.latency = latency
    return metrics


def encode_stage2_metrics(
    metrics: Optional[Stage2Metrics],
) -> Optional[Dict[str, Any]]:
    """Deterministic stage-2 counters only.

    The wall-clock fields (``wall_s``, ``condition_s``) are deliberately
    *not* checkpointed: they leak host timing into payloads that must be
    reproducible, and a resumed run could not honestly restore them
    anyway.  ``decode_stage2_metrics`` leaves them at their dataclass
    defaults (0.0 / empty).
    """
    if metrics is None:
        return None
    return {
        "records": metrics.records,
        "protective_matches": metrics.protective_matches,
        "distinct_keys": metrics.distinct_keys,
        "cache_hits": metrics.cache_hits,
        "cache_misses": metrics.cache_misses,
        "workers": metrics.workers,
        "memoized": metrics.memoized,
        "pdns_cache_hits": metrics.pdns_cache_hits,
        "pdns_cache_misses": metrics.pdns_cache_misses,
        "ipinfo_cache_hits": metrics.ipinfo_cache_hits,
        "ipinfo_cache_misses": metrics.ipinfo_cache_misses,
    }


def decode_stage2_metrics(
    payload: Optional[Dict[str, Any]],
) -> Optional[Stage2Metrics]:
    if payload is None:
        return None
    return Stage2Metrics(**payload)


def encode_health(health: Dict[str, SourceHealth]) -> List[Dict[str, Any]]:
    return [
        dataclasses.asdict(ledger) for ledger in health.values()
    ]


def decode_health(payload: List[Dict[str, Any]]) -> Dict[str, SourceHealth]:
    out: Dict[str, SourceHealth] = {}
    for item in payload:
        ledger = SourceHealth(**item)
        out[ledger.name] = ledger
    return out


# -- stage codecs -----------------------------------------------------------


def encode_stage1(stage1: Stage1Result) -> Dict[str, Any]:
    collection = stage1.collection
    if collection.correct_db is None:
        raise CheckpointError(
            "stage-1 checkpoint requires the correct-record database"
        )
    return {
        "undelegated": [
            encode_record(record) for record in collection.undelegated
        ],
        "protective": [
            encode_fingerprint(fingerprint)
            for fingerprint in collection.protective.values()
        ],
        "profiles": encode_profiles(collection.correct_db),
        "responses_seen": collection.responses_seen,
        "queries_sent": collection.queries_sent,
        "timeouts": collection.timeouts,
        "correct_successes": collection.correct_successes,
        "metrics": encode_metrics(collection.metrics),
        "now": stage1.now,
        "notes": list(stage1.notes),
    }


def decode_stage1(
    payload: Dict[str, Any], ipinfo: IpInfoDatabase
) -> Stage1Result:
    correct_db = decode_profiles(payload["profiles"], ipinfo)
    collection = CollectionResult(
        undelegated=[
            decode_record(item) for item in payload["undelegated"]
        ],
        correct_db=correct_db,
        protective={
            item["nameserver_ip"]: decode_fingerprint(item)
            for item in payload["protective"]
        },
        responses_seen=payload["responses_seen"],
        queries_sent=payload["queries_sent"],
        timeouts=payload["timeouts"],
        correct_successes=payload["correct_successes"],
        metrics=decode_metrics(payload["metrics"]),
    )
    return Stage1Result(
        collection=collection,
        now=payload["now"],
        notes=tuple(payload["notes"]),
    )


def encode_stage2(stage2: Stage2Result, validated: bool) -> Dict[str, Any]:
    return {
        "classified": [
            encode_classified(entry)
            for entry in stage2.outcome.classified
        ],
        "fn_rate": stage2.fn_rate,
        "source_health": encode_health(stage2.source_health),
        "skipped_conditions": dict(
            sorted(stage2.skipped_conditions.items())
        ),
        "metrics": encode_stage2_metrics(stage2.metrics),
        # resume honesty: a checkpoint written by a validate=False run
        # must not satisfy a validate=True resume
        "validated": validated,
    }


def decode_stage2(payload: Dict[str, Any]) -> Stage2Result:
    return Stage2Result(
        outcome=SuspicionOutcome(
            classified=[
                decode_classified(item) for item in payload["classified"]
            ]
        ),
        fn_rate=payload["fn_rate"],
        source_health=decode_health(payload["source_health"]),
        skipped_conditions=dict(payload["skipped_conditions"]),
        metrics=decode_stage2_metrics(payload.get("metrics")),
    )


def encode_segment(
    index: int, entries: List[ClassifiedUR]
) -> Dict[str, Any]:
    """One incremental stream segment: a slice of stage-2 classifications.

    Segments carry only the classified entries (stage 3 is always
    recomputed at end of stream, and the scan itself is re-driven on
    resume — it is deterministic), indexed so a resume can verify the
    on-disk prefix is contiguous.
    """
    return {
        "index": index,
        "classified": [encode_classified(entry) for entry in entries],
    }


def decode_segment(payload: Dict[str, Any]) -> List[ClassifiedUR]:
    return [decode_classified(item) for item in payload["classified"]]


def encode_stage3(stage3: Stage3Result) -> Dict[str, Any]:
    analysis = stage3.analysis
    return {
        "classified": [
            encode_classified(entry) for entry in analysis.classified
        ],
        # a list, not a sorted mapping: first-seen order is the report's
        # iteration order and must survive the round-trip
        "ip_verdicts": [
            encode_ip_verdict(verdict)
            for verdict in analysis.ip_verdicts.values()
        ],
        "txt_without_ip": analysis.txt_without_ip,
        "source_health": encode_health(stage3.source_health),
    }


def decode_stage3(payload: Dict[str, Any]) -> Stage3Result:
    verdicts = [decode_ip_verdict(item) for item in payload["ip_verdicts"]]
    return Stage3Result(
        analysis=MaliciousAnalysisResult(
            classified=[
                decode_classified(item) for item in payload["classified"]
            ],
            ip_verdicts={
                verdict.address: verdict for verdict in verdicts
            },
            txt_without_ip=payload["txt_without_ip"],
        ),
        source_health=decode_health(payload["source_health"]),
    )


# -- the store --------------------------------------------------------------


class CheckpointStore:
    """One directory of per-stage JSON checkpoints plus a manifest."""

    MANIFEST = "manifest.json"
    FAILURE = "failure.json"
    #: incremental stream-segment files: ``stream-seg-00042.json``
    SEGMENT_PREFIX = "stream-seg-"
    #: per-shard stage-1 partials: ``shard-part-00003.json``
    SHARD_PREFIX = "shard-part-"

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def _stage_file(self, stage: str) -> Path:
        return self.path / f"{stage}.json"

    def _segment_file(self, index: int) -> Path:
        return self.path / f"{self.SEGMENT_PREFIX}{index:05d}.json"

    # -- lifecycle ---------------------------------------------------------

    def prepare(self, fingerprint: str, resume: bool) -> None:
        """Open the store for a run.

        A fresh run wipes stale stage files and stamps a new manifest; a
        resumed run demands an existing manifest with a matching
        configuration fingerprint.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        manifest_path = self.path / self.MANIFEST
        if resume:
            if not manifest_path.exists():
                raise CheckpointError(
                    f"cannot resume: no manifest in {self.path}"
                )
            manifest = self._read(manifest_path)
            if manifest.get("format") != FORMAT_VERSION:
                raise CheckpointError(
                    "cannot resume: checkpoint format "
                    f"{manifest.get('format')!r} != {FORMAT_VERSION}"
                )
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    "cannot resume: checkpoint was written under a "
                    "different configuration (fingerprint mismatch)"
                )
            self.clear_failure()
            return
        for stale in self.path.glob("*.json"):
            stale.unlink()
        self._write(
            manifest_path,
            {"format": FORMAT_VERSION, "fingerprint": fingerprint},
        )

    # -- stage persistence ---------------------------------------------------

    def has(self, stage: str) -> bool:
        return self._stage_file(stage).exists()

    def load(self, stage: str) -> Dict[str, Any]:
        path = self._stage_file(stage)
        if not path.exists():
            raise CheckpointError(f"no checkpoint for stage {stage!r}")
        return self._read(path)

    def save(self, stage: str, payload: Dict[str, Any]) -> None:
        self._write(self._stage_file(stage), payload)

    def invalidate_from(self, stages: List[str]) -> None:
        """Drop checkpoints for ``stages`` (a live re-run upstream makes
        downstream snapshots inconsistent)."""
        for stage in stages:
            path = self._stage_file(stage)
            if path.exists():
                path.unlink()

    # -- stream segments -----------------------------------------------------

    def save_segment(self, index: int, payload: Dict[str, Any]) -> None:
        """Persist one incremental stream segment (atomic, like stages)."""
        self._write(self._segment_file(index), payload)

    def load_segments(self) -> List[Dict[str, Any]]:
        """All segment payloads, index order, contiguity enforced.

        A gap means a segment file was lost — replaying past it would
        silently misalign the resumed classification stream, so it is a
        :class:`CheckpointError` instead.
        """
        paths = sorted(self.path.glob(f"{self.SEGMENT_PREFIX}*.json"))
        payloads = [self._read(path) for path in paths]
        for position, payload in enumerate(payloads):
            if payload.get("index") != position:
                raise CheckpointError(
                    "stream segments not contiguous: expected index "
                    f"{position}, found {payload.get('index')!r}"
                )
        return payloads

    def clear_segments(self) -> None:
        """Drop all segments (the full stage checkpoints supersede them)."""
        for path in self.path.glob(f"{self.SEGMENT_PREFIX}*.json"):
            path.unlink()

    # -- shard partials ------------------------------------------------------

    def _shard_file(self, index: int) -> Path:
        return self.path / f"{self.SHARD_PREFIX}{index:05d}.json"

    def save_shard_partial(
        self,
        index: int,
        shards: int,
        plan_hash: str,
        groups: List[Dict[str, Any]],
    ) -> None:
        """Persist one completed shard of the stage-1 UR scan.

        Each partial is stamped with the plan hash and the shard count
        it was computed under — a shard result is only reusable by a
        resume running the *same* plan partitioned the *same* way.
        """
        self._write(
            self._shard_file(index),
            {
                "shard": index,
                "shards": shards,
                "plan": plan_hash,
                "groups": groups,
            },
        )

    def load_shard_partials(
        self, plan_hash: str, shards: int
    ) -> Dict[int, List[Dict[str, Any]]]:
        """All reusable shard partials, keyed by shard index.

        Partials written under a different plan hash or shard count are
        silently ignored (not an error — the shard runner simply
        re-executes those shards), so changing ``--shards`` between a
        crash and a resume degrades to a slower resume, never a wrong
        one.
        """
        out: Dict[int, List[Dict[str, Any]]] = {}
        for path in sorted(self.path.glob(f"{self.SHARD_PREFIX}*.json")):
            payload = self._read(path)
            if payload.get("plan") != plan_hash:
                continue
            if payload.get("shards") != shards:
                continue
            out[payload["shard"]] = payload["groups"]
        return out

    def clear_shard_partials(self) -> None:
        """Drop all shard partials (the stage-1 checkpoint supersedes
        them)."""
        for path in self.path.glob(f"{self.SHARD_PREFIX}*.json"):
            path.unlink()

    # -- garbage collection --------------------------------------------------

    def prune_stale(
        self,
        plan_hash: Optional[str] = None,
        shards: Optional[int] = None,
        superseded_by: Optional[str] = None,
    ) -> Dict[str, int]:
        """Remove segment/partial files no resume could ever use.

        Crashed runs leave ``stream-seg-*.json`` and
        ``shard-part-*.json`` behind by design (they are the resume
        medium); this prunes the subset that has become garbage:

        * shard partials stamped with a different plan hash or shard
          count (``load_shard_partials`` already ignores them — the
          files just linger forever otherwise), and unreadable ones;
        * both kinds once the stage named by ``superseded_by`` has a
          completed checkpoint — the stage snapshot supersedes the
          incremental files, and the staged resume path would never
          clear them.

        Returns ``{"segments": n, "partials": n}`` so the caller can
        emit a ``checkpoint.pruned`` timing event.
        """
        pruned = {"segments": 0, "partials": 0}
        superseded = superseded_by is not None and self.has(superseded_by)
        for path in sorted(self.path.glob(f"{self.SHARD_PREFIX}*.json")):
            try:
                payload = self._read(path)
            except CheckpointError:
                payload = None
            stale = (
                superseded
                or payload is None
                or (
                    plan_hash is not None
                    and payload.get("plan") != plan_hash
                )
                or (shards is not None and payload.get("shards") != shards)
            )
            if stale:
                path.unlink()
                pruned["partials"] += 1
        if superseded:
            for path in self.path.glob(f"{self.SEGMENT_PREFIX}*.json"):
                path.unlink()
                pruned["segments"] += 1
        return pruned

    # -- failure provenance ---------------------------------------------------

    def record_failure(self, stage: str, error: BaseException) -> None:
        self._write(
            self.path / self.FAILURE,
            {
                "stage": stage,
                "error": type(error).__name__,
                "message": str(error),
            },
        )

    def last_failure(self) -> Optional[Dict[str, Any]]:
        path = self.path / self.FAILURE
        if not path.exists():
            return None
        return self._read(path)

    def clear_failure(self) -> None:
        path = self.path / self.FAILURE
        if path.exists():
            path.unlink()

    # -- raw io ---------------------------------------------------------------

    @staticmethod
    def _read(path: Path) -> Dict[str, Any]:
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable checkpoint file {path}: {error}"
            ) from error

    def _write(self, path: Path, payload: Dict[str, Any]) -> None:
        tmp = path.with_suffix(".tmp")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1)
                handle.write("\n")
            os.replace(tmp, path)
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint file {path}: {error}"
            ) from error
