"""The delegation tree: root and TLD registries.

Builds the authoritative hierarchy the recursive resolvers walk: a root
zone served at well-known addresses, one zone per TLD, and registration /
delegation operations that install NS (+ glue) records at the parent.

A domain is *delegated* to a hosting provider when its TLD zone's NS
records point at that provider's nameservers; an *undelegated record* is
served by a provider for a domain whose delegation points elsewhere (or
nowhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dns.name import Name, name
from ..dns.rdata import A, NS, RRType, SOA
from ..dns.server import AuthoritativeServer
from ..dns.zone import Zone
from ..net.network import SimulatedInternet


class RegistryError(ValueError):
    """Raised for invalid registration or delegation operations."""


#: (nameserver hostname, nameserver IPv4) pairs used in delegations.
NameserverSet = Sequence[Tuple[Union[str, Name], str]]


@dataclass
class Registration:
    """One registered domain and its current delegation."""

    domain: Name
    registrant: str
    nameservers: List[Tuple[Name, str]] = field(default_factory=list)
    registered_at: float = 0.0

    @property
    def is_delegated(self) -> bool:
        return bool(self.nameservers)


class DnsRoot:
    """The root of the simulated DNS: root servers plus TLD registries.

    One instance owns the root zone, creates TLD zones and their servers
    on demand, and applies delegations.  Resolvers bootstrap from
    :attr:`root_addresses`.
    """

    ROOT_SERVER_IPS = ("198.41.0.4", "198.41.0.5")

    def __init__(self, network: SimulatedInternet):
        self.network = network
        self._root_zone = Zone(".")
        self._root_zone.add(
            name("."),
            SOA(
                mname=name("a.root-servers.net"),
                rname=name("nstld.verisign-grs.com"),
                serial=1,
            ),
        )
        self._root_server = AuthoritativeServer("a.root-servers.net")
        self._root_server.load_zone(self._root_zone)
        for address in self.ROOT_SERVER_IPS:
            network.register_dns_host(address, self._root_server)
            self._root_server.addresses.append(address)
        self._tld_servers: Dict[Name, AuthoritativeServer] = {}
        self._tld_zones: Dict[Name, Zone] = {}
        self._tld_addresses: Dict[Name, str] = {}
        self._registrations: Dict[Name, Registration] = {}
        self._next_tld_host = 0

    # -- root hints --------------------------------------------------------

    @property
    def root_addresses(self) -> List[str]:
        """Addresses for resolver root hints."""
        return list(self.ROOT_SERVER_IPS)

    # -- TLD management ------------------------------------------------------

    def ensure_tld(self, tld: Union[str, Name]) -> Zone:
        """Create (or return) the zone and server for ``tld``.

        The root zone gains the delegation NS + glue.
        """
        tld = name(tld)
        if len(tld) != 1:
            raise RegistryError(f"a TLD has exactly one label: {tld}")
        existing = self._tld_zones.get(tld)
        if existing is not None:
            return existing
        ns_name = name(f"ns1.nic.{tld}")
        address = self._allocate_tld_address()
        zone = Zone(tld)
        zone.add(
            tld,
            SOA(mname=ns_name, rname=name(f"hostmaster.nic.{tld}"), serial=1),
        )
        zone.add(tld, NS(ns_name))
        zone.add(ns_name, A(address))
        server = AuthoritativeServer(ns_name)
        server.load_zone(zone)
        self.network.register_dns_host(address, server)
        server.addresses.append(address)
        self._tld_zones[tld] = zone
        self._tld_servers[tld] = server
        self._tld_addresses[tld] = address
        # Delegate the TLD from the root.
        self._root_zone.add(tld, NS(ns_name))
        self._root_zone.add(ns_name, A(address))
        return zone

    def _allocate_tld_address(self) -> str:
        index = self._next_tld_host
        self._next_tld_host += 1
        if index >= 250 * 250:
            raise RegistryError("TLD address space exhausted")
        return f"192.5.{index // 250}.{index % 250 + 1}"

    def tlds(self) -> List[Name]:
        return sorted(self._tld_zones)

    def tld_zone(self, tld: Union[str, Name]) -> Zone:
        tld = name(tld)
        zone = self._tld_zones.get(tld)
        if zone is None:
            raise RegistryError(f"unknown TLD {tld}")
        return zone

    # -- registration / delegation --------------------------------------------

    def _parent_zone_for(self, domain: Name) -> Zone:
        """The TLD (or deeper public-suffix) zone that delegates ``domain``."""
        if len(domain) < 2:
            raise RegistryError(f"cannot register the TLD {domain} itself")
        tld = domain.tld()
        assert tld is not None
        return self.ensure_tld(tld)

    def register(
        self,
        domain: Union[str, Name],
        registrant: str,
    ) -> Registration:
        """Register ``domain`` (no delegation yet)."""
        domain = name(domain)
        if domain in self._registrations:
            raise RegistryError(f"{domain} is already registered")
        self._parent_zone_for(domain)
        registration = Registration(
            domain=domain,
            registrant=registrant,
            registered_at=self.network.now,
        )
        self._registrations[domain] = registration
        return registration

    def is_registered(self, domain: Union[str, Name]) -> bool:
        return name(domain) in self._registrations

    def registration(self, domain: Union[str, Name]) -> Optional[Registration]:
        return self._registrations.get(name(domain))

    def delegate(
        self,
        domain: Union[str, Name],
        nameservers: NameserverSet,
    ) -> Registration:
        """Point ``domain``'s NS records at ``nameservers`` (with glue).

        Replaces any existing delegation; this is what a real registrant
        does at their registrar when switching hosting providers.
        """
        domain = name(domain)
        registration = self._registrations.get(domain)
        if registration is None:
            raise RegistryError(f"{domain} is not registered")
        parent = self._parent_zone_for(domain)
        self._remove_delegation_records(parent, domain, registration)
        resolved: List[Tuple[Name, str]] = []
        for ns_host, address in nameservers:
            ns_name = name(ns_host)
            parent.add(domain, NS(ns_name))
            if ns_name.is_subdomain_of(parent.origin):
                parent.add(ns_name, A(address))
            resolved.append((ns_name, address))
        registration.nameservers = resolved
        return registration

    def undelegate(self, domain: Union[str, Name]) -> None:
        """Remove ``domain``'s delegation (registration remains)."""
        domain = name(domain)
        registration = self._registrations.get(domain)
        if registration is None:
            raise RegistryError(f"{domain} is not registered")
        parent = self._parent_zone_for(domain)
        self._remove_delegation_records(parent, domain, registration)
        registration.nameservers = []

    def _remove_delegation_records(
        self, parent: Zone, domain: Name, registration: Registration
    ) -> None:
        parent.remove(domain, RRType.NS)
        for ns_name, _ in registration.nameservers:
            if ns_name.is_subdomain_of(parent.origin):
                parent.remove(ns_name, RRType.A)

    def delegation_of(self, domain: Union[str, Name]) -> List[Name]:
        """The NS targets currently delegated for ``domain`` (may be [])."""
        registration = self._registrations.get(name(domain))
        if registration is None:
            return []
        return [ns_name for ns_name, _ in registration.nameservers]

    def delegated_addresses(self, domain: Union[str, Name]) -> List[str]:
        """Addresses of the delegated nameservers for ``domain``."""
        registration = self._registrations.get(name(domain))
        if registration is None:
            return []
        return [address for _, address in registration.nameservers]

    def registrations(self) -> List[Registration]:
        return list(self._registrations.values())

    # -- provider wiring -----------------------------------------------------

    def connect_provider(self, provider: "object") -> Registration:
        """Make a hosting provider's own NS domain resolvable.

        Registers the provider's ``ns_domain``, serves a zone with A
        records for every pool nameserver from the pool itself, and
        delegates the domain (with glue) — so glueless delegations to
        e.g. ``ns1.cloudflare-ns.com`` resolve like they do on the real
        internet.

        ``provider`` is duck-typed (needs ``ns_domain`` and ``pool``) to
        keep this module independent of :mod:`repro.hosting.provider`.
        """
        ns_domain: Name = provider.ns_domain  # type: ignore[attr-defined]
        pool = provider.pool  # type: ignore[attr-defined]
        zone = Zone(ns_domain)
        zone.add(
            ns_domain,
            SOA(
                mname=pool[0].hostname,
                rname=ns_domain.prepend("hostmaster"),
                serial=1,
            ),
        )
        for entry in pool:
            zone.add(ns_domain, NS(entry.hostname))
            zone.add(entry.hostname, A(entry.address))
        for entry in pool:
            entry.server.load_zone(zone)
        if not self.is_registered(ns_domain):
            self.register(ns_domain, registrant=str(ns_domain))
        return self.delegate(
            ns_domain,
            [(entry.hostname, entry.address) for entry in pool],
        )
