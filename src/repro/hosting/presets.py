"""Preset hosting providers modeled on the paper's Appendix C (Table 2).

Each builder returns a :class:`~repro.hosting.provider.HostingProvider`
whose policy matches the strategy the authors measured for that vendor in
2022/2023, before disclosure.  ``post_disclosure`` variants model the fixes
reported in §6 (DNSPod's full delegation check, Alibaba's partial TXT
challenge, Cloudflare's expanded blacklist).

`make_longtail_provider` generates the ~400-provider tail with policy
mixes drawn from the same distribution, so large scenarios have realistic
diversity.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..net.address import AddressPool, PrefixPlanner
from ..net.network import SimulatedInternet
from .policy import HostingPolicy, NsAllocation, VerificationMode
from .provider import HostingProvider

#: Extremely popular domains providers commonly blacklist.
COMMON_RESERVED = frozenset({"google.com", "facebook.com", "microsoft.com"})

#: Cloudflare's expanded blacklist after the paper's disclosure.
EXPANDED_RESERVED = COMMON_RESERVED | frozenset(
    {
        "amazon.com",
        "apple.com",
        "github.com",
        "gitlab.com",
        "ibm.com",
        "netflix.com",
        "speedtest.net",
        "twitter.com",
        "youtube.com",
    }
)


def _provider(
    provider_name: str,
    policy: HostingPolicy,
    network: SimulatedInternet,
    pool: AddressPool,
    ns_domain: str,
    seed: int = 0,
) -> HostingProvider:
    return HostingProvider(
        provider_name,
        policy,
        network,
        pool,
        ns_domain=ns_domain,
        rng=random.Random(seed),
    )


def make_cloudflare(
    network: SimulatedInternet,
    pool: AddressPool,
    post_disclosure: bool = False,
) -> HostingProvider:
    """Cloudflare: account-fixed NS pairs, paid subdomains & full-pool sync.

    Table 2 row: account-fixed / no verification / no unregistered /
    subdomain (paid) / SLD / eTLD / no single-user dup / cross-user dup /
    has retrieval.
    """
    policy = HostingPolicy(
        verification=VerificationMode.NOTIFY_ONLY,
        ns_allocation=NsAllocation.ACCOUNT_FIXED,
        nameservers_per_zone=2,
        pool_size=24,
        allows_unregistered=False,
        allows_subdomains=True,
        subdomains_require_payment=True,
        allows_etld=True,
        reserved=EXPANDED_RESERVED if post_disclosure else COMMON_RESERVED,
        duplicates_cross_user=True,
        supports_retrieval=True,
        paid_sync_all_nameservers=True,
        serves_fleet_wide=True,
    )
    return _provider(
        "Cloudflare", policy, network, pool, "cloudflare-ns.com", seed=11
    )


def make_amazon(
    network: SimulatedInternet,
    pool: AddressPool,
    pool_size: int = 40,
) -> HostingProvider:
    """Amazon Route 53: 4 random nameservers per zone from a large pool.

    Table 2 row: random / no verification / unregistered ✔ / subdomain ✔ /
    SLD ✔ / eTLD ✔ / dup single ✔ / dup cross ✔ / no retrieval ✔.
    The pool is exhaustible via repeated hosting (the Appendix C attack).
    """
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.RANDOM,
        nameservers_per_zone=4,
        pool_size=pool_size,
        allows_unregistered=True,
        allows_subdomains=True,
        allows_etld=True,
        reserved=COMMON_RESERVED,
        duplicates_single_user=True,
        duplicates_cross_user=True,
        supports_retrieval=False,
        exhaustible_pool=True,
    )
    return _provider(
        "Amazon", policy, network, pool, "awsdns-pool.net", seed=12
    )


def make_cloudns(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """ClouDNS: global-fixed, very permissive, protective records for
    unhosted names (the warning-page behaviour URHunter must learn)."""
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        nameservers_per_zone=4,
        pool_size=8,
        allows_unregistered=True,
        allows_subdomains=True,
        allows_etld=True,
        reserved=frozenset(),
        supports_retrieval=False,
        protective_records=True,
    )
    return _provider(
        "ClouDNS", policy, network, pool, "cloudns-dns.net", seed=13
    )


def make_godaddy(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """GoDaddy: global-fixed pair, subdomains allowed, no retrieval."""
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        nameservers_per_zone=2,
        pool_size=4,
        allows_unregistered=False,
        allows_subdomains=True,
        allows_etld=True,
        reserved=COMMON_RESERVED,
        supports_retrieval=False,
    )
    return _provider(
        "Godaddy", policy, network, pool, "domaincontrol.com", seed=14
    )


def make_tencent(
    network: SimulatedInternet,
    pool: AddressPool,
    post_disclosure: bool = False,
) -> HostingProvider:
    """Tencent Cloud (DNSPod): account-fixed; post-disclosure it fully
    adopted mitigation option (1), verifying TLD delegation."""
    policy = HostingPolicy(
        verification=(
            VerificationMode.REQUIRE_DELEGATION
            if post_disclosure
            else VerificationMode.NOTIFY_ONLY
        ),
        ns_allocation=NsAllocation.ACCOUNT_FIXED,
        nameservers_per_zone=2,
        pool_size=16,
        allows_unregistered=False,
        allows_subdomains=False,
        allows_etld=True,
        reserved=COMMON_RESERVED,
        duplicates_cross_user=True,
        supports_retrieval=True,
    )
    return _provider(
        "Tencent Cloud", policy, network, pool, "dnspod-ns.net", seed=15
    )


def make_alibaba(
    network: SimulatedInternet,
    pool: AddressPool,
    post_disclosure: bool = False,
) -> HostingProvider:
    """Alibaba Cloud: global-fixed announced pair, but a wider pool also
    answers (the hidden hichina.com servers); post-disclosure it partially
    adopted the TXT-challenge mitigation."""
    policy = HostingPolicy(
        verification=(
            VerificationMode.REQUIRE_TXT_CHALLENGE
            if post_disclosure
            else VerificationMode.NOTIFY_ONLY
        ),
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        nameservers_per_zone=2,
        pool_size=8,
        allows_unregistered=False,
        allows_subdomains=True,
        allows_etld=True,
        reserved=COMMON_RESERVED,
        supports_retrieval=True,
        # The undocumented dns[1-32].hichina.com-style servers answer for
        # hosted zones too.
        serves_fleet_wide=True,
    )
    return _provider(
        "Alibaba Cloud", policy, network, pool, "alidns-pool.com", seed=16
    )


def make_baidu(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """Baidu Cloud: global-fixed, no subdomains, no unregistered."""
    policy = HostingPolicy(
        verification=VerificationMode.NOTIFY_ONLY,
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        nameservers_per_zone=2,
        pool_size=4,
        allows_unregistered=False,
        allows_subdomains=False,
        allows_etld=True,
        reserved=COMMON_RESERVED,
        supports_retrieval=True,
    )
    return _provider(
        "Baidu Cloud", policy, network, pool, "bdydns-pool.com", seed=17
    )


def make_namecheap(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """Namecheap: host of the masquerading-SPF case study's records."""
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        # Hosted zones ride the whole 8-server fleet; with CSC's 3 this
        # yields the 11 nameservers of the masquerading-SPF case study.
        nameservers_per_zone=8,
        pool_size=8,
        allows_subdomains=True,
        allows_etld=True,
        supports_retrieval=False,
    )
    return _provider(
        "Namecheap", policy, network, pool, "registrar-servers.com", seed=18
    )


def make_csc(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """CSC: the second provider in the masquerading-SPF case study."""
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        nameservers_per_zone=3,
        pool_size=6,
        allows_subdomains=True,
        allows_etld=True,
        supports_retrieval=False,
    )
    return _provider(
        "CSC", policy, network, pool, "cscdns-pool.net", seed=19
    )


def make_akamai(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """Akamai Edge DNS (Figure 2's #4 provider by UR count)."""
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.ACCOUNT_FIXED,
        nameservers_per_zone=3,
        pool_size=12,
        allows_subdomains=True,
        allows_etld=False,
        reserved=COMMON_RESERVED,
        supports_retrieval=False,
        serves_fleet_wide=True,
    )
    return _provider(
        "Akamai", policy, network, pool, "akam-pool.net", seed=20
    )


def make_nhn(
    network: SimulatedInternet, pool: AddressPool
) -> HostingProvider:
    """NHN Cloud (Figure 2's #5 provider by UR count)."""
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=NsAllocation.GLOBAL_FIXED,
        nameservers_per_zone=2,
        pool_size=4,
        allows_subdomains=False,
        allows_etld=False,
        supports_retrieval=False,
        protective_records=True,
    )
    return _provider(
        "NHN Cloud", policy, network, pool, "nhn-dnsplus.com", seed=21
    )


#: Builders for the headline providers, keyed by display name.
HEADLINE_BUILDERS = {
    "Cloudflare": make_cloudflare,
    "Amazon": make_amazon,
    "ClouDNS": make_cloudns,
    "Godaddy": make_godaddy,
    "Tencent Cloud": make_tencent,
    "Alibaba Cloud": make_alibaba,
    "Baidu Cloud": make_baidu,
    "Namecheap": make_namecheap,
    "CSC": make_csc,
    "Akamai": make_akamai,
    "NHN Cloud": make_nhn,
}

#: The seven providers probed in Table 2, in the paper's order.
TABLE2_PROVIDERS = (
    "Alibaba Cloud",
    "Amazon",
    "Baidu Cloud",
    "ClouDNS",
    "Cloudflare",
    "Godaddy",
    "Tencent Cloud",
)


def make_longtail_provider(
    index: int,
    network: SimulatedInternet,
    pool: AddressPool,
    rng: random.Random,
) -> HostingProvider:
    """One of the ~400 long-tail providers with a sampled policy mix."""
    allocation = rng.choices(
        [
            NsAllocation.GLOBAL_FIXED,
            NsAllocation.ACCOUNT_FIXED,
            NsAllocation.RANDOM,
        ],
        weights=[0.6, 0.25, 0.15],
    )[0]
    per_zone = 2 if allocation is not NsAllocation.RANDOM else 4
    pool_size = {
        NsAllocation.GLOBAL_FIXED: rng.choice([2, 3, 4]),
        NsAllocation.ACCOUNT_FIXED: rng.choice([6, 8, 12]),
        NsAllocation.RANDOM: rng.choice([12, 16, 20]),
    }[allocation]
    pool_size = max(pool_size, per_zone)
    policy = HostingPolicy(
        verification=VerificationMode.NONE,
        ns_allocation=allocation,
        nameservers_per_zone=per_zone,
        pool_size=pool_size,
        allows_unregistered=rng.random() < 0.3,
        allows_subdomains=rng.random() < 0.5,
        allows_etld=rng.random() < 0.7,
        reserved=COMMON_RESERVED if rng.random() < 0.5 else frozenset(),
        duplicates_cross_user=rng.random() < 0.3,
        supports_retrieval=rng.random() < 0.4,
        protective_records=rng.random() < 0.05,
    )
    return HostingProvider(
        f"Provider-{index:03d}",
        policy,
        network,
        pool,
        ns_domain=f"ns-pool-{index:03d}.net",
        rng=random.Random(rng.getrandbits(32)),
    )


def build_headline_providers(
    network: SimulatedInternet,
    planner: PrefixPlanner,
    post_disclosure: bool = False,
    names: Optional[List[str]] = None,
) -> Dict[str, HostingProvider]:
    """Instantiate the named providers, each with its own address pool."""
    providers: Dict[str, HostingProvider] = {}
    for display_name in names or list(HEADLINE_BUILDERS):
        builder = HEADLINE_BUILDERS[display_name]
        pool = planner.pool(display_name)
        if display_name in ("Cloudflare", "Tencent Cloud", "Alibaba Cloud"):
            providers[display_name] = builder(
                network, pool, post_disclosure=post_disclosure
            )
        else:
            providers[display_name] = builder(network, pool)
    return providers
