"""DNS hosting providers.

A :class:`HostingProvider` owns a pool of nameservers (each an
:class:`~repro.dns.server.AuthoritativeServer` registered on the simulated
internet), accepts customer accounts, and hosts zones subject to its
:class:`~repro.hosting.policy.HostingPolicy`.

Because providers do not verify ownership (the paper's core finding), a
zone hosted here is served regardless of whether the domain's real
delegation points at the provider — that's an undelegated record.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..dns.name import Name, name
from ..dns.psl import DEFAULT_PSL, PublicSuffixList
from ..dns.rdata import A, NS, SOA, TXT, RRType
from ..dns.server import AuthoritativeServer, UnhostedPolicy
from ..dns.zone import Zone
from ..net.address import AddressPool
from ..net.network import SimulatedInternet
from .policy import HostingPolicy, NsAllocation, VerificationMode


class HostingError(RuntimeError):
    """Raised when a hosting operation violates provider policy."""


@dataclass
class Account:
    """A customer (or attacker) account at a provider."""

    account_id: str
    paid: bool = False
    #: nameservers pinned to this account under ACCOUNT_FIXED allocation
    fixed_nameservers: List["Nameserver"] = field(default_factory=list)


@dataclass
class Nameserver:
    """One nameserver in a provider's pool."""

    hostname: Name
    address: str
    server: AuthoritativeServer


@dataclass
class HostedZone:
    """A zone hosted at a provider by some account."""

    zone: Zone
    account: Account
    nameservers: List[Nameserver]
    created_at: float
    verified: bool = False
    zone_id: str = ""

    @property
    def domain(self) -> Name:
        return self.zone.origin

    def nameserver_names(self) -> List[Name]:
        return [entry.hostname for entry in self.nameservers]

    def nameserver_addresses(self) -> List[str]:
        return [entry.address for entry in self.nameservers]


#: Returns the NS target names the TLD currently delegates for a domain.
DelegationLookup = Callable[[Name], List[Name]]
#: Returns TXT record values observed in the live (delegated) zone.
LiveTxtLookup = Callable[[Name], List[str]]


class HostingProvider:
    """A DNS hosting service with a configurable policy.

    Construction wires the nameserver fleet into the network; afterwards
    the portal-style methods (:meth:`create_account`, :meth:`host_zone`,
    :meth:`add_record`, ...) drive everything.
    """

    def __init__(
        self,
        provider_name: str,
        policy: HostingPolicy,
        network: SimulatedInternet,
        address_pool: AddressPool,
        ns_domain: Optional[str] = None,
        psl: PublicSuffixList = DEFAULT_PSL,
        rng: Optional[random.Random] = None,
        protective_ip: Optional[str] = None,
    ):
        self.name = provider_name
        self.policy = policy
        self.network = network
        self.psl = psl
        self._rng = rng or random.Random(0)
        self._accounts: Dict[str, Account] = {}
        self._zones: List[HostedZone] = []
        self._account_counter = itertools.count(1)
        self._zone_counter = itertools.count(1)
        self.delegation_lookup: Optional[DelegationLookup] = None
        self.live_txt_lookup: Optional[LiveTxtLookup] = None
        self._txt_challenges: Dict[Tuple[str, Name], str] = {}

        ns_domain = ns_domain or _slugify(provider_name) + "-dns.com"
        self.ns_domain = name(ns_domain)
        self.protective_ip = protective_ip
        self.pool: List[Nameserver] = []
        for index in range(policy.pool_size):
            hostname = self.ns_domain.prepend(f"ns{index + 1}")
            address = address_pool.allocate()
            server = AuthoritativeServer(hostname)
            if policy.protective_records:
                server.unhosted_policy = UnhostedPolicy.PROTECTIVE
                warning_ip = protective_ip or address_pool.allocate()
                if protective_ip is None:
                    protective_ip = warning_ip
                    self.protective_ip = warning_ip
                server.protective_records = [
                    (RRType.A, A(warning_ip)),
                    (
                        RRType.TXT,
                        TXT.from_value(
                            f"v=parked; this domain is not hosted at "
                            f"{provider_name}"
                        ),
                    ),
                ]
            network.register_dns_host(address, server)
            server.addresses.append(address)
            self.pool.append(Nameserver(hostname, address, server))

    # -- account management ------------------------------------------------

    def create_account(self, paid: bool = False) -> Account:
        """Open a customer account (no identity checks, as in the wild)."""
        account_id = f"{_slugify(self.name)}-acct-{next(self._account_counter)}"
        account = Account(account_id=account_id, paid=paid)
        if self.policy.ns_allocation is NsAllocation.ACCOUNT_FIXED:
            account.fixed_nameservers = self._pick_account_set(account_id)
        self._accounts[account_id] = account
        return account

    def _pick_account_set(self, account_id: str) -> List[Nameserver]:
        count = self.policy.nameservers_per_zone
        start = (len(self._accounts) * count) % len(self.pool)
        picked = [
            self.pool[(start + offset) % len(self.pool)]
            for offset in range(count)
        ]
        return picked

    # -- hosting -------------------------------------------------------------

    def host_zone(
        self,
        account: Account,
        domain: Union[str, Name],
        is_registered: Optional[bool] = None,
    ) -> HostedZone:
        """Host a zone for ``domain`` under ``account``.

        Enforces the policy: supported domain types, the reserved list,
        duplicate-hosting rules, and (for mitigated providers) ownership
        verification.  Raises :class:`HostingError` when refused.
        """
        domain = name(domain)
        self._check_domain_supported(account, domain, is_registered)
        self._check_duplicates(account, domain)
        nameservers = self._allocate_nameservers(account, domain)
        zone = Zone(domain)
        zone.add(
            domain,
            SOA(
                mname=nameservers[0].hostname,
                rname=self.ns_domain.prepend("hostmaster"),
                serial=1,
            ),
        )
        for entry in nameservers:
            zone.add(domain, NS(entry.hostname))
        hosted = HostedZone(
            zone=zone,
            account=account,
            nameservers=nameservers,
            created_at=self.network.now,
            zone_id=f"zone-{next(self._zone_counter)}",
        )
        verified = self._verify_ownership(account, hosted)
        hosted.verified = verified
        if self._should_serve(hosted):
            self._load_everywhere(hosted)
        self._zones.append(hosted)
        return hosted

    def _check_domain_supported(
        self,
        account: Account,
        domain: Name,
        is_registered: Optional[bool],
    ) -> None:
        if self.policy.is_reserved(domain):
            raise HostingError(
                f"{self.name} refuses reserved domain {domain}"
            )
        if self.psl.is_public_suffix(domain):
            if not self.policy.allows_etld:
                raise HostingError(f"{self.name} does not host eTLDs")
            return
        registrable = self.psl.registrable_domain(domain)
        if registrable is None:
            raise HostingError(f"{domain} has no registrable form")
        if domain == registrable:
            if not self.policy.allows_sld:
                raise HostingError(f"{self.name} does not host SLDs")
        else:
            if not self.policy.allows_subdomains:
                raise HostingError(f"{self.name} does not host subdomains")
            if self.policy.subdomains_require_payment and not account.paid:
                raise HostingError(
                    f"{self.name} hosts subdomains only for paid accounts"
                )
        if is_registered is False and not self.policy.allows_unregistered:
            raise HostingError(
                f"{self.name} does not host unregistered domains"
            )

    def _check_duplicates(self, account: Account, domain: Name) -> None:
        existing = [entry for entry in self._zones if entry.domain == domain]
        if not existing:
            return
        same_account = [
            entry
            for entry in existing
            if entry.account.account_id == account.account_id
        ]
        if same_account and not self.policy.duplicates_single_user:
            raise HostingError(
                f"{self.name}: account already hosts {domain}"
            )
        if (
            len(same_account) < len(existing)
            and not self.policy.duplicates_cross_user
        ):
            raise HostingError(
                f"{self.name}: {domain} is already hosted by another user"
            )
        if (
            self.policy.ns_allocation is NsAllocation.RANDOM
            and self.policy.exhaustible_pool
        ):
            used = {
                entry.address
                for hosted in existing
                for entry in hosted.nameservers
            }
            free = len(self.pool) - len(used)
            if free < self.policy.nameservers_per_zone:
                raise HostingError(
                    f"{self.name}: nameserver pool exhausted for {domain}"
                )

    def _allocate_nameservers(
        self, account: Account, domain: Name
    ) -> List[Nameserver]:
        policy = self.policy
        if policy.ns_allocation is NsAllocation.GLOBAL_FIXED:
            return self.pool[: policy.nameservers_per_zone]
        if policy.ns_allocation is NsAllocation.ACCOUNT_FIXED:
            chosen = list(account.fixed_nameservers)
            # Ensure distinct sets across users for the same domain.
            conflicting = {
                entry.address
                for hosted in self._zones
                if hosted.domain == domain
                and hosted.account.account_id != account.account_id
                for entry in hosted.nameservers
            }
            if any(entry.address in conflicting for entry in chosen):
                replacement = [
                    entry
                    for entry in self.pool
                    if entry.address not in conflicting
                ]
                if len(replacement) < policy.nameservers_per_zone:
                    raise HostingError(
                        f"{self.name}: no disjoint nameserver set left "
                        f"for {domain}"
                    )
                chosen = replacement[: policy.nameservers_per_zone]
            return chosen
        # RANDOM: draw without replacement, avoiding sets already used
        # for this domain when the pool is exhaustible.
        exclude = set()
        if policy.exhaustible_pool:
            exclude = {
                entry.address
                for hosted in self._zones
                if hosted.domain == domain
                for entry in hosted.nameservers
            }
        candidates = [
            entry for entry in self.pool if entry.address not in exclude
        ]
        if len(candidates) < policy.nameservers_per_zone:
            raise HostingError(
                f"{self.name}: nameserver pool exhausted for {domain}"
            )
        return self._rng.sample(candidates, policy.nameservers_per_zone)

    # -- verification ---------------------------------------------------------

    def _verify_ownership(self, account: Account, hosted: HostedZone) -> bool:
        mode = self.policy.verification
        if mode in (VerificationMode.NONE, VerificationMode.NOTIFY_ONLY):
            return False  # never verified, but serving is unaffected
        if mode is VerificationMode.REQUIRE_DELEGATION:
            return self._delegation_points_here(hosted)
        if mode is VerificationMode.REQUIRE_TXT_CHALLENGE:
            return self._txt_challenge_satisfied(account, hosted)
        return False

    def _delegation_points_here(self, hosted: HostedZone) -> bool:
        if self.delegation_lookup is None:
            return False
        delegated = set(self.delegation_lookup(hosted.domain))
        pool_names = {entry.hostname for entry in self.pool}
        return bool(delegated) and delegated <= pool_names

    def issue_txt_challenge(
        self, account: Account, domain: Union[str, Name]
    ) -> str:
        """Issue the random TXT token for challenge-based verification."""
        domain = name(domain)
        token = f"{_slugify(self.name)}-verify-{self._rng.getrandbits(64):016x}"
        self._txt_challenges[(account.account_id, domain)] = token
        return token

    def _txt_challenge_satisfied(
        self, account: Account, hosted: HostedZone
    ) -> bool:
        token = self._txt_challenges.get(
            (account.account_id, hosted.domain)
        )
        if token is None or self.live_txt_lookup is None:
            return False
        live_values = self.live_txt_lookup(hosted.domain)
        return any(token in value for value in live_values)

    def recheck_verification(self, hosted: HostedZone) -> bool:
        """Re-run verification (e.g. after the user fixes delegation)."""
        hosted.verified = self._verify_ownership(hosted.account, hosted)
        if self._should_serve(hosted):
            self._load_everywhere(hosted)
        else:
            self._unload_everywhere(hosted)
        return hosted.verified

    def _should_serve(self, hosted: HostedZone) -> bool:
        if self.policy.verification.blocks_urs:
            return hosted.verified
        return True

    # -- record management ------------------------------------------------------

    def add_record(
        self,
        hosted: HostedZone,
        owner: Union[str, Name],
        rrtype: Union[int, str],
        text: str,
        ttl: int = 300,
    ) -> None:
        """Add a record through the portal (zone serial bumps, servers see it)."""
        hosted.zone.add_text(owner, rrtype, text, ttl)

    def remove_record(
        self,
        hosted: HostedZone,
        owner: Union[str, Name],
        rrtype: Optional[int] = None,
    ) -> int:
        return hosted.zone.remove(owner, rrtype)

    def export_zone(self, hosted: HostedZone) -> str:
        """Export a hosted zone in master-file format (portal download)."""
        from ..dns.zonefile import render_zone

        return render_zone(hosted.zone)

    def import_zone(
        self,
        account: Account,
        text: str,
        is_registered: Optional[bool] = None,
    ) -> HostedZone:
        """Host a zone from master-file text (portal upload).

        The file's ``$ORIGIN`` names the domain; SOA and NS records in
        the file are ignored because the provider manages its own apex
        (exactly what real portals do on import).
        """
        from ..dns.rdata import RRType
        from ..dns.zonefile import parse_zone

        parsed = parse_zone(text)
        hosted = self.host_zone(
            account, parsed.origin, is_registered=is_registered
        )
        for record in parsed.records():
            if record.rrtype in (RRType.SOA, RRType.NS):
                continue
            hosted.zone.add(record.owner, record.rdata, record.ttl)
        return hosted

    def sync_all_nameservers(self, hosted: HostedZone) -> None:
        """Serve ``hosted`` from every pool nameserver (paid feature)."""
        if not self.policy.paid_sync_all_nameservers:
            raise HostingError(f"{self.name} does not offer full-pool sync")
        if not hosted.account.paid:
            raise HostingError("full-pool sync requires a paid account")
        hosted.nameservers = list(self.pool)
        self._load_everywhere(hosted)

    def delete_zone(self, hosted: HostedZone) -> None:
        """Remove a hosted zone entirely."""
        self._unload_everywhere(hosted)
        if hosted in self._zones:
            self._zones.remove(hosted)

    def retrieve_domain(
        self, claimant: Account, domain: Union[str, Name]
    ) -> List[HostedZone]:
        """Verified-owner retrieval: evict other accounts' zones for ``domain``.

        Only available when the policy supports retrieval and the claimant
        proves control via delegation or TXT challenge.  Returns the zones
        evicted.
        """
        domain = name(domain)
        if not self.policy.supports_retrieval:
            raise HostingError(f"{self.name} has no retrieval mechanism")
        proven = False
        if self.delegation_lookup is not None:
            delegated = self.delegation_lookup(domain)
            pool_names = {entry.hostname for entry in self.pool}
            proven = bool(delegated) and set(delegated) <= pool_names
        if not proven and self.live_txt_lookup is not None:
            token = self._txt_challenges.get((claimant.account_id, domain))
            if token is not None:
                proven = any(
                    token in value
                    for value in self.live_txt_lookup(domain)
                )
        if not proven:
            raise HostingError(
                f"retrieval of {domain} requires proof of control"
            )
        evicted = [
            hosted
            for hosted in self._zones
            if hosted.domain == domain
            and hosted.account.account_id != claimant.account_id
        ]
        for hosted in evicted:
            self.delete_zone(hosted)
        return evicted

    # -- zone loading -------------------------------------------------------------

    def _load_everywhere(self, hosted: HostedZone) -> None:
        if not self.policy.serves_fleet_wide:
            for entry in hosted.nameservers:
                entry.server.load_zone(hosted.zone)
            return
        # Fleet-wide serving: every pool server answers for the zone, but
        # a server assigned to *another account's* zone for the same
        # domain keeps that zone (duplicate cross-user hosting must not
        # let a later customer shadow the earlier one's assigned set).
        assigned = set(id(entry.server) for entry in hosted.nameservers)
        for entry in self.pool:
            current = entry.server.zone_at(hosted.domain)
            if current is not None and current is not hosted.zone:
                other_assigned = any(
                    other.zone is current and entry in other.nameservers
                    for other in self._zones
                    if other is not hosted
                )
                if other_assigned and id(entry.server) not in assigned:
                    continue
            entry.server.load_zone(hosted.zone)

    def _unload_everywhere(self, hosted: HostedZone) -> None:
        targets = (
            self.pool if self.policy.serves_fleet_wide else hosted.nameservers
        )
        for entry in targets:
            other_zones = [
                other
                for other in self._zones
                if other is not hosted
                and other.domain == hosted.domain
                and (
                    self.policy.serves_fleet_wide
                    or entry in other.nameservers
                )
            ]
            if not other_zones:
                entry.server.unload_zone(hosted.domain)
            else:
                entry.server.load_zone(other_zones[-1].zone)

    # -- introspection -------------------------------------------------------------

    def hosted_zones(
        self, domain: Optional[Union[str, Name]] = None
    ) -> List[HostedZone]:
        if domain is None:
            return list(self._zones)
        target = name(domain)
        return [entry for entry in self._zones if entry.domain == target]

    def nameserver_addresses(self) -> List[str]:
        return [entry.address for entry in self.pool]

    def nameserver_names(self) -> List[Name]:
        return [entry.hostname for entry in self.pool]

    def nameserver_set_for_delegation(
        self, hosted: HostedZone
    ) -> Sequence[Tuple[Name, str]]:
        """The (hostname, address) pairs a customer configures at the TLD."""
        return [
            (entry.hostname, entry.address) for entry in hosted.nameservers
        ]

    def __repr__(self) -> str:
        return (
            f"HostingProvider({self.name!r}, pool={len(self.pool)}, "
            f"zones={len(self._zones)})"
        )


def _slugify(value: str) -> str:
    return "".join(
        char.lower() if char.isalnum() else "-" for char in value
    ).strip("-").replace("--", "-")
