"""Hosting-provider policy model.

Appendix C of the paper probes seven providers along four axes: domain
ownership verification, nameserver allocation, supported domain types, and
duplicate-hosting behaviour.  :class:`HostingPolicy` captures all of them
so one provider implementation can express every observed strategy — and
the post-disclosure mitigations (§6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Union

from ..dns.name import Name, name


class NsAllocation(enum.Enum):
    """How a provider assigns nameservers to hosted zones.

    * ``GLOBAL_FIXED`` — every customer shares one NS set (GoDaddy, Alibaba).
    * ``ACCOUNT_FIXED`` — one NS set per account, constant across that
      account's zones; different users hosting the *same* domain get
      disjoint sets (Cloudflare, Tencent).
    * ``RANDOM`` — an NS subset drawn per zone from a large pool
      (Amazon Route 53: 4 from ~2,006).
    """

    GLOBAL_FIXED = "global-fixed"
    ACCOUNT_FIXED = "account-fixed"
    RANDOM = "random"


class VerificationMode(enum.Enum):
    """Ownership-verification posture.

    * ``NONE`` — host anything, serve immediately (the pre-disclosure norm).
    * ``NOTIFY_ONLY`` — the portal nags about unfinished delegation but the
      nameservers answer anyway (Cloudflare/Tencent/Alibaba/Baidu as
      measured: "even if a user fails to verify ... the nameservers will
      still handle DNS requests").
    * ``REQUIRE_DELEGATION`` — serve only once the TLD NS records point at
      the assigned nameservers (mitigation option 1; DNSPod post-disclosure).
    * ``REQUIRE_TXT_CHALLENGE`` — serve only after a random TXT challenge in
      the domain's live zone is satisfied (mitigation option 2; Alibaba
      adopted it partially).
    """

    NONE = "none"
    NOTIFY_ONLY = "notify-only"
    REQUIRE_DELEGATION = "require-delegation"
    REQUIRE_TXT_CHALLENGE = "require-txt-challenge"

    @property
    def blocks_urs(self) -> bool:
        """True when this mode actually prevents undelegated records."""
        return self in (
            VerificationMode.REQUIRE_DELEGATION,
            VerificationMode.REQUIRE_TXT_CHALLENGE,
        )


@dataclass(frozen=True)
class HostingPolicy:
    """The full policy surface probed by Table 2.

    Defaults model the permissive industry norm the paper found.
    """

    #: ownership-verification posture
    verification: VerificationMode = VerificationMode.NONE
    #: nameserver allocation strategy
    ns_allocation: NsAllocation = NsAllocation.GLOBAL_FIXED
    #: nameservers assigned per hosted zone
    nameservers_per_zone: int = 2
    #: size of the provider's NS pool (>= nameservers_per_zone)
    pool_size: int = 2
    #: accept domains that are not registered in any TLD
    allows_unregistered: bool = False
    #: accept subdomains of SLDs (e.g. api.example.com as a zone origin)
    allows_subdomains: bool = False
    #: subdomain hosting is a paid feature (Cloudflare)
    subdomains_require_payment: bool = False
    #: accept ordinary registrable domains
    allows_sld: bool = True
    #: accept public suffixes (gov.cn-style eTLDs)
    allows_etld: bool = True
    #: domains the provider refuses to host (reserved / blacklist)
    reserved: FrozenSet[str] = frozenset()
    #: one account may host several zones for the same domain (Amazon)
    duplicates_single_user: bool = False
    #: different accounts may host the same domain (Cloudflare, Amazon,
    #: Tencent)
    duplicates_cross_user: bool = False
    #: a verified owner can evict a squatter's zone (Tencent, Alibaba);
    #: GoDaddy/ClouDNS/Amazon lack this
    supports_retrieval: bool = False
    #: nameservers answer unhosted domains with protective records
    #: (warning-site A / explanatory TXT) instead of REFUSED
    protective_records: bool = False
    #: paid accounts can sync a zone to every pool nameserver (Cloudflare)
    paid_sync_all_nameservers: bool = False
    #: for RANDOM allocation: refuse new zones for a domain once the pool
    #: is exhausted for it (the Amazon API-exhaustion attack in Appendix C)
    exhaustible_pool: bool = False
    #: every pool nameserver answers for every hosted zone, not just the
    #: assigned set (anycast fleets like Cloudflare, and Alibaba's
    #: undocumented hichina.com servers) — the reason URHunter sees
    #: enormous *correct* UR counts on such providers (Figure 2)
    serves_fleet_wide: bool = False

    def __post_init__(self) -> None:
        if self.nameservers_per_zone < 1:
            raise ValueError("need at least one nameserver per zone")
        if self.pool_size < self.nameservers_per_zone:
            raise ValueError(
                "pool must be at least as large as the per-zone allocation"
            )

    def is_reserved(self, domain: Union[str, Name]) -> bool:
        """True when ``domain`` or an ancestor is on the reserved list."""
        domain = name(domain)
        reserved_names = {name(entry) for entry in self.reserved}
        if domain in reserved_names:
            return True
        return any(
            ancestor in reserved_names for ancestor in domain.ancestors()
        )

    @property
    def hosts_without_verification(self) -> bool:
        """Table 2's "Hosting without Verification" column."""
        return not self.verification.blocks_urs


@dataclass(frozen=True)
class PolicyProbeResult:
    """Outcome of actively probing one provider (drives Table 2)."""

    provider: str
    ns_allocation: NsAllocation
    hosts_without_verification: bool
    allows_unregistered: bool
    allows_subdomain: bool
    allows_sld: bool
    allows_etld: bool
    duplicate_single_user: bool
    duplicate_cross_user: bool
    no_retrieval: bool
    notes: FrozenSet[str] = field(default_factory=frozenset)
