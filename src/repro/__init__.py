"""URHunter reproduction: undelegated-record measurement on DNS hosting.

Reproduction of "Wolf in Sheep's Clothing: Evaluating Security Risks of the
Undelegated Record on DNS Hosting Services" (IMC 2023).

The package layers:

* :mod:`repro.dns` — a from-scratch DNS implementation (names, wire format,
  zones, authoritative servers, recursive/open resolvers);
* :mod:`repro.net` — a deterministic simulated internet with traffic capture;
* :mod:`repro.hosting` — DNS hosting providers with configurable policies;
* :mod:`repro.intel` — IP metadata, passive DNS, and multi-vendor threat
  intelligence;
* :mod:`repro.sandbox` — malware families, a sandbox, and a rule-based IDS;
* :mod:`repro.core` — **URHunter** itself: response collection, suspicious
  record determination, malicious behaviour analysis;
* :mod:`repro.scenario` — world generation (synthetic top list, attackers);
* :mod:`repro.analysis` — the paper's tables and figures.

Quickstart::

    from repro.scenario import ScenarioConfig, build_world
    from repro.core import URHunter

    world = build_world(ScenarioConfig(seed=7))
    hunter = URHunter.from_world(world)
    report = hunter.run()
    print(report.summary())
"""

__version__ = "1.0.0"
