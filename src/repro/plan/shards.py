"""Shard execution: run a scan plan's nameserver groups in isolation.

The byte-identity guarantee of ``--shards`` rests on one invariant:
**a nameserver group's outcome is a pure function of the static world,
the classification epoch, and the config** — never of which shard or
worker ran it, or what ran before it.  :func:`execute_group` enforces
that by construction:

* the virtual clock is pinned to the classification epoch before each
  group starts, and the parent clock is advanced afterwards by the
  *maximum* group elapsed time (the makespan of a perfectly parallel
  scan) — a partition-independent value;
* the network fault RNG is reseeded per group from a stable hash of
  ``(fault seed, nameserver address)``, so a faulted group draws the
  same sequence no matter how groups are ordered or distributed (the
  parent RNG state is saved and restored around the scan);
* every group gets a fresh engine, pacing/breaker state, and — when
  configured — fresh deadline budget, hedge, and AIMD controllers, all
  anchored at the epoch (this is how deadline budgets are apportioned:
  each group measures its run deadline from the epoch).

Group results are reduced to :class:`ReducedOutcome` (wire counters
plus extracted URs), serialized through the checkpoint codecs into
per-shard partial files, and merged back in global plan order:
``ScanMetrics`` via its in-place ``merge``, resilience counters via
:func:`fold_resilience`, and the buffered engine trace events by
replay into the parent trace in group-index order.

Checkpoint codec imports stay inside functions:
``repro.pipeline.checkpoint`` imports ``repro.core.hunter``, which
imports this package, so a module-level import would be a cycle.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..engine import create_engine
from ..obs.events import RunTrace, _json_safe
from ..resilience import AimdController, DeadlineBudget, HedgeController
from .scanplan import NameserverGroup, ScanPlan, Shard

__all__ = [
    "CRASH_SHARD_ENV",
    "ReducedOutcome",
    "GroupResult",
    "execute_group",
    "encode_group_result",
    "decode_group_result",
    "fold_resilience",
    "run_shard_scan",
]

#: set to a shard index to SIGTERM the run right after that shard's
#: partial checkpoint is saved (kill-and-resume tests)
CRASH_SHARD_ENV = "URHUNTER_CRASH_SHARD"


@dataclass(frozen=True)
class ReducedOutcome:
    """One UR query outcome, reduced to what the pipeline consumes.

    ``index`` is the unit's position in :attr:`ScanPlan.ur_units` (the
    global scan order), so merging sorted reduced outcomes reproduces
    the unsharded outcome sequence exactly.
    """

    index: int
    attempts: int
    answered: bool
    urs: Tuple[Any, ...]


@dataclass
class GroupResult:
    """Everything one isolated nameserver-group execution produced."""

    group: int
    server_ip: str
    elapsed: float
    outcomes: List[ReducedOutcome]
    metrics: Any
    resilience: Optional[Dict[str, Any]]
    #: buffered deterministic engine events as (name, stage, fields)
    events: List[Tuple[str, Optional[str], Dict[str, Any]]]


def group_fault_seed(base_seed: int, server_ip: str) -> int:
    """Stable per-group fault-RNG seed — partition-independent."""
    digest = hashlib.sha256(
        f"urhunter-shard-group:{base_seed}:{server_ip}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _group_engine(network, config):
    """A fresh engine + resilience controllers for one group.

    Mirrors the controller wiring of ``URHunter.__init__`` so a group
    sheds, hedges, and adapts exactly as a dedicated single-group run
    would.
    """
    engine = create_engine(
        config.engine,
        network,
        config.scanner_ip,
        policy=config.engine_policy(),
    )
    engine.trace = RunTrace()
    if config.run_deadline > 0 or config.stage_deadline > 0:
        engine.budget = DeadlineBudget(
            run_deadline=config.run_deadline,
            stage_deadline=config.stage_deadline,
        )
        engine.budget.begin(network.now)
    if config.hedge_delay > 0:
        engine.hedge = HedgeController(
            base_delay=config.hedge_delay, timeout=config.timeout
        )
    if config.aimd:
        engine.aimd = AimdController(timeout=config.timeout)
    return engine


def execute_group(
    network,
    config,
    plan: ScanPlan,
    group: NameserverGroup,
    extract_urs,
) -> GroupResult:
    """Run one nameserver group against an already-pinned network.

    The caller is responsible for clock/RNG isolation (see
    :func:`run_shard_scan` and the pool worker); this function only
    executes and reduces.  ``extract_urs`` is the collector's
    ``urs_from_outcome`` bound method.
    """
    engine = _group_engine(network, config)
    start = network.now
    tasks = [plan.ur_units[index].to_task() for index in group.unit_indices]
    outcomes = engine.execute(tasks)
    reduced = [
        ReducedOutcome(
            index=index,
            attempts=outcome.attempts,
            answered=outcome.answered,
            urs=tuple(extract_urs(outcome)),
        )
        for index, outcome in zip(group.unit_indices, outcomes)
    ]
    resilience = getattr(engine, "resilience", None)
    return GroupResult(
        group=group.index,
        server_ip=group.server_ip,
        elapsed=network.now - start,
        outcomes=reduced,
        metrics=engine.metrics,
        resilience=(
            _encode_resilience(resilience)
            if resilience is not None
            else None
        ),
        events=engine.trace.raw_events(),
    )


def run_group_isolated(
    network,
    config,
    plan: ScanPlan,
    group: NameserverGroup,
    extract_urs,
    epoch: float,
    base_seed: int,
) -> GroupResult:
    """Pin the clock and fault RNG for one group, then execute it."""
    network.set_clock(epoch)
    network._fault_rng = random.Random(
        group_fault_seed(base_seed, group.server_ip)
    )
    return execute_group(network, config, plan, group, extract_urs)


# -- serialization ---------------------------------------------------------


def _encode_resilience(resilience) -> Dict[str, Any]:
    """Raw (unrounded) resilience counters for lossless folding."""
    return {
        "hedges_fired": resilience.hedges_fired,
        "hedges_won": resilience.hedges_won,
        "hedges_wasted": resilience.hedges_wasted,
        "shed": dict(resilience.shed),
        "aimd_cuts": resilience.aimd_cuts,
        "aimd_wait": resilience.aimd_wait,
    }


def fold_resilience(target, data: Dict[str, Any]) -> None:
    """Fold encoded group counters into the parent's metrics in place.

    In place because the hunter and its engine alias one
    :class:`~repro.resilience.metrics.ResilienceMetrics` instance —
    the protocol ``merge`` returns a new object and would silently
    break that aliasing.
    """
    target.hedges_fired += data.get("hedges_fired", 0)
    target.hedges_won += data.get("hedges_won", 0)
    target.hedges_wasted += data.get("hedges_wasted", 0)
    target.aimd_cuts += data.get("aimd_cuts", 0)
    target.aimd_wait += data.get("aimd_wait", 0.0)
    for key, count in data.get("shed", {}).items():
        target.shed[key] = target.shed.get(key, 0) + count


def encode_group_result(result: GroupResult) -> Dict[str, Any]:
    """JSON-safe payload of one group (shard partial checkpoints and
    the process-pool wire format share this encoding)."""
    from ..pipeline.checkpoint import encode_metrics, encode_record

    return {
        "group": result.group,
        "server": result.server_ip,
        "elapsed": result.elapsed,
        "outcomes": [
            {
                "index": outcome.index,
                "attempts": outcome.attempts,
                "answered": outcome.answered,
                "urs": [encode_record(record) for record in outcome.urs],
            }
            for outcome in result.outcomes
        ],
        "metrics": encode_metrics(result.metrics),
        "resilience": result.resilience,
        "events": [
            [name, stage, _json_safe(fields)]
            for name, stage, fields in result.events
        ],
    }


def decode_group_result(payload: Dict[str, Any]) -> GroupResult:
    from ..pipeline.checkpoint import decode_metrics, decode_record

    return GroupResult(
        group=payload["group"],
        server_ip=payload["server"],
        elapsed=payload["elapsed"],
        outcomes=[
            ReducedOutcome(
                index=outcome["index"],
                attempts=outcome["attempts"],
                answered=outcome["answered"],
                urs=tuple(
                    decode_record(record) for record in outcome["urs"]
                ),
            )
            for outcome in payload["outcomes"]
        ],
        metrics=decode_metrics(payload["metrics"]),
        resilience=payload.get("resilience"),
        events=[
            (name, stage, dict(fields))
            for name, stage, fields in payload.get("events", [])
        ],
    )


# -- orchestration ---------------------------------------------------------


def _maybe_crash_shard(index: int) -> None:
    target = os.environ.get(CRASH_SHARD_ENV)
    if target is not None and int(target) == index:
        os.kill(os.getpid(), signal.SIGTERM)


def _emit_timing(trace, name: str, **fields) -> None:
    if trace is not None:
        trace.emit_timing(name, **fields)


def _incremental_partition(
    hunter, plan: ScanPlan, trace
) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, Any], Optional[Any]]:
    """Consult the group result store, if one is active and safe.

    Returns ``(replayed payloads by group, decisions by group, store)``
    — all empty/None when no store is attached, ``--no-incremental`` is
    set, or the run is not cacheable (network faults installed or
    non-deterministic sources wired in), in which case the store is
    bypassed entirely: never read, never written.
    """
    result_store = getattr(hunter, "result_store", None)
    config = hunter.config
    if result_store is None or not getattr(config, "incremental", True):
        return {}, {}, None
    from ..incremental import PlanDiffer, run_cacheable

    cacheable, reason = run_cacheable(hunter)
    if not cacheable:
        result_store.stats["bypassed_runs"] += 1
        _emit_timing(trace, "incremental.bypass", reason=reason)
        return {}, {}, None
    providers = {
        target.address: target.provider for target in hunter.nameservers
    }
    diff = PlanDiffer(result_store).partition(
        plan, hunter.network, config, providers
    )
    decisions: Dict[int, Any] = {}
    for decision in diff.decisions:
        decisions[decision.group] = decision
        if decision.action == "hit":
            _emit_timing(
                trace,
                "incremental.hit",
                group=decision.group,
                server=decision.server_ip,
            )
        elif decision.reason == "stale":
            _emit_timing(
                trace,
                "incremental.invalidate",
                group=decision.group,
                server=decision.server_ip,
            )
        else:
            _emit_timing(
                trace,
                "incremental.miss",
                group=decision.group,
                server=decision.server_ip,
                reason=decision.reason,
            )
    _emit_timing(
        trace,
        "incremental.plan",
        groups=len(diff.decisions),
        hits=diff.hits,
        dirty=diff.dirty,
    )
    return diff.replayed, decisions, result_store


def run_shard_scan(hunter, plan: ScanPlan, epoch: float) -> List[ReducedOutcome]:
    """Execute the plan's UR scan shard by shard and merge the results.

    Runs every shard (loading previously checkpointed partials where
    available, replaying store hits where an incremental result store
    is active), then folds metrics/resilience/trace events into the
    hunter's parent objects and advances the parent clock by the
    makespan.  Returns the reduced outcomes in global plan order.
    """
    network = hunter.network
    config = hunter.config
    trace = hunter.trace
    # incremental runs take this path at --shards 0 too: one shard,
    # which existing equivalence tests prove byte-identical to the
    # legacy in-line scan
    shard_count = config.shards if config.shards > 0 else 1
    shards = plan.shard(shard_count)
    store = getattr(hunter, "shard_store", None)

    replayed, decisions, result_store = _incremental_partition(
        hunter, plan, trace
    )

    cached: Dict[int, List[Dict[str, Any]]] = {}
    if store is not None:
        cached = store.load_shard_partials(plan.plan_hash, shard_count)
    pending = [
        shard
        for shard in shards
        if shard.index not in cached
        and any(group.index not in replayed for group in shard.groups)
    ]

    pool_results: Optional[Dict[int, List[Dict[str, Any]]]] = None
    if (
        pending
        and getattr(hunter, "world_spec", None) is not None
        and config.shard_workers > 1
    ):
        from .pool import execute_shards_pooled

        only_groups = None
        if replayed:
            only_groups = {
                shard.index: tuple(
                    group.index
                    for group in shard.groups
                    if group.index not in replayed
                )
                for shard in pending
            }
        pool_results = execute_shards_pooled(
            hunter.world_spec,
            config,
            plan.plan_hash,
            epoch,
            [shard.index for shard in pending],
            shard_count=shard_count,
            only_groups=only_groups,
        )

    # The per-group reseeding below clobbers the network fault RNG;
    # save the parent state so the post-scan pipeline (notably the
    # §4.2 delegated-sample queries) sees a partition-independent RNG.
    rng_state = network._fault_rng.getstate()
    base_seed = getattr(network, "fault_seed", 0)

    shard_payloads: Dict[int, List[Dict[str, Any]]] = {}
    for shard in shards:
        if shard.index in cached:
            shard_payloads[shard.index] = cached[shard.index]
            _emit_timing(
                trace,
                "shard.loaded",
                shard=shard.index,
                groups=len(cached[shard.index]),
            )
            continue
        _emit_timing(
            trace,
            "shard.start",
            shard=shard.index,
            groups=len(shard.groups),
            units=shard.unit_count,
        )
        if pool_results is not None and shard.index in pool_results:
            executed = pool_results[shard.index]
        else:
            executed = [
                encode_group_result(
                    run_group_isolated(
                        network,
                        config,
                        plan,
                        group,
                        hunter.collector.urs_from_outcome,
                        epoch,
                        base_seed,
                    )
                )
                for group in shard.groups
                if group.index not in replayed
            ]
        # merge replayed and freshly executed groups in shard order —
        # the byte-identity invariant makes the interleave seamless
        executed_by_group = {
            payload["group"]: payload for payload in executed
        }
        payloads = [
            replayed[group.index]
            if group.index in replayed
            else executed_by_group[group.index]
            for group in shard.groups
        ]
        shard_payloads[shard.index] = payloads
        if result_store is not None:
            for payload in executed:
                decision = decisions.get(payload["group"])
                if decision is not None and decision.identity is not None:
                    result_store.put(
                        decision.identity, decision.digest, payload
                    )
        if store is not None:
            store.save_shard_partial(
                shard.index, shard_count, plan.plan_hash, payloads
            )
        _emit_timing(
            trace, "shard.merged", shard=shard.index, groups=len(payloads)
        )
        _maybe_crash_shard(shard.index)

    restored = random.Random()
    restored.setstate(rng_state)
    network._fault_rng = restored

    # Merge in group-index order — the deterministic order the plan
    # fixed, independent of shard membership or completion order.
    by_group: Dict[int, Dict[str, Any]] = {}
    for payloads in shard_payloads.values():
        for payload in payloads:
            by_group[payload["group"]] = payload
    outcomes: List[ReducedOutcome] = []
    makespan = 0.0
    parent_resilience = getattr(hunter, "resilience", None)
    for group_index in sorted(by_group):
        result = decode_group_result(by_group[group_index])
        if trace is not None:
            for name, stage, fields in result.events:
                trace.emit(name, stage=stage, **fields)
        hunter.engine.metrics.merge(result.metrics)
        if result.resilience and parent_resilience is not None:
            fold_resilience(parent_resilience, result.resilience)
        outcomes.extend(result.outcomes)
        makespan = max(makespan, result.elapsed)

    network.set_clock(epoch + makespan)
    outcomes.sort(key=lambda outcome: outcome.index)
    return outcomes
