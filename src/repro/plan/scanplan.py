"""The scan-plan IR: stage 1 as an explicit, shardable query plan.

A :class:`ScanPlan` is a *pure, deterministic* value computed from the
measurement world and the :class:`~repro.core.hunter.HunterConfig`
before a single packet moves: every stage-1 query — protective probe,
correct-record resolution, UR scan — is enumerated as a typed
:class:`QueryUnit`, UR units are grouped per target nameserver into
:class:`NameserverGroup`\\ s, and the whole plan carries a stable
content hash that checkpoints and traces stamp so a resumed or sharded
run can prove it is executing the *same* scan.

Determinism contract
--------------------
``build_plan`` replays the exact enumeration and randomized (ethics)
query order of :class:`~repro.core.collector.ResponseCollector`: one
``random.Random(seed)`` shuffles the correct-record matrix first and
the UR matrix second, matching the collector's historical draw
sequence draw for draw.  The plan hash covers only structural query
identity — ``(server_ip, qname, qtype, recursion_desired)`` per unit
plus the scan knobs that shape the matrix — so it is invariant under
shard count, worker count, engine choice, execution mode, and the
iteration order of the world's dicts and sets.

This module is a leaf: it imports only the DNS name type and the
engine task type, so every other layer (collector, hunter, pipeline,
CLI) can import it without cycles.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..dns.name import Name, name
from ..engine.api import QueryTask

__all__ = [
    "PLAN_FORMAT_VERSION",
    "QueryUnit",
    "NameserverGroup",
    "Shard",
    "ScanPlan",
    "build_plan",
]

#: bumped whenever the hashed plan layout changes
PLAN_FORMAT_VERSION = 1

#: the three stage-1 collections, in §4.1 execution order
COLLECTIONS = ("protective", "correct", "ur")


@dataclass(frozen=True)
class QueryUnit:
    """One planned stage-1 query.

    ``collection`` names which of the three collections the unit
    belongs to and doubles as the engine stage label.  ``tag`` carries
    the interpretation context the collector's response handlers expect
    (the :class:`~repro.core.collector.NameserverTarget` for UR units,
    the :class:`~repro.core.collector.DomainTarget` for correct units);
    it is derived from the world and therefore excluded from the hash.
    """

    collection: str
    server_ip: str
    qname: Name
    qtype: int
    recursion_desired: bool = False
    tag: Any = None

    def to_task(self) -> QueryTask:
        """Materialize the engine task this unit stands for."""
        return QueryTask(
            server_ip=self.server_ip,
            qname=self.qname,
            qtype=self.qtype,
            stage=self.collection,
            recursion_desired=self.recursion_desired,
            tag=self.tag,
        )

    def identity(self) -> List[Any]:
        """The hashed structural identity (no tags, no world objects)."""
        return [
            self.server_ip,
            self.qname.to_text(),
            int(self.qtype),
            self.recursion_desired,
        ]


@dataclass(frozen=True)
class NameserverGroup:
    """All UR units aimed at one nameserver — the sharding atom.

    ``unit_indices`` index into :attr:`ScanPlan.ur_units` (the global,
    shuffled scan order), so merging group results back into one
    sequence is a sort by index, not a re-shuffle.  Groups are keyed by
    nameserver because per-server pacing, circuit breaking, and fault
    profiles are all server-scoped: a group is the largest slice that
    can run in isolation without changing any engine decision.
    """

    index: int
    server_ip: str
    unit_indices: Tuple[int, ...]


@dataclass(frozen=True)
class Shard:
    """A round-robin bundle of nameserver groups for one worker."""

    index: int
    count: int
    groups: Tuple[NameserverGroup, ...]

    @property
    def unit_count(self) -> int:
        return sum(len(group.unit_indices) for group in self.groups)


@dataclass(frozen=True)
class ScanPlan:
    """The full stage-1 query plan plus its content hash."""

    protective_units: Tuple[QueryUnit, ...]
    correct_units: Tuple[QueryUnit, ...]
    ur_units: Tuple[QueryUnit, ...]
    groups: Tuple[NameserverGroup, ...]
    plan_hash: str
    seed: int
    probe_domain: Name
    scanner_ip: str
    query_types: Tuple[int, ...]

    def units(self, collection: str) -> Tuple[QueryUnit, ...]:
        if collection == "protective":
            return self.protective_units
        if collection == "correct":
            return self.correct_units
        if collection == "ur":
            return self.ur_units
        raise KeyError(f"unknown collection {collection!r}")

    def tasks(self, collection: str) -> List[QueryTask]:
        """Engine tasks for one collection, in planned scan order."""
        return [unit.to_task() for unit in self.units(collection)]

    def unit_counts(self) -> Dict[str, int]:
        return {
            "protective": len(self.protective_units),
            "correct": len(self.correct_units),
            "ur": len(self.ur_units),
        }

    def shard(self, count: int) -> List[Shard]:
        """Partition the nameserver groups into ``count`` shards.

        Round-robin by group index: every group lands in exactly one
        shard, shard membership depends only on (plan, count), and the
        union over shards is the whole plan.
        """
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        buckets: List[List[NameserverGroup]] = [[] for _ in range(count)]
        for group in self.groups:
            buckets[group.index % count].append(group)
        return [
            Shard(index=index, count=count, groups=tuple(bucket))
            for index, bucket in enumerate(buckets)
        ]

    def summary(self, shards: int = 1) -> str:
        """Deterministic human-readable plan summary (``repro plan``)."""
        counts = self.unit_counts()
        lines = [
            f"scan plan {self.plan_hash}",
            f"  seed: {self.seed}",
            f"  probe domain: {self.probe_domain.to_text()}",
            f"  query types: "
            + ",".join(str(int(qt)) for qt in self.query_types),
            f"  protective units: {counts['protective']}",
            f"  correct units: {counts['correct']}",
            f"  ur units: {counts['ur']}",
            f"  nameserver groups: {len(self.groups)}",
        ]
        partition = self.shard(shards)
        lines.append(f"  shards: {shards}")
        for shard in partition:
            lines.append(
                f"    shard {shard.index}: {len(shard.groups)} groups, "
                f"{shard.unit_count} units"
            )
        return "\n".join(lines)


def _hash_plan(
    protective: Sequence[QueryUnit],
    correct: Sequence[QueryUnit],
    ur: Sequence[QueryUnit],
    seed: int,
    probe_domain: Name,
    scanner_ip: str,
    query_types: Sequence[int],
) -> str:
    payload = {
        "version": PLAN_FORMAT_VERSION,
        "seed": seed,
        "probe_domain": probe_domain.to_text(),
        "scanner_ip": scanner_ip,
        "query_types": [int(qt) for qt in query_types],
        "units": {
            "protective": [unit.identity() for unit in protective],
            "correct": [unit.identity() for unit in correct],
            "ur": [unit.identity() for unit in ur],
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_plan(
    nameservers: Sequence[Any],
    domains: Sequence[Any],
    delegated_to: Dict[Name, Set[str]],
    open_resolver_ips: Sequence[str],
    config: Any,
) -> ScanPlan:
    """Enumerate stage 1 as a :class:`ScanPlan`.

    ``config`` is duck-typed over :class:`~repro.core.hunter.HunterConfig`
    (``seed``, ``query_types``, ``probe_domain``, ``scanner_ip``); the
    world inputs are the hunter's target lists.  The enumeration and
    the two shuffles reproduce the collector's legacy draw sequence
    exactly — protective units are never shuffled, the correct matrix
    consumes the first shuffle, the UR matrix the second.
    """
    rng = random.Random(config.seed)
    query_types = tuple(config.query_types)
    probe = name(config.probe_domain)

    protective = tuple(
        QueryUnit(
            collection="protective",
            server_ip=nameserver.address,
            qname=probe,
            qtype=qtype,
        )
        for nameserver in nameservers
        for qtype in query_types
    )

    correct: List[QueryUnit] = []
    for resolver_ip in open_resolver_ips:
        for target in domains:
            for qtype in query_types:
                correct.append(
                    QueryUnit(
                        collection="correct",
                        server_ip=resolver_ip,
                        qname=target.domain,
                        qtype=qtype,
                        recursion_desired=True,
                        tag=target,
                    )
                )
    rng.shuffle(correct)

    ur: List[QueryUnit] = []
    for nameserver in nameservers:
        for target in domains:
            if nameserver.address in delegated_to.get(
                target.domain, set()
            ):
                continue
            for qtype in query_types:
                ur.append(
                    QueryUnit(
                        collection="ur",
                        server_ip=nameserver.address,
                        qname=target.domain,
                        qtype=qtype,
                        tag=nameserver,
                    )
                )
    rng.shuffle(ur)  # ethics: randomized query order

    # group UR units per nameserver, keyed in first-appearance order of
    # the shuffled scan so grouping is as deterministic as the shuffle
    order: Dict[str, List[int]] = {}
    for index, unit in enumerate(ur):
        order.setdefault(unit.server_ip, []).append(index)
    groups = tuple(
        NameserverGroup(
            index=group_index,
            server_ip=server_ip,
            unit_indices=tuple(indices),
        )
        for group_index, (server_ip, indices) in enumerate(order.items())
    )

    plan_hash = _hash_plan(
        protective,
        correct,
        ur,
        seed=config.seed,
        probe_domain=probe,
        scanner_ip=config.scanner_ip,
        query_types=query_types,
    )
    return ScanPlan(
        protective_units=protective,
        correct_units=tuple(correct),
        ur_units=tuple(ur),
        groups=groups,
        plan_hash=plan_hash,
        seed=config.seed,
        probe_domain=probe,
        scanner_ip=config.scanner_ip,
        query_types=query_types,
    )
