"""Process-pool shard execution against per-worker world replicas.

The simulated internet is an in-process object graph, so worker
processes cannot share the parent's world — instead each worker
*rebuilds* it from a :class:`WorldSpec`: the scenario config, the
injected loss faults, and the chaos script, replayed in exactly the
order the CLI applied them.  World construction is a pure function of
the scenario seed and fault application is a pure function of the
spec, so every replica is byte-equivalent to the parent's world; the
worker then recomputes the scan plan and refuses to run if its hash
differs from the parent's (a cheap end-to-end proof that parent and
worker agree on every planned query).

Workers execute whole shards and return the same JSON-safe group
payloads the local path produces
(:func:`repro.plan.shards.encode_group_result`), so pooled, local,
and checkpoint-resumed shards merge through one code path.  A
per-process cache keeps the rebuilt world across shards handed to the
same worker.

Imports of :mod:`repro.scenario` and :mod:`repro.core.hunter` stay
inside functions — this module is imported by the shard orchestrator,
which the hunter imports.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["WorldSpec", "execute_shards_pooled"]


@dataclass(frozen=True)
class WorldSpec:
    """Everything a worker needs to rebuild the measurement world."""

    #: the scenario configuration (picklable plain dataclass)
    scenario: Any
    #: packet-loss fault injection, replayed as ``inject_faults``
    loss_rate: float = 0.0
    loss_seed: int = 0
    #: chaos-script name or path, replayed as ``apply_scenario``
    chaos_script: Optional[str] = None


#: per-process replica cache: (spec repr, config repr) -> (hunter, plan)
_REPLICAS: Dict[Tuple[str, str], Any] = {}


def _replica(spec: WorldSpec, config) -> Any:
    """The worker's hunter over a rebuilt world (cached per process)."""
    key = (repr(spec), repr(config))
    hunter = _REPLICAS.get(key)
    if hunter is None:
        from ..core.hunter import URHunter
        from ..scenario import build_world

        world = build_world(spec.scenario)
        if spec.loss_rate > 0:
            world.network.inject_faults(
                loss_rate=spec.loss_rate, seed=spec.loss_seed
            )
        hunter = URHunter.from_world(world, config)
        if spec.chaos_script:
            from ..resilience.scenario import apply_scenario, load_scenario

            apply_scenario(load_scenario(spec.chaos_script), world, hunter)
        _REPLICAS[key] = hunter
    return hunter


def _executed_plan(hunter):
    """The plan the worker will execute (pdns expansion included)."""
    from .scanplan import build_plan

    notes: List[str] = []
    domains = hunter._expanded_domains(notes)
    if domains == hunter.domains:
        return hunter.plan
    return build_plan(
        hunter.nameservers,
        domains,
        hunter.delegated_to,
        hunter.open_resolver_ips,
        hunter.config,
    )


def _run_shard(
    spec: WorldSpec,
    config,
    plan_hash: str,
    epoch: float,
    shard_index: int,
    shard_count: int,
    only_groups: Optional[Tuple[int, ...]] = None,
) -> Tuple[int, List[Dict[str, Any]]]:
    """Worker entry point: execute one shard, return encoded groups.

    ``only_groups`` restricts execution to the named group indices (the
    incremental path's dirty groups) — group isolation makes skipping
    the replayed siblings side-effect free.
    """
    from .shards import encode_group_result, run_group_isolated

    hunter = _replica(spec, config)
    plan = _executed_plan(hunter)
    if plan.plan_hash != plan_hash:
        raise RuntimeError(
            "shard worker world diverged from the parent: plan hash "
            f"{plan.plan_hash} != {plan_hash}"
        )
    shard = plan.shard(shard_count)[shard_index]
    base_seed = getattr(hunter.network, "fault_seed", 0)
    payloads = [
        encode_group_result(
            run_group_isolated(
                hunter.network,
                config,
                plan,
                group,
                hunter.collector.urs_from_outcome,
                epoch,
                base_seed,
            )
        )
        for group in shard.groups
        if only_groups is None or group.index in only_groups
    ]
    return shard_index, payloads


def execute_shards_pooled(
    spec: WorldSpec,
    config,
    plan_hash: str,
    epoch: float,
    shard_indices: Sequence[int],
    shard_count: Optional[int] = None,
    only_groups: Optional[Dict[int, Tuple[int, ...]]] = None,
) -> Dict[int, List[Dict[str, Any]]]:
    """Run the given shards across ``config.shard_workers`` processes.

    ``shard_count`` defaults to ``config.shards`` (the incremental path
    passes its effective count explicitly); ``only_groups`` optionally
    maps a shard index to the group indices it should execute.
    """
    count = config.shards if shard_count is None else shard_count
    workers = max(1, min(config.shard_workers, len(shard_indices)))
    results: Dict[int, List[Dict[str, Any]]] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_shard,
                spec,
                config,
                plan_hash,
                epoch,
                index,
                count,
                None if only_groups is None else only_groups.get(index),
            )
            for index in shard_indices
        ]
        for future in futures:
            index, payloads = future.result()
            results[index] = payloads
    return results
