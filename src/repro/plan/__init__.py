"""Scan-plan IR: stage 1 as an explicit, shardable, hashable plan.

``build_plan`` turns ``(world targets, HunterConfig)`` into a pure
:class:`ScanPlan` — every stage-1 query enumerated as a typed
:class:`QueryUnit`, UR units grouped per nameserver, the whole plan
content-hashed so checkpoints and traces can prove which scan they
belong to.  :mod:`repro.plan.shards` executes the plan's groups in
isolation (locally or resumed from partial checkpoints) and
:mod:`repro.plan.pool` distributes shards across worker processes.
"""

from .scanplan import (
    PLAN_FORMAT_VERSION,
    NameserverGroup,
    QueryUnit,
    ScanPlan,
    Shard,
    build_plan,
)
from .shards import (
    CRASH_SHARD_ENV,
    GroupResult,
    ReducedOutcome,
    decode_group_result,
    encode_group_result,
    execute_group,
    fold_resilience,
    run_shard_scan,
)

__all__ = [
    "PLAN_FORMAT_VERSION",
    "NameserverGroup",
    "QueryUnit",
    "ScanPlan",
    "Shard",
    "build_plan",
    "CRASH_SHARD_ENV",
    "GroupResult",
    "ReducedOutcome",
    "decode_group_result",
    "encode_group_result",
    "execute_group",
    "fold_resilience",
    "run_shard_scan",
]
