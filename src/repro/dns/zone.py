"""Authoritative zone data and lookup semantics.

A :class:`Zone` stores RRsets under owner names relative to a zone origin
and answers lookups with RFC 1034 semantics: exact match, CNAME chasing
(within the zone), wildcard synthesis (RFC 4592, the simple cases), child
delegation referral, and NXDOMAIN/NODATA distinction.

Zones are what hosting-provider accounts create and what authoritative
servers load — an *undelegated record* is just a zone hosted on a provider
whose origin was never delegated to that provider's nameservers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .message import ResourceRecord
from .name import Name, name
from .rdata import CNAME, NS, SOA, Rdata, RRType, rdata_from_text

WILDCARD_LABEL = "*"


class ZoneError(ValueError):
    """Raised for invalid zone contents or operations."""


class LookupStatus(enum.Enum):
    """Outcome class of a zone lookup."""

    SUCCESS = "success"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    DELEGATION = "delegation"
    CNAME = "cname"


@dataclass
class LookupResult:
    """Result of :meth:`Zone.lookup`.

    ``records`` carries the answer RRset (or the CNAME record / the
    delegation NS set, depending on ``status``).
    """

    status: LookupStatus
    records: Tuple[ResourceRecord, ...] = ()
    cname_target: Optional[Name] = None


@dataclass
class Zone:
    """The contents of one authoritative zone.

    Records are indexed by (owner, rrtype).  The zone origin must own a
    SOA record before the zone is served; :meth:`ensure_soa` installs a
    default one, which mirrors how hosting portals auto-create SOA/NS.
    """

    origin: Name
    _rrsets: Dict[Tuple[Name, int], List[ResourceRecord]] = field(
        default_factory=dict
    )
    #: bumped by :meth:`add`/:meth:`remove`; doubles as the generation
    #: stamp that invalidates compiled answers in
    #: :class:`~repro.dns.server.AuthoritativeServer`
    serial: int = 1

    def __init__(self, origin: Union[str, Name]):
        self.origin = name(origin)
        self._rrsets = {}
        self.serial = 1

    # -- mutation ---------------------------------------------------------

    def add(
        self,
        owner: Union[str, Name],
        rdata: Rdata,
        ttl: int = 300,
    ) -> ResourceRecord:
        """Add one record; the owner must be at or under the origin.

        A relative owner (not under the origin) is interpreted as relative
        to the origin, zone-file style: ``add("www", A("1.2.3.4"))``.
        """
        owner = self._absolute(owner)
        record = ResourceRecord(owner, rdata, ttl)
        key = (owner, rdata.rrtype)
        if rdata.rrtype == RRType.CNAME and self._rrsets.get(key):
            raise ZoneError(f"duplicate CNAME at {owner}")
        existing_types = {
            rrtype for (existing, rrtype) in self._rrsets if existing == owner
        }
        if rdata.rrtype == RRType.CNAME and existing_types - {RRType.CNAME}:
            raise ZoneError(f"CNAME cannot coexist with other data at {owner}")
        if RRType.CNAME in existing_types and rdata.rrtype != RRType.CNAME:
            raise ZoneError(f"{owner} already has a CNAME")
        bucket = self._rrsets.setdefault(key, [])
        if record not in bucket:
            bucket.append(record)
            self.serial += 1
        return record

    def add_text(
        self,
        owner: Union[str, Name],
        rrtype: Union[int, str],
        text: str,
        ttl: int = 300,
    ) -> ResourceRecord:
        """Add a record from presentation text (zone-file style)."""
        return self.add(owner, rdata_from_text(rrtype, text), ttl)

    def remove(
        self, owner: Union[str, Name], rrtype: Optional[int] = None
    ) -> int:
        """Remove records at ``owner`` (all types when ``rrtype`` is None).

        Returns the number of records removed.
        """
        owner = self._absolute(owner)
        removed = 0
        for key in list(self._rrsets):
            if key[0] != owner:
                continue
            if rrtype is not None and key[1] != rrtype:
                continue
            removed += len(self._rrsets.pop(key))
        if removed:
            self.serial += 1
        return removed

    def ensure_soa(
        self, primary: Union[str, Name], contact: Optional[str] = None
    ) -> None:
        """Install a default SOA at the origin if absent."""
        if self.rrset(self.origin, RRType.SOA):
            return
        contact_name = (
            name(contact) if contact else self.origin.prepend("hostmaster")
        )
        self.add(
            self.origin,
            SOA(mname=name(primary), rname=contact_name, serial=self.serial),
        )

    # -- accessors --------------------------------------------------------

    def _absolute(self, owner: Union[str, Name]) -> Name:
        owner = name(owner)
        if owner.is_subdomain_of(self.origin):
            return owner
        # Treat as relative to the origin.
        return self.origin.prepend(*owner.labels)

    def rrset(
        self, owner: Union[str, Name], rrtype: int
    ) -> Tuple[ResourceRecord, ...]:
        """The RRset at (owner, rrtype), possibly empty."""
        owner = self._absolute(owner)
        return tuple(self._rrsets.get((owner, rrtype), ()))

    def owners(self) -> Iterator[Name]:
        """All owner names with data, in canonical order."""
        seen = sorted({owner for owner, _ in self._rrsets})
        return iter(seen)

    def records(self) -> Iterator[ResourceRecord]:
        """Every record in the zone."""
        for bucket in self._rrsets.values():
            yield from bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._rrsets.values())

    def has_owner(self, owner: Union[str, Name]) -> bool:
        owner = self._absolute(owner)
        return any(existing == owner for existing, _ in self._rrsets)

    def _owner_exists_or_has_descendants(self, owner: Name) -> bool:
        """True when ``owner`` is an empty non-terminal or has data."""
        return any(
            existing.is_subdomain_of(owner) for existing, _ in self._rrsets
        )

    def delegation_at(self, owner: Name) -> Tuple[ResourceRecord, ...]:
        """The NS RRset delegating ``owner``, when below the origin apex."""
        if owner == self.origin:
            return ()
        return tuple(self._rrsets.get((owner, RRType.NS), ()))

    # -- lookup -----------------------------------------------------------

    def lookup(self, qname: Union[str, Name], qtype: int) -> LookupResult:
        """Resolve a query against this zone's data.

        Implements the authoritative-side algorithm: delegation cut check
        (closest enclosing NS set below the apex wins), exact-match answer,
        CNAME indirection, wildcard synthesis, and NODATA/NXDOMAIN.
        """
        qname = name(qname)
        if not qname.is_subdomain_of(self.origin):
            raise ZoneError(f"{qname} is out of zone {self.origin}")

        # Delegation: walk from just below the apex toward qname.
        depth = len(self.origin) + 1
        while depth <= len(qname):
            _, cut = qname.split(depth)
            if cut != self.origin:
                ns_set = self.delegation_at(cut)
                if ns_set and not (cut == qname and qtype == RRType.NS):
                    return LookupResult(LookupStatus.DELEGATION, ns_set)
            depth += 1

        # Exact match.
        exact = self.rrset(qname, qtype)
        if exact:
            return LookupResult(LookupStatus.SUCCESS, exact)
        cname = self.rrset(qname, RRType.CNAME)
        if cname and qtype != RRType.CNAME:
            target = cname[0].rdata
            assert isinstance(target, CNAME)
            return LookupResult(
                LookupStatus.CNAME, cname, cname_target=target.target
            )
        if self._owner_exists_or_has_descendants(qname):
            return LookupResult(LookupStatus.NODATA)

        # Wildcard synthesis: the closest encloser's "*" child.
        for ancestor in [*qname.ancestors()]:
            if not ancestor.is_subdomain_of(self.origin):
                break
            wildcard = ancestor.prepend(WILDCARD_LABEL)
            synth = self.rrset(wildcard, qtype)
            if synth:
                records = tuple(
                    ResourceRecord(qname, record.rdata, record.ttl)
                    for record in synth
                )
                return LookupResult(LookupStatus.SUCCESS, records)
            if self._owner_exists_or_has_descendants(ancestor):
                # Closest encloser found but no wildcard match.
                break
        return LookupResult(LookupStatus.NXDOMAIN)

    # -- convenience -------------------------------------------------------

    def nameserver_targets(self) -> List[Name]:
        """Targets of the apex NS RRset."""
        return [
            record.rdata.target
            for record in self.rrset(self.origin, RRType.NS)
            if isinstance(record.rdata, NS)
        ]

    def copy(self) -> "Zone":
        """A deep-enough copy (records are immutable, buckets are not)."""
        clone = Zone(self.origin)
        clone._rrsets = {
            key: list(bucket) for key, bucket in self._rrsets.items()
        }
        clone.serial = self.serial
        return clone


def zone_from_records(
    origin: Union[str, Name],
    entries: Iterable[Tuple[str, Union[int, str], str]],
) -> Zone:
    """Build a zone from (owner, rrtype, rdata-text) triples.

    A compact constructor used heavily by tests and scenario builders::

        zone_from_records("example.com", [
            ("example.com", "A", "192.0.2.1"),
            ("www", "CNAME", "example.com."),
        ])
    """
    zone = Zone(origin)
    for owner, rrtype, text in entries:
        zone.add_text(owner, rrtype, text)
    return zone
