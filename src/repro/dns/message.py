"""DNS message model: header, question, resource records, responses.

This is the in-memory representation both ends of the simulated network
exchange; :mod:`repro.dns.wire` round-trips it through RFC 1035 wire format
so the simulation exercises real encode/decode paths rather than passing
Python objects by reference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Tuple, Union

from .name import Name, name
from .rdata import Rdata, RRClass, RRType


class Rcode:
    """DNS response codes (RFC 1035 section 4.1.1, RFC 2136)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    _NAMES = {
        0: "NOERROR",
        1: "FORMERR",
        2: "SERVFAIL",
        3: "NXDOMAIN",
        4: "NOTIMP",
        5: "REFUSED",
    }

    @classmethod
    def to_text(cls, code: int) -> str:
        return cls._NAMES.get(code, f"RCODE{code}")


class Opcode:
    """DNS opcodes; only QUERY is used by the measurement."""

    QUERY = 0
    STATUS = 2
    UPDATE = 5


@dataclass(frozen=True)
class Question:
    """A question section entry."""

    qname: Name
    qtype: int
    qclass: int = RRClass.IN

    def __str__(self) -> str:
        return (
            f"{self.qname.to_text(trailing_dot=True)} "
            f"IN {RRType.to_text(self.qtype)}"
        )


@dataclass(frozen=True)
class ResourceRecord:
    """A complete resource record (owner, type, class, TTL, RDATA)."""

    owner: Name
    rdata: Rdata
    ttl: int = 300
    rrclass: int = RRClass.IN

    @property
    def rrtype(self) -> int:
        return self.rdata.rrtype

    def to_text(self) -> str:
        return (
            f"{self.owner.to_text(trailing_dot=True)} {self.ttl} IN "
            f"{RRType.to_text(self.rrtype)} {self.rdata.to_text()}"
        )

    def __str__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class Header:
    """The fixed DNS header."""

    message_id: int = 0
    is_response: bool = False
    opcode: int = Opcode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: int = Rcode.NOERROR

    def flags_word(self) -> int:
        """Pack the flag bits into the 16-bit header flags word."""
        word = 0
        if self.is_response:
            word |= 0x8000
        word |= (self.opcode & 0xF) << 11
        if self.authoritative:
            word |= 0x0400
        if self.truncated:
            word |= 0x0200
        if self.recursion_desired:
            word |= 0x0100
        if self.recursion_available:
            word |= 0x0080
        word |= self.rcode & 0xF
        return word

    @classmethod
    def from_flags_word(cls, message_id: int, word: int) -> "Header":
        return cls(
            message_id=message_id,
            is_response=bool(word & 0x8000),
            opcode=(word >> 11) & 0xF,
            authoritative=bool(word & 0x0400),
            truncated=bool(word & 0x0200),
            recursion_desired=bool(word & 0x0100),
            recursion_available=bool(word & 0x0080),
            rcode=word & 0xF,
        )


_id_counter = itertools.count(1)


def next_message_id() -> int:
    """A monotonically increasing 16-bit message id.

    Deterministic (no randomness) so simulations replay identically.
    """
    return next(_id_counter) & 0xFFFF


@dataclass
class Message:
    """A full DNS message with the four standard sections."""

    header: Header = field(default_factory=Header)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)

    # -- constructors ---------------------------------------------------

    @classmethod
    def make_query(
        cls,
        qname: Union[str, Name],
        qtype: int,
        recursion_desired: bool = True,
        message_id: Optional[int] = None,
    ) -> "Message":
        """Build a standard query for ``qname``/``qtype``."""
        return cls(
            header=Header(
                message_id=(
                    message_id if message_id is not None else next_message_id()
                ),
                recursion_desired=recursion_desired,
            ),
            questions=[Question(name(qname), qtype)],
        )

    def make_response(
        self,
        rcode: int = Rcode.NOERROR,
        authoritative: bool = False,
        recursion_available: bool = False,
    ) -> "Message":
        """Build an empty response echoing this query's id and question."""
        return Message(
            header=replace(
                self.header,
                is_response=True,
                authoritative=authoritative,
                recursion_available=recursion_available,
                rcode=rcode,
            ),
            questions=list(self.questions),
        )

    # -- accessors ------------------------------------------------------

    @property
    def question(self) -> Question:
        """The single question; raises when there is not exactly one."""
        if len(self.questions) != 1:
            raise ValueError(
                f"expected exactly one question, found {len(self.questions)}"
            )
        return self.questions[0]

    @property
    def rcode(self) -> int:
        return self.header.rcode

    def answer_rdatas(self, rrtype: Optional[int] = None) -> List[Rdata]:
        """RDATA of answer records, optionally filtered by type."""
        return [
            record.rdata
            for record in self.answers
            if rrtype is None or record.rrtype == rrtype
        ]

    def answers_for(
        self, owner: Union[str, Name], rrtype: int
    ) -> List[ResourceRecord]:
        """Answer records matching an owner name and type."""
        owner = name(owner)
        return [
            record
            for record in self.answers
            if record.owner == owner and record.rrtype == rrtype
        ]

    def referral_targets(self) -> List[Name]:
        """NS targets from the authority section (delegation referral)."""
        from .rdata import NS  # local import to avoid cycle at module load

        return [
            record.rdata.target
            for record in self.authorities
            if isinstance(record.rdata, NS)
        ]

    def glue_address(self, server_name: Union[str, Name]) -> Optional[str]:
        """IPv4 glue for ``server_name`` from the additional section."""
        from .rdata import A

        server_name = name(server_name)
        for record in self.additionals:
            if record.owner == server_name and isinstance(record.rdata, A):
                return record.rdata.address
        return None

    def is_referral(self) -> bool:
        """True for a NOERROR response that only delegates elsewhere."""
        return (
            self.header.rcode == Rcode.NOERROR
            and not self.answers
            and bool(self.referral_targets())
        )

    def all_records(self) -> Iterable[ResourceRecord]:
        """All resource records across the three record sections."""
        yield from self.answers
        yield from self.authorities
        yield from self.additionals

    def summary(self) -> str:
        """One-line human-readable summary, for logs and debugging."""
        question = (
            str(self.questions[0]) if self.questions else "<no question>"
        )
        return (
            f"{'response' if self.header.is_response else 'query'} "
            f"id={self.header.message_id} {question} "
            f"{Rcode.to_text(self.header.rcode)} "
            f"ans={len(self.answers)} auth={len(self.authorities)} "
            f"add={len(self.additionals)}"
        )


def rrset(
    owner: Union[str, Name],
    rdatas: Iterable[Rdata],
    ttl: int = 300,
) -> Tuple[ResourceRecord, ...]:
    """Build a tuple of records sharing an owner and TTL."""
    owner = name(owner)
    return tuple(ResourceRecord(owner, rdata, ttl) for rdata in rdatas)
