"""Authoritative DNS servers.

An :class:`AuthoritativeServer` hosts zones and answers queries with the
behaviours that matter to the paper's measurement:

* normal authoritative answers for hosted zones (including zones that were
  never delegated — the mechanism behind undelegated records);
* configurable behaviour for *unhosted* names: ``REFUSED`` (the common
  default), provider-installed **protective records** (e.g. ClouDNS points
  unknown domains at a warning site), or **recursive fallback** (the
  misconfigured-resolver case the paper must exclude);
* delegation referrals with glue for in-zone cuts.
"""

from __future__ import annotations

import enum
import struct
from typing import Callable, Dict, List, Optional, Tuple, Union

from .message import Message, Rcode, ResourceRecord
from .name import Name, name
from .rdata import NS, RRType, Rdata
from .wire import WireError, _with_message_id, encode_message
from .zone import LookupStatus, Zone

MAX_CNAME_CHAIN = 8

_MESSAGE_ID = struct.Struct("!H")


class _CompiledAnswer:
    """A prebuilt response for one (question, header-flags) shape.

    ``template`` is the fully built response message and ``wire`` its
    encoding; serving a hit is a dict lookup plus (at most) a header
    swap and a 2-byte message-id patch.  Staleness is caught by the
    validators: ``zone.serial`` for zone-backed answers (bumped by
    ``Zone.add``/``Zone.remove``), and the unhosted-policy snapshot for
    synthesized answers.  Entries never survive ``load_zone``/
    ``unload_zone`` — those clear the whole cache.
    """

    __slots__ = ("template", "wire", "zone", "serial", "policy", "extras")

    def __init__(
        self,
        template: Message,
        wire: bytes,
        zone: Optional[Zone],
        policy: "UnhostedPolicy",
        extras: Tuple[object, ...],
    ):
        self.template = template
        self.wire = wire
        self.zone = zone
        self.serial = zone.serial if zone is not None else 0
        self.policy = policy
        self.extras = extras

# Resolvers are imported lazily to avoid a module cycle
# (resolver -> server for tests, server -> resolver for fallback typing).
ResolveCallable = Callable[[Name, int], Optional[Message]]


class UnhostedPolicy(enum.Enum):
    """What the server does for names it hosts no zone for."""

    REFUSED = "refused"
    PROTECTIVE = "protective"
    RECURSIVE = "recursive"


class AuthoritativeServer:
    """A nameserver process serving a set of zones.

    One server object may be registered at several IP addresses (anycast /
    multi-homed nameservers, common among hosting providers).
    """

    def __init__(
        self,
        hostname: Union[str, Name],
        unhosted_policy: UnhostedPolicy = UnhostedPolicy.REFUSED,
        protective_records: Optional[List[Tuple[int, Rdata]]] = None,
        recursive_fallback: Optional[ResolveCallable] = None,
    ):
        self.hostname = name(hostname)
        self.unhosted_policy = unhosted_policy
        #: protective RDATA by rrtype, synthesized at the queried owner name
        self.protective_records = list(protective_records or [])
        self.recursive_fallback = recursive_fallback
        self._zones: Dict[Name, Zone] = {}
        #: suffix index: lowered origin labels -> zone, so the closest
        #: enclosing zone is found in O(labels) instead of O(zones)
        self._origin_index: Dict[Tuple[str, ...], Zone] = {}
        self.addresses: List[str] = []
        #: counters for tests/observability
        self.query_count = 0
        #: compiled answer cache (scan-path fast lane); flushed whenever
        #: the zone map changes
        self._compiled: Dict[object, _CompiledAnswer] = {}
        #: REFUSED-template pool used only when the network offers no
        #: shared ``refused_pool`` (bare-harness tests)
        self._refused_fallback: Dict[object, tuple] = {}
        #: bumped on load_zone/unload_zone — observable by tests as the
        #: generation stamp behind compiled-cache invalidation
        self.generation = 0

    # -- zone management ----------------------------------------------------

    def load_zone(self, zone: Zone) -> None:
        """Serve ``zone``; replaces any existing zone at the same origin."""
        self._zones[zone.origin] = zone
        self._origin_index[zone.origin.lowered_labels] = zone
        self.generation += 1
        self._compiled.clear()

    def unload_zone(self, origin: Union[str, Name]) -> bool:
        """Stop serving the zone at ``origin``; True when it existed."""
        removed = self._zones.pop(name(origin), None)
        if removed is None:
            return False
        del self._origin_index[removed.origin.lowered_labels]
        self.generation += 1
        self._compiled.clear()
        return True

    def zone_for(self, qname: Union[str, Name]) -> Optional[Zone]:
        """The closest enclosing hosted zone for ``qname``, if any."""
        lowered = name(qname).lowered_labels
        index = self._origin_index
        # walk qname, then each ancestor suffix, longest first
        for offset in range(len(lowered) + 1):
            zone = index.get(lowered[offset:])
            if zone is not None:
                return zone
        return None

    def hosts_zone(self, origin: Union[str, Name]) -> bool:
        return name(origin) in self._zones

    def zone_at(self, origin: Union[str, Name]) -> Optional[Zone]:
        """The zone loaded exactly at ``origin``, if any."""
        return self._zones.get(name(origin))

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones.values())

    # -- DnsService protocol -------------------------------------------------

    def handle_dns_query(
        self,
        query: Message,
        src_ip: str,
        network: object,
        query_key: object = None,
    ) -> Optional[Message]:
        """Answer one query.  Implements :class:`~repro.net.network.DnsService`.

        ``query_key`` is the structural key the transport's memoized
        codec computed for this query (None when the codec missed or
        the fast lane is off); the compiled-answer cache shares its
        structure.
        """
        self.query_count += 1
        if not query.questions:
            return query.make_response(rcode=Rcode.FORMERR)
        if getattr(network, "scan_cache_enabled", False):
            return self._answer_compiled(query, network, query_key)
        question = query.questions[0]
        zone = self.zone_for(question.qname)
        if zone is None:
            return self._answer_unhosted(query)
        return self._answer_from_zone(query, zone)

    # -- internals -----------------------------------------------------------

    def _answer_compiled(
        self, query: Message, network: object, query_key: object = None
    ) -> Message:
        """The fast lane: serve a prebuilt answer when one is still valid.

        Answering is a pure function of (question, query flags, zone
        contents, unhosted policy) — except the ``RECURSIVE`` fallback,
        which may resolve through the live network and is therefore
        never compiled.  The response header echoes everything from the
        query header but the rcode/response bits, so a template
        compiled under one message id serves any other id with a header
        swap and a 2-byte wire patch.

        Unhosted ``REFUSED`` answers are special-cased into a
        network-wide pool: their body depends only on the query, not on
        which server refused it, and a scan sends the same question to
        many servers.
        """
        # the transport threads the exact key its own query cache
        # computed; recompute only when it missed
        key = query_key
        if key is None:
            key = (
                query.header.flags_word(),
                tuple(
                    (question.qname.labels, question.qtype, question.qclass)
                    for question in query.questions
                ),
            )
        metrics = getattr(network, "scanpath", None)
        entry = self._compiled.get(key)
        if entry is not None and self._compiled_fresh(entry):
            if metrics is not None:
                metrics.compiled_hits += 1
            return self._serve_template(
                entry.template, entry.wire, query.header.message_id
            )
        question = query.questions[0]
        zone = self.zone_for(question.qname)
        if zone is None and self.unhosted_policy is UnhostedPolicy.REFUSED:
            return self._answer_refused_pooled(query, key, network, metrics)
        if zone is None:
            if (
                self.unhosted_policy is UnhostedPolicy.RECURSIVE
                and self.recursive_fallback is not None
            ):
                return self._answer_unhosted(query)
            response = self._answer_unhosted(query)
        else:
            response = self._answer_from_zone(query, zone)
        if metrics is not None:
            metrics.compiled_misses += 1
        codec = getattr(network, "codec", None)
        try:
            # the shared codec cache makes this nearly free when the
            # same answer body already went to another prober
            wire = (
                codec.encode(response)
                if codec is not None
                else encode_message(response)
            )
        except WireError:
            # unencodable answers surface their error on the transport's
            # own encode, exactly as on the naive path
            return response
        response.compiled_wire = wire
        self._compiled[key] = _CompiledAnswer(
            template=response,
            wire=wire,
            zone=zone,
            policy=self.unhosted_policy,
            extras=(
                ()
                if zone is not None
                else (
                    tuple(self.protective_records),
                    self.recursive_fallback,
                )
            ),
        )
        return response

    @staticmethod
    def _serve_template(
        template: Message, wire: bytes, message_id: int
    ) -> Message:
        """Serve a compiled template under the querier's message id."""
        if message_id == template.header.message_id:
            return template
        response = _with_message_id(template, message_id)
        response.compiled_wire = _MESSAGE_ID.pack(message_id) + wire[2:]
        return response

    def _answer_refused_pooled(
        self, query: Message, key, network: object, metrics
    ) -> Message:
        """Unhosted REFUSED via the network-wide template pool.

        Pool entries are valid forever: the body is a pure echo of the
        query plus the REFUSED rcode, independent of any server state —
        a server whose policy changes away from REFUSED simply stops
        consulting the pool.
        """
        pool = getattr(network, "refused_pool", None)
        if pool is None:
            pool = self._refused_fallback  # network without a pool
        cached = pool.get(key)
        if cached is not None:
            if metrics is not None:
                metrics.compiled_hits += 1
            template, wire = cached
            return self._serve_template(
                template, wire, query.header.message_id
            )
        if metrics is not None:
            metrics.compiled_misses += 1
        response = query.make_response(rcode=Rcode.REFUSED)
        codec = getattr(network, "codec", None)
        try:
            wire = (
                codec.encode(response)
                if codec is not None
                else encode_message(response)
            )
        except WireError:
            return response
        response.compiled_wire = wire
        if len(pool) >= 65536:
            pool.pop(next(iter(pool)))
        pool[key] = (response, wire)
        return response

    def _compiled_fresh(self, entry: _CompiledAnswer) -> bool:
        if entry.zone is not None:
            return entry.zone.serial == entry.serial
        return entry.policy is self.unhosted_policy and entry.extras == (
            tuple(self.protective_records),
            self.recursive_fallback,
        )

    def _answer_unhosted(self, query: Message) -> Message:
        question = query.questions[0]
        if (
            self.unhosted_policy is UnhostedPolicy.PROTECTIVE
            and self.protective_records
        ):
            response = query.make_response(
                rcode=Rcode.NOERROR, authoritative=True
            )
            for rrtype, rdata in self.protective_records:
                if rrtype == question.qtype or question.qtype == RRType.ANY:
                    response.answers.append(
                        ResourceRecord(question.qname, rdata, ttl=300)
                    )
            if not response.answers:
                # Protective data exists but not for this type: NODATA.
                return response
            return response
        if (
            self.unhosted_policy is UnhostedPolicy.RECURSIVE
            and self.recursive_fallback is not None
        ):
            resolved = self.recursive_fallback(question.qname, question.qtype)
            if resolved is None:
                return query.make_response(rcode=Rcode.SERVFAIL)
            response = query.make_response(
                rcode=resolved.header.rcode, recursion_available=True
            )
            response.answers = list(resolved.answers)
            return response
        return query.make_response(rcode=Rcode.REFUSED)

    def _answer_from_zone(self, query: Message, zone: Zone) -> Message:
        question = query.questions[0]
        response = query.make_response(
            rcode=Rcode.NOERROR, authoritative=True
        )
        qname = question.qname
        chain = 0
        while True:
            result = zone.lookup(qname, question.qtype)
            if result.status is LookupStatus.SUCCESS:
                response.answers.extend(result.records)
                return response
            if result.status is LookupStatus.CNAME:
                response.answers.extend(result.records)
                chain += 1
                if chain > MAX_CNAME_CHAIN:
                    return query.make_response(rcode=Rcode.SERVFAIL)
                assert result.cname_target is not None
                if not result.cname_target.is_subdomain_of(zone.origin):
                    # Out-of-zone target: the resolver must chase it.
                    return response
                qname = result.cname_target
                continue
            if result.status is LookupStatus.DELEGATION:
                referral = query.make_response(rcode=Rcode.NOERROR)
                referral.answers = list(response.answers)
                referral.authorities.extend(result.records)
                self._add_glue(referral, zone, result.records)
                return referral
            if result.status is LookupStatus.NODATA:
                self._add_soa(response, zone)
                return response
            # NXDOMAIN — but a CNAME already answered means NOERROR.
            if response.answers:
                return response
            nx = query.make_response(rcode=Rcode.NXDOMAIN, authoritative=True)
            self._add_soa(nx, zone)
            return nx

    def _add_soa(self, response: Message, zone: Zone) -> None:
        for record in zone.rrset(zone.origin, RRType.SOA):
            response.authorities.append(record)

    def _add_glue(
        self,
        response: Message,
        zone: Zone,
        ns_records: Tuple[ResourceRecord, ...],
    ) -> None:
        for ns_record in ns_records:
            rdata = ns_record.rdata
            if not isinstance(rdata, NS):
                continue
            if not rdata.target.is_subdomain_of(zone.origin):
                continue
            for glue in zone.rrset(rdata.target, RRType.A):
                response.additionals.append(glue)


def make_protective_server(
    hostname: Union[str, Name],
    warning_ip: str,
    warning_text: str = "this domain is not hosted here",
) -> AuthoritativeServer:
    """A server that answers unhosted names with protective records.

    Mirrors the ClouDNS-style behaviour the paper's stage 1 must learn and
    exclude: an A record pointing at a warning site plus an explanatory TXT.
    """
    from .rdata import A, TXT

    return AuthoritativeServer(
        hostname,
        unhosted_policy=UnhostedPolicy.PROTECTIVE,
        protective_records=[
            (RRType.A, A(warning_ip)),
            (RRType.TXT, TXT.from_value(warning_text)),
        ],
    )
