"""Authoritative DNS servers.

An :class:`AuthoritativeServer` hosts zones and answers queries with the
behaviours that matter to the paper's measurement:

* normal authoritative answers for hosted zones (including zones that were
  never delegated — the mechanism behind undelegated records);
* configurable behaviour for *unhosted* names: ``REFUSED`` (the common
  default), provider-installed **protective records** (e.g. ClouDNS points
  unknown domains at a warning site), or **recursive fallback** (the
  misconfigured-resolver case the paper must exclude);
* delegation referrals with glue for in-zone cuts.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple, Union

from .message import Message, Rcode, ResourceRecord
from .name import Name, name
from .rdata import NS, RRType, Rdata
from .zone import LookupStatus, Zone

MAX_CNAME_CHAIN = 8

# Resolvers are imported lazily to avoid a module cycle
# (resolver -> server for tests, server -> resolver for fallback typing).
ResolveCallable = Callable[[Name, int], Optional[Message]]


class UnhostedPolicy(enum.Enum):
    """What the server does for names it hosts no zone for."""

    REFUSED = "refused"
    PROTECTIVE = "protective"
    RECURSIVE = "recursive"


class AuthoritativeServer:
    """A nameserver process serving a set of zones.

    One server object may be registered at several IP addresses (anycast /
    multi-homed nameservers, common among hosting providers).
    """

    def __init__(
        self,
        hostname: Union[str, Name],
        unhosted_policy: UnhostedPolicy = UnhostedPolicy.REFUSED,
        protective_records: Optional[List[Tuple[int, Rdata]]] = None,
        recursive_fallback: Optional[ResolveCallable] = None,
    ):
        self.hostname = name(hostname)
        self.unhosted_policy = unhosted_policy
        #: protective RDATA by rrtype, synthesized at the queried owner name
        self.protective_records = list(protective_records or [])
        self.recursive_fallback = recursive_fallback
        self._zones: Dict[Name, Zone] = {}
        #: suffix index: lowered origin labels -> zone, so the closest
        #: enclosing zone is found in O(labels) instead of O(zones)
        self._origin_index: Dict[Tuple[str, ...], Zone] = {}
        self.addresses: List[str] = []
        #: counters for tests/observability
        self.query_count = 0

    # -- zone management ----------------------------------------------------

    def load_zone(self, zone: Zone) -> None:
        """Serve ``zone``; replaces any existing zone at the same origin."""
        self._zones[zone.origin] = zone
        self._origin_index[zone.origin.lowered_labels] = zone

    def unload_zone(self, origin: Union[str, Name]) -> bool:
        """Stop serving the zone at ``origin``; True when it existed."""
        removed = self._zones.pop(name(origin), None)
        if removed is None:
            return False
        del self._origin_index[removed.origin.lowered_labels]
        return True

    def zone_for(self, qname: Union[str, Name]) -> Optional[Zone]:
        """The closest enclosing hosted zone for ``qname``, if any."""
        lowered = name(qname).lowered_labels
        index = self._origin_index
        # walk qname, then each ancestor suffix, longest first
        for offset in range(len(lowered) + 1):
            zone = index.get(lowered[offset:])
            if zone is not None:
                return zone
        return None

    def hosts_zone(self, origin: Union[str, Name]) -> bool:
        return name(origin) in self._zones

    def zone_at(self, origin: Union[str, Name]) -> Optional[Zone]:
        """The zone loaded exactly at ``origin``, if any."""
        return self._zones.get(name(origin))

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones.values())

    # -- DnsService protocol -------------------------------------------------

    def handle_dns_query(
        self, query: Message, src_ip: str, network: object
    ) -> Optional[Message]:
        """Answer one query.  Implements :class:`~repro.net.network.DnsService`."""
        self.query_count += 1
        if not query.questions:
            return query.make_response(rcode=Rcode.FORMERR)
        question = query.questions[0]
        zone = self.zone_for(question.qname)
        if zone is None:
            return self._answer_unhosted(query)
        return self._answer_from_zone(query, zone)

    # -- internals -----------------------------------------------------------

    def _answer_unhosted(self, query: Message) -> Message:
        question = query.questions[0]
        if (
            self.unhosted_policy is UnhostedPolicy.PROTECTIVE
            and self.protective_records
        ):
            response = query.make_response(
                rcode=Rcode.NOERROR, authoritative=True
            )
            for rrtype, rdata in self.protective_records:
                if rrtype == question.qtype or question.qtype == RRType.ANY:
                    response.answers.append(
                        ResourceRecord(question.qname, rdata, ttl=300)
                    )
            if not response.answers:
                # Protective data exists but not for this type: NODATA.
                return response
            return response
        if (
            self.unhosted_policy is UnhostedPolicy.RECURSIVE
            and self.recursive_fallback is not None
        ):
            resolved = self.recursive_fallback(question.qname, question.qtype)
            if resolved is None:
                return query.make_response(rcode=Rcode.SERVFAIL)
            response = query.make_response(
                rcode=resolved.header.rcode, recursion_available=True
            )
            response.answers = list(resolved.answers)
            return response
        return query.make_response(rcode=Rcode.REFUSED)

    def _answer_from_zone(self, query: Message, zone: Zone) -> Message:
        question = query.questions[0]
        response = query.make_response(
            rcode=Rcode.NOERROR, authoritative=True
        )
        qname = question.qname
        chain = 0
        while True:
            result = zone.lookup(qname, question.qtype)
            if result.status is LookupStatus.SUCCESS:
                response.answers.extend(result.records)
                return response
            if result.status is LookupStatus.CNAME:
                response.answers.extend(result.records)
                chain += 1
                if chain > MAX_CNAME_CHAIN:
                    return query.make_response(rcode=Rcode.SERVFAIL)
                assert result.cname_target is not None
                if not result.cname_target.is_subdomain_of(zone.origin):
                    # Out-of-zone target: the resolver must chase it.
                    return response
                qname = result.cname_target
                continue
            if result.status is LookupStatus.DELEGATION:
                referral = query.make_response(rcode=Rcode.NOERROR)
                referral.answers = list(response.answers)
                referral.authorities.extend(result.records)
                self._add_glue(referral, zone, result.records)
                return referral
            if result.status is LookupStatus.NODATA:
                self._add_soa(response, zone)
                return response
            # NXDOMAIN — but a CNAME already answered means NOERROR.
            if response.answers:
                return response
            nx = query.make_response(rcode=Rcode.NXDOMAIN, authoritative=True)
            self._add_soa(nx, zone)
            return nx

    def _add_soa(self, response: Message, zone: Zone) -> None:
        for record in zone.rrset(zone.origin, RRType.SOA):
            response.authorities.append(record)

    def _add_glue(
        self,
        response: Message,
        zone: Zone,
        ns_records: Tuple[ResourceRecord, ...],
    ) -> None:
        for ns_record in ns_records:
            rdata = ns_record.rdata
            if not isinstance(rdata, NS):
                continue
            if not rdata.target.is_subdomain_of(zone.origin):
                continue
            for glue in zone.rrset(rdata.target, RRType.A):
                response.additionals.append(glue)


def make_protective_server(
    hostname: Union[str, Name],
    warning_ip: str,
    warning_text: str = "this domain is not hosted here",
) -> AuthoritativeServer:
    """A server that answers unhosted names with protective records.

    Mirrors the ClouDNS-style behaviour the paper's stage 1 must learn and
    exclude: an A record pointing at a warning site plus an explanatory TXT.
    """
    from .rdata import A, TXT

    return AuthoritativeServer(
        hostname,
        unhosted_policy=UnhostedPolicy.PROTECTIVE,
        protective_records=[
            (RRType.A, A(warning_ip)),
            (RRType.TXT, TXT.from_value(warning_text)),
        ],
    )
