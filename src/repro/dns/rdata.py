"""DNS resource data (RDATA) types.

Each record type the library uses is a small immutable dataclass with a
presentation-format parser/renderer and a wire-format encoder/decoder.
A registry maps RR type codes to classes so :mod:`repro.dns.wire` can
dispatch generically.

Only the record types the paper's measurement touches are implemented
(A, AAAA, NS, CNAME, SOA, MX, TXT, PTR) — URHunter collects undelegated
A and TXT records, correct-record collection needs NS/SOA/CNAME, and the
SPF case study rides on TXT.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Tuple, Type, Union

from .name import Name, name


class RdataError(ValueError):
    """Raised for malformed RDATA in either presentation or wire format."""


class RRType:
    """RR type codes (RFC 1035 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    ANY = 255

    _NAMES: ClassVar[Dict[int, str]] = {}

    @classmethod
    def to_text(cls, code: int) -> str:
        if not cls._NAMES:
            cls._NAMES = {
                value: key
                for key, value in vars(cls).items()
                if isinstance(value, int)
            }
        return cls._NAMES.get(code, f"TYPE{code}")

    @classmethod
    def from_text(cls, text: str) -> int:
        text = text.upper()
        value = getattr(cls, text, None)
        if isinstance(value, int):
            return value
        if text.startswith("TYPE"):
            return int(text[4:])
        raise RdataError(f"unknown RR type {text!r}")


class RRClass:
    """RR class codes; only IN is used operationally."""

    IN = 1
    CH = 3
    ANY = 255


@dataclass(frozen=True)
class Rdata:
    """Base class for RDATA values.

    Subclasses set :attr:`rrtype` and implement ``to_wire`` /
    ``from_wire`` / ``to_text`` / ``from_text``.
    """

    rrtype: ClassVar[int] = 0

    def to_wire(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, data: bytes) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    @classmethod
    def from_text(cls, text: str) -> "Rdata":
        raise NotImplementedError


@dataclass(frozen=True)
class A(Rdata):
    """An IPv4 address record."""

    address: str

    rrtype: ClassVar[int] = RRType.A

    def __post_init__(self) -> None:
        try:
            ipaddress.IPv4Address(self.address)
        except ipaddress.AddressValueError as exc:
            raise RdataError(f"invalid IPv4 address {self.address!r}") from exc

    def to_wire(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    @classmethod
    def from_wire(cls, data: bytes) -> "A":
        if len(data) != 4:
            raise RdataError(f"A RDATA must be 4 octets, got {len(data)}")
        return cls(str(ipaddress.IPv4Address(data)))

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_text(cls, text: str) -> "A":
        return cls(text.strip())


@dataclass(frozen=True)
class AAAA(Rdata):
    """An IPv6 address record."""

    address: str

    rrtype: ClassVar[int] = RRType.AAAA

    def __post_init__(self) -> None:
        try:
            packed = ipaddress.IPv6Address(self.address)
        except ipaddress.AddressValueError as exc:
            raise RdataError(f"invalid IPv6 address {self.address!r}") from exc
        object.__setattr__(self, "address", str(packed))

    def to_wire(self) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    @classmethod
    def from_wire(cls, data: bytes) -> "AAAA":
        if len(data) != 16:
            raise RdataError(f"AAAA RDATA must be 16 octets, got {len(data)}")
        return cls(str(ipaddress.IPv6Address(data)))

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_text(cls, text: str) -> "AAAA":
        return cls(text.strip())


def _encode_name_uncompressed(target: Name) -> bytes:
    out = bytearray()
    for label in target.labels:
        raw = label.encode("ascii")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def _decode_name_uncompressed(data: bytes) -> Name:
    labels: List[str] = []
    offset = 0
    while True:
        if offset >= len(data):
            raise RdataError("truncated name in RDATA")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        if length > 63:
            raise RdataError("compression pointers not allowed inside RDATA here")
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    if offset != len(data):
        raise RdataError("trailing bytes after name in RDATA")
    return Name(labels)


@dataclass(frozen=True)
class NS(Rdata):
    """A nameserver record delegating to ``target``."""

    target: Name

    rrtype: ClassVar[int] = RRType.NS

    def to_wire(self) -> bytes:
        return _encode_name_uncompressed(self.target)

    @classmethod
    def from_wire(cls, data: bytes) -> "NS":
        return cls(_decode_name_uncompressed(data))

    def to_text(self) -> str:
        return self.target.to_text(trailing_dot=True)

    @classmethod
    def from_text(cls, text: str) -> "NS":
        return cls(name(text.strip()))


@dataclass(frozen=True)
class CNAME(Rdata):
    """A canonical-name alias record."""

    target: Name

    rrtype: ClassVar[int] = RRType.CNAME

    def to_wire(self) -> bytes:
        return _encode_name_uncompressed(self.target)

    @classmethod
    def from_wire(cls, data: bytes) -> "CNAME":
        return cls(_decode_name_uncompressed(data))

    def to_text(self) -> str:
        return self.target.to_text(trailing_dot=True)

    @classmethod
    def from_text(cls, text: str) -> "CNAME":
        return cls(name(text.strip()))


@dataclass(frozen=True)
class PTR(Rdata):
    """A pointer record (reverse DNS)."""

    target: Name

    rrtype: ClassVar[int] = RRType.PTR

    def to_wire(self) -> bytes:
        return _encode_name_uncompressed(self.target)

    @classmethod
    def from_wire(cls, data: bytes) -> "PTR":
        return cls(_decode_name_uncompressed(data))

    def to_text(self) -> str:
        return self.target.to_text(trailing_dot=True)

    @classmethod
    def from_text(cls, text: str) -> "PTR":
        return cls(name(text.strip()))


@dataclass(frozen=True)
class SOA(Rdata):
    """A start-of-authority record."""

    mname: Name
    rname: Name
    serial: int
    refresh: int = 7200
    retry: int = 900
    expire: int = 1209600
    minimum: int = 300

    rrtype: ClassVar[int] = RRType.SOA

    def to_wire(self) -> bytes:
        return (
            _encode_name_uncompressed(self.mname)
            + _encode_name_uncompressed(self.rname)
            + struct.pack(
                "!IIIII",
                self.serial,
                self.refresh,
                self.retry,
                self.expire,
                self.minimum,
            )
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "SOA":
        # Names inside SOA are variable-length; walk them.
        def read_name(offset: int) -> Tuple[Name, int]:
            labels: List[str] = []
            while True:
                if offset >= len(data):
                    raise RdataError("truncated SOA")
                length = data[offset]
                offset += 1
                if length == 0:
                    return Name(labels), offset
                labels.append(data[offset : offset + length].decode("ascii"))
                offset += length

        mname, offset = read_name(0)
        rname, offset = read_name(offset)
        if len(data) - offset != 20:
            raise RdataError("bad SOA fixed fields")
        serial, refresh, retry, expire, minimum = struct.unpack(
            "!IIIII", data[offset:]
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text(trailing_dot=True)} "
            f"{self.rname.to_text(trailing_dot=True)} "
            f"{self.serial} {self.refresh} {self.retry} "
            f"{self.expire} {self.minimum}"
        )

    @classmethod
    def from_text(cls, text: str) -> "SOA":
        parts = text.split()
        if len(parts) != 7:
            raise RdataError(f"SOA needs 7 fields, got {len(parts)}")
        return cls(
            name(parts[0]),
            name(parts[1]),
            *(int(part) for part in parts[2:]),
        )


@dataclass(frozen=True)
class MX(Rdata):
    """A mail-exchanger record."""

    preference: int
    exchange: Name

    rrtype: ClassVar[int] = RRType.MX

    def __post_init__(self) -> None:
        if not 0 <= self.preference <= 0xFFFF:
            raise RdataError(f"MX preference out of range: {self.preference}")

    def to_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + _encode_name_uncompressed(
            self.exchange
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "MX":
        if len(data) < 3:
            raise RdataError("truncated MX")
        (preference,) = struct.unpack("!H", data[:2])
        return cls(preference, _decode_name_uncompressed(data[2:]))

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text(trailing_dot=True)}"

    @classmethod
    def from_text(cls, text: str) -> "MX":
        parts = text.split(None, 1)
        if len(parts) != 2:
            raise RdataError(f"MX needs preference and exchange: {text!r}")
        return cls(int(parts[0]), name(parts[1]))


@dataclass(frozen=True)
class TXT(Rdata):
    """A text record: one or more character strings.

    The paper's TXT analysis (SPF/DMARC classification, embedded IP
    extraction) operates on :meth:`value`, the concatenation of all
    strings, mirroring how SPF (RFC 7208 section 3.3) treats multiple
    strings.
    """

    strings: Tuple[str, ...]

    rrtype: ClassVar[int] = RRType.TXT

    def __post_init__(self) -> None:
        if not self.strings:
            raise RdataError("TXT requires at least one string")
        for item in self.strings:
            if len(item.encode("utf-8")) > 255:
                raise RdataError("TXT character-string longer than 255 octets")

    @classmethod
    def from_value(cls, value: str) -> "TXT":
        """Build a TXT record from an arbitrary-length string.

        The value is chunked into 255-octet character strings, the inverse
        of :meth:`value`.
        """
        raw = value.encode("utf-8")
        if not raw:
            return cls(("",))
        chunks = [
            raw[index : index + 255].decode("utf-8", errors="surrogateescape")
            for index in range(0, len(raw), 255)
        ]
        return cls(tuple(chunks))

    @property
    def value(self) -> str:
        """All character strings concatenated."""
        return "".join(self.strings)

    def to_wire(self) -> bytes:
        out = bytearray()
        for item in self.strings:
            raw = item.encode("utf-8")
            out.append(len(raw))
            out.extend(raw)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes) -> "TXT":
        strings: List[str] = []
        offset = 0
        while offset < len(data):
            length = data[offset]
            offset += 1
            if offset + length > len(data):
                raise RdataError("truncated TXT character-string")
            strings.append(
                data[offset : offset + length].decode(
                    "utf-8", errors="surrogateescape"
                )
            )
            offset += length
        if not strings:
            raise RdataError("empty TXT RDATA")
        return cls(tuple(strings))

    def to_text(self) -> str:
        return " ".join(
            '"' + item.replace("\\", "\\\\").replace('"', '\\"') + '"'
            for item in self.strings
        )

    @classmethod
    def from_text(cls, text: str) -> "TXT":
        strings = _parse_quoted_strings(text)
        if not strings:
            raise RdataError(f"no strings in TXT text {text!r}")
        return cls(tuple(strings))


def _parse_quoted_strings(text: str) -> List[str]:
    """Parse zone-file style quoted character strings.

    Unquoted whitespace-separated tokens are also accepted, matching
    common zone-file practice.
    """
    strings: List[str] = []
    index = 0
    length = len(text)
    while index < length:
        while index < length and text[index].isspace():
            index += 1
        if index >= length:
            break
        if text[index] == '"':
            index += 1
            current: List[str] = []
            while index < length and text[index] != '"':
                if text[index] == "\\" and index + 1 < length:
                    index += 1
                current.append(text[index])
                index += 1
            if index >= length:
                raise RdataError(f"unterminated string in {text!r}")
            index += 1  # consume closing quote
            strings.append("".join(current))
        else:
            start = index
            while index < length and not text[index].isspace():
                index += 1
            strings.append(text[start:index])
    return strings


#: Registry of implemented RDATA classes by type code.
RDATA_CLASSES: Dict[int, Type[Rdata]] = {
    cls.rrtype: cls for cls in (A, AAAA, NS, CNAME, PTR, SOA, MX, TXT)
}


def rdata_from_text(rrtype: Union[int, str], text: str) -> Rdata:
    """Parse RDATA presentation text for a given type."""
    code = RRType.from_text(rrtype) if isinstance(rrtype, str) else rrtype
    cls = RDATA_CLASSES.get(code)
    if cls is None:
        raise RdataError(f"unsupported RR type {RRType.to_text(code)}")
    return cls.from_text(text)


def rdata_from_wire(rrtype: int, data: bytes) -> Rdata:
    """Decode RDATA wire bytes for a given type."""
    cls = RDATA_CLASSES.get(rrtype)
    if cls is None:
        raise RdataError(f"unsupported RR type {RRType.to_text(rrtype)}")
    return cls.from_wire(data)
