"""Zone-file serialization: render and parse RFC 1035-style master files.

Provider portals import/export zone files; having a real parser also
makes scenario fixtures and test data readable.  Supported syntax is the
practical subset: ``$ORIGIN`` and ``$TTL`` directives, relative and
absolute owner names, ``@`` for the origin, per-record TTLs, the IN
class, comments, and the RDATA types in :mod:`repro.dns.rdata`.
Multi-line parentheses are not supported (write records on one line).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .name import Name, name
from .rdata import RRType, RdataError, rdata_from_text
from .zone import Zone


class ZoneFileError(ValueError):
    """Raised for unparseable zone-file content."""


def render_zone(zone: Zone, include_directives: bool = True) -> str:
    """Serialize a zone to master-file text (records in canonical order)."""
    lines: List[str] = []
    if include_directives:
        lines.append(f"$ORIGIN {zone.origin.to_text(trailing_dot=True)}")
    records = sorted(
        zone.records(),
        key=lambda record: (record.owner, record.rrtype, record.rdata.to_text()),
    )
    for record in records:
        lines.append(
            f"{record.owner.to_text(trailing_dot=True)} {record.ttl} IN "
            f"{RRType.to_text(record.rrtype)} {record.rdata.to_text()}"
        )
    return "\n".join(lines) + "\n"


def parse_zone(
    text: str, origin: Optional[Union[str, Name]] = None
) -> Zone:
    """Parse master-file text into a :class:`Zone`.

    ``origin`` seeds the initial ``$ORIGIN``; a ``$ORIGIN`` directive in
    the file overrides it.  Raises :class:`ZoneFileError` with the line
    number on any malformed line.
    """
    current_origin: Optional[Name] = name(origin) if origin else None
    default_ttl = 300
    parsed: List[Tuple[Name, int, int, str]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("$"):
            current_origin, default_ttl = _apply_directive(
                line, current_origin, default_ttl, line_number
            )
            continue
        if current_origin is None:
            raise ZoneFileError(
                f"line {line_number}: record before any $ORIGIN"
            )
        owner, ttl, rrtype, rdata_text = _parse_record_line(
            line, current_origin, default_ttl, line_number
        )
        parsed.append((owner, ttl, rrtype, rdata_text))
    if current_origin is None:
        raise ZoneFileError("zone file defines no origin")
    zone = Zone(current_origin)
    for owner, ttl, rrtype, rdata_text in parsed:
        try:
            zone.add(owner, rdata_from_text(rrtype, rdata_text), ttl)
        except (RdataError, ValueError) as exc:
            raise ZoneFileError(f"bad record at {owner}: {exc}") from exc
    return zone


def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment, respecting quoted strings."""
    out: List[str] = []
    in_quotes = False
    for char in line:
        if char == '"':
            in_quotes = not in_quotes
        if char == ";" and not in_quotes:
            break
        out.append(char)
    return "".join(out)


def _apply_directive(
    line: str,
    current_origin: Optional[Name],
    default_ttl: int,
    line_number: int,
) -> Tuple[Optional[Name], int]:
    parts = line.split()
    directive = parts[0].upper()
    if directive == "$ORIGIN":
        if len(parts) != 2:
            raise ZoneFileError(f"line {line_number}: bad $ORIGIN")
        return name(parts[1]), default_ttl
    if directive == "$TTL":
        if len(parts) != 2 or not parts[1].isdigit():
            raise ZoneFileError(f"line {line_number}: bad $TTL")
        return current_origin, int(parts[1])
    raise ZoneFileError(
        f"line {line_number}: unsupported directive {parts[0]}"
    )


def _parse_record_line(
    line: str, origin: Name, default_ttl: int, line_number: int
) -> Tuple[Name, int, int, str]:
    parts = line.split(None, 1)
    if len(parts) < 2:
        raise ZoneFileError(f"line {line_number}: incomplete record")
    owner_token, rest = parts
    if owner_token == "@":
        owner = origin
    elif owner_token.endswith("."):
        owner = name(owner_token)
    else:
        owner = origin.prepend(*name(owner_token).labels)

    ttl = default_ttl
    tokens = rest.split(None, 1)
    if tokens and tokens[0].isdigit():
        ttl = int(tokens[0])
        if len(tokens) < 2:
            raise ZoneFileError(f"line {line_number}: missing type")
        rest = tokens[1]
        tokens = rest.split(None, 1)
    if tokens and tokens[0].upper() == "IN":
        if len(tokens) < 2:
            raise ZoneFileError(f"line {line_number}: missing type")
        rest = tokens[1]
        tokens = rest.split(None, 1)
    if not tokens:
        raise ZoneFileError(f"line {line_number}: missing type")
    type_token = tokens[0]
    rdata_text = tokens[1] if len(tokens) > 1 else ""
    try:
        rrtype = RRType.from_text(type_token)
    except RdataError as exc:
        raise ZoneFileError(
            f"line {line_number}: unknown type {type_token!r}"
        ) from exc
    if not rdata_text:
        raise ZoneFileError(f"line {line_number}: missing RDATA")
    return owner, ttl, rrtype, rdata_text


def roundtrip_zone(zone: Zone) -> Zone:
    """Render then re-parse; used by tests and the provider export path."""
    return parse_zone(render_zone(zone))
