"""Public suffix list handling.

The paper's Appendix C distinguishes second-level domains (SLDs) from
effective TLDs (eTLDs) — public suffixes such as ``gov.cn`` operated by
registries — because hosting providers treat them differently and attackers
can claim eTLDs to shadow entire namespaces.

We embed a snapshot of the public suffix list covering the suffixes that
appear in the paper plus a representative sample, and support the standard
algorithm (longest matching rule, wildcard rules, exception rules) from
https://publicsuffix.org/list/.  Callers may also load a custom rule set.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Union

from .name import Name, name

#: Suffix rules shipped by default.  A leading ``*.`` is a wildcard rule and
#: a leading ``!`` is an exception rule, as in the real PSL format.
DEFAULT_RULES = (
    # Generic TLDs.
    "com", "net", "org", "info", "biz", "io", "co", "dev", "app", "xyz",
    "online", "site", "top", "shop", "cloud", "me", "tv", "cc",
    # Country TLDs used in the paper and common ccTLD second levels.
    "cn", "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn", "ac.cn",
    "uk", "co.uk", "org.uk", "ac.uk", "gov.uk",
    "jp", "co.jp", "ne.jp", "ac.jp", "go.jp",
    "kr", "co.kr", "go.kr",
    "kp", "gov.kp", "edu.kp",
    "de", "fr", "cci.fr", "nl", "ru", "com.ru", "br", "com.br", "gov.br",
    "in", "co.in", "gov.in", "au", "com.au", "gov.au",
    "gd", "gov.gd", "fm", "edu.fm", "na", "info.na",
    "us", "ca", "it", "es", "se", "ch", "pl", "tr", "com.tr",
    "mx", "com.mx", "ar", "com.ar", "za", "co.za",
    # Wildcard and exception rules (mirroring real PSL constructs).
    "*.ck", "!www.ck",
    "*.bd",
)


class PublicSuffixList:
    """A public suffix list with the standard matching algorithm.

    >>> psl = PublicSuffixList()
    >>> str(psl.registrable_domain(name("www.example.gov.cn")))
    'example.gov.cn'
    >>> psl.is_public_suffix(name("gov.cn"))
    True
    """

    def __init__(self, rules: Optional[Iterable[str]] = None):
        self._exact: Set[Name] = set()
        self._wildcards: Set[Name] = set()
        self._exceptions: Set[Name] = set()
        for rule in rules if rules is not None else DEFAULT_RULES:
            self.add_rule(rule)

    def add_rule(self, rule: str) -> None:
        """Add one PSL rule in presentation format."""
        rule = rule.strip().lower()
        if not rule:
            return
        if rule.startswith("!"):
            self._exceptions.add(name(rule[1:]))
        elif rule.startswith("*."):
            self._wildcards.add(name(rule[2:]))
        else:
            self._exact.add(name(rule))

    def public_suffix(self, domain: Union[str, Name]) -> Optional[Name]:
        """The longest public suffix of ``domain``, or None if there is none.

        Follows the PSL algorithm: exception rules beat wildcard rules,
        longer matches beat shorter ones, and an unlisted TLD is treated
        as a suffix of one label (the ``*`` implicit rule).
        """
        domain = name(domain)
        if domain.is_root:
            return None
        best: Optional[Name] = None
        candidates = [domain, *domain.ancestors()]
        for candidate in candidates:
            if candidate.is_root:
                continue
            if candidate in self._exceptions:
                # An exception rule makes the candidate registrable; its
                # parent is the suffix.
                return candidate.parent()
            if candidate in self._exact:
                if best is None or len(candidate) > len(best):
                    best = candidate
            if len(candidate) >= 2 and candidate.parent() in self._wildcards:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is None:
            # Implicit "*" rule: the TLD itself is the suffix.
            best = domain.tld()
        return best

    def is_public_suffix(self, domain: Union[str, Name]) -> bool:
        """True when ``domain`` itself is a public suffix (an eTLD)."""
        domain = name(domain)
        suffix = self.public_suffix(domain)
        return suffix == domain

    def registrable_domain(self, domain: Union[str, Name]) -> Optional[Name]:
        """The eTLD+1 of ``domain`` (the unit a registrant can register).

        None when ``domain`` is itself a public suffix or the root.
        """
        domain = name(domain)
        suffix = self.public_suffix(domain)
        if suffix is None or suffix == domain:
            return None
        prefix = domain.relativize(suffix)
        return suffix.prepend(prefix[-1])

    def is_registrable(self, domain: Union[str, Name]) -> bool:
        """True when ``domain`` is exactly an eTLD+1."""
        return self.registrable_domain(domain) == name(domain)


#: Shared default instance used when callers do not supply their own.
DEFAULT_PSL = PublicSuffixList()
