"""Domain name representation and manipulation.

DNS names are sequences of labels, case-insensitive for comparison but
case-preserving on the wire (RFC 1035 section 2.3.3, RFC 4343).  This module
provides an immutable :class:`Name` value type used throughout the library:
zone files, wire encoding, hosting-provider APIs, and the URHunter pipeline
all speak :class:`Name`.

The empty name (zero labels) is the DNS root and renders as ``"."``.
"""

from __future__ import annotations

import functools
from typing import Iterable, Iterator, Optional, Tuple, Union

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

_ALLOWED_LABEL_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz" "ABCDEFGHIJKLMNOPQRSTUVWXYZ" "0123456789-_*"
)


class NameError_(ValueError):
    """Raised for malformed domain names.

    Named with a trailing underscore to avoid shadowing the builtin
    ``NameError`` while staying recognizable at call sites.
    """


@functools.total_ordering
class Name:
    """An immutable, normalized DNS domain name.

    Instances compare case-insensitively and hash on the lowercased labels,
    so names can be used directly as dictionary keys in zone and cache
    structures.  Ordering is the DNSSEC canonical ordering (RFC 4034
    section 6.1): by reversed label sequence, lowercased.

    Construct with :meth:`from_text` (or the :func:`name` convenience
    function) rather than passing raw labels in most application code.
    """

    __slots__ = ("_labels", "_lower", "_hash")

    def __init__(self, labels: Iterable[str]):
        labels = tuple(labels)
        for label in labels:
            _validate_label(label)
        wire_length = sum(len(label) + 1 for label in labels) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise NameError_(
                f"name too long: {wire_length} octets > {MAX_NAME_LENGTH}"
            )
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(
            self, "_lower", tuple(label.lower() for label in labels)
        )
        object.__setattr__(self, "_hash", hash(self._lower))

    # -- construction ---------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a dotted name; a trailing dot is accepted and ignored.

        ``""`` and ``"."`` both denote the root.  Results are interned:
        the pipeline parses the same domain text over and over (every
        record, checkpoint, and report round-trip), and Name is
        immutable, so equal texts may safely share one instance.
        """
        return _parse_interned(text)

    # -- core protocol --------------------------------------------------

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Name is immutable")

    @property
    def labels(self) -> Tuple[str, ...]:
        """The labels in presentation order (leftmost first)."""
        return self._labels

    @property
    def lowered_labels(self) -> Tuple[str, ...]:
        """The lowercased labels — the comparison/hash key.

        Suffix slices of this tuple key case-insensitive ancestor
        lookups (e.g. zone indexes) without building Name objects.
        """
        return self._lower

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._lower == other._lower

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return tuple(reversed(self._lower)) < tuple(reversed(other._lower))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels)

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    # -- queries ---------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self, trailing_dot: bool = False) -> str:
        """Render in presentation format.

        With ``trailing_dot`` the output is fully qualified (``a.b.``);
        the root always renders as ``"."``.
        """
        if self.is_root:
            return "."
        text = str(self)
        return text + "." if trailing_dot else text

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        Raises :class:`NameError_` on the root, which has no parent.
        """
        if self.is_root:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def ancestors(self) -> Iterator["Name"]:
        """Yield every proper ancestor, nearest first, ending at the root.

        ``a.b.c`` yields ``b.c``, ``c``, ``.``.
        """
        current = self
        while not current.is_root:
            current = current.parent()
            yield current

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` is ``other`` or falls underneath it."""
        if len(other) > len(self):
            return False
        offset = len(self) - len(other)
        return self._lower[offset:] == other._lower

    def is_proper_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` falls strictly underneath ``other``."""
        return len(self) > len(other) and self.is_subdomain_of(other)

    def relativize(self, origin: "Name") -> Tuple[str, ...]:
        """Labels of ``self`` relative to ``origin``.

        Raises :class:`NameError_` when ``self`` is not a subdomain
        of ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not a subdomain of {origin}")
        return self._labels[: len(self) - len(origin)]

    def prepend(self, *labels: str) -> "Name":
        """Return a new name with ``labels`` added on the left."""
        return Name(tuple(labels) + self._labels)

    def split(self, depth: int) -> Tuple["Name", "Name"]:
        """Split into (prefix, suffix) where the suffix has ``depth`` labels."""
        if depth < 0 or depth > len(self):
            raise NameError_(f"cannot split {self} at depth {depth}")
        cut = len(self) - depth
        return Name(self._labels[:cut]), Name(self._labels[cut:])

    def tld(self) -> Optional["Name"]:
        """The rightmost label as a name, or None for the root."""
        if self.is_root:
            return None
        return Name(self._labels[-1:])


def _validate_label(label: str) -> None:
    if not label:
        raise NameError_("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(
            f"label too long: {len(label)} > {MAX_LABEL_LENGTH}: {label!r}"
        )
    # Permissive LDH plus underscore: real DNS allows arbitrary octets, and
    # operational names (e.g. _dmarc, SRV owners) rely on underscores.
    if not set(label) <= _ALLOWED_LABEL_CHARS:
        bad = set(label) - _ALLOWED_LABEL_CHARS
        raise NameError_(f"label contains invalid characters {bad!r}: {label!r}")
    if label.startswith("-") or label.endswith("-"):
        raise NameError_(f"label may not start or end with a hyphen: {label!r}")


#: The DNS root name.
ROOT = Name(())


@functools.lru_cache(maxsize=65536)
def _parse_interned(text: str) -> Name:
    """The uncached parse behind :meth:`Name.from_text`.

    Raised :class:`NameError_` is not cached — ``lru_cache`` only
    stores successful results, so malformed inputs stay cheap to reject
    repeatedly without poisoning the cache.
    """
    if text in ("", "."):
        return ROOT
    if text.endswith("."):
        text = text[:-1]
    if not text:
        return ROOT
    labels = text.split(".")
    if any(not label for label in labels):
        raise NameError_(f"empty label in name: {text!r}")
    return Name(labels)


def name(value: Union[str, Name]) -> Name:
    """Coerce a string or :class:`Name` to a :class:`Name`.

    The standard entry point for APIs that accept either form.
    """
    if isinstance(value, Name):
        return value
    return Name.from_text(value)
