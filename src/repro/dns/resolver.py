"""Recursive, stub, and open resolvers over the simulated internet.

The recursive resolver implements real iterative resolution: it walks from
the root hints through TLD referrals to authoritative servers, follows glue
(and resolves glueless NS targets), chases CNAMEs, and caches by TTL against
the network's virtual clock.

Open resolvers are recursive resolvers exposed publicly; URHunter's stage 1
uses a worldwide set of them to learn *correct records*.  A small fraction
of real-world open resolvers manipulate answers, which the simulation can
reproduce via a response rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from .message import Message, Rcode, ResourceRecord
from .name import Name, name
from .rdata import CNAME, RRType
from .zone import LookupStatus  # noqa: F401  (re-exported for tests)

MAX_REFERRALS = 24
MAX_CNAME_DEPTH = 8


class ResolutionError(RuntimeError):
    """Raised when iterative resolution cannot make progress."""


@dataclass
class CacheEntry:
    expires: float
    records: Tuple[ResourceRecord, ...]
    rcode: int


@dataclass
class ResolverStats:
    """Counters exposed for tests and benchmarks."""

    queries_received: int = 0
    upstream_queries: int = 0
    cache_hits: int = 0
    failures: int = 0


class RecursiveResolver:
    """An iterative ("full service") resolver.

    Registered on the simulated network as a DNS service, it accepts
    recursion-desired queries from stubs and performs the full referral
    walk itself.
    """

    def __init__(
        self,
        address: str,
        network: "object",
        root_hints: List[str],
        cache_enabled: bool = True,
    ):
        if not root_hints:
            raise ValueError("a resolver needs at least one root hint")
        self.address = address
        self.network = network
        self.root_hints = list(root_hints)
        self.cache_enabled = cache_enabled
        self._cache: Dict[Tuple[Name, int], CacheEntry] = {}
        self.stats = ResolverStats()

    # -- public API -----------------------------------------------------

    def resolve(self, qname: Union[str, Name], qtype: int) -> Message:
        """Resolve ``qname``/``qtype``; returns the final response message.

        The returned message has NOERROR with answers, NOERROR with no
        answers (NODATA), or NXDOMAIN.  Hard failures raise
        :class:`ResolutionError`.
        """
        qname = name(qname)
        cached = self._cache_get(qname, qtype)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        response = self._resolve_iteratively(qname, qtype)
        self._cache_put(qname, qtype, response)
        return response

    def lookup_a(self, qname: Union[str, Name]) -> List[str]:
        """Convenience: resolve A records, returning address strings."""
        from .rdata import A

        response = self.resolve(qname, RRType.A)
        return [
            record.rdata.address
            for record in response.answers
            if isinstance(record.rdata, A)
        ]

    # -- DnsService protocol ---------------------------------------------

    def handle_dns_query(
        self,
        query: Message,
        src_ip: str,
        network: object,
        query_key: object = None,
    ) -> Optional[Message]:
        self.stats.queries_received += 1
        if not query.questions:
            return query.make_response(rcode=Rcode.FORMERR)
        if not query.header.recursion_desired:
            return query.make_response(rcode=Rcode.REFUSED)
        question = query.questions[0]
        try:
            resolved = self.resolve(question.qname, question.qtype)
        except ResolutionError:
            self.stats.failures += 1
            return query.make_response(
                rcode=Rcode.SERVFAIL, recursion_available=True
            )
        response = query.make_response(
            rcode=resolved.header.rcode, recursion_available=True
        )
        response.answers = list(resolved.answers)
        response.authorities = list(resolved.authorities)
        return self._postprocess(response)

    def _postprocess(self, response: Message) -> Message:
        """Hook for subclasses (e.g. manipulated open resolvers)."""
        return response

    # -- iterative machinery ------------------------------------------------

    def _resolve_iteratively(self, qname: Name, qtype: int) -> Message:
        current_name = qname
        collected: List[ResourceRecord] = []
        cname_depth = 0
        while True:
            response = self._walk_referrals(current_name, qtype)
            if response.header.rcode == Rcode.NXDOMAIN:
                if collected:
                    final = Message()
                    final.header = response.header
                    final.answers = collected + list(response.answers)
                    return final
                return response
            answers = list(response.answers)
            collected.extend(answers)
            # Walk any CNAME chain already present in the answers (an
            # authoritative server chases in-zone chains itself).
            chain_end = current_name
            while True:
                step = next(
                    (
                        record.rdata
                        for record in collected
                        if record.owner == chain_end
                        and isinstance(record.rdata, CNAME)
                    ),
                    None,
                )
                if step is None:
                    break
                cname_depth += 1
                if cname_depth > MAX_CNAME_DEPTH:
                    raise ResolutionError(
                        f"CNAME chain too long for {qname}"
                    )
                chain_end = step.target
            direct = [
                record
                for record in collected
                if record.owner == chain_end and record.rrtype == qtype
            ]
            if (
                direct
                or qtype == RRType.CNAME
                or chain_end == current_name
            ):
                response.answers = collected
                return response
            # Chase the unresolved tail of the chain.
            current_name = chain_end

    def _walk_referrals(self, qname: Name, qtype: int) -> Message:
        servers = list(self.root_hints)
        visited: List[str] = []
        for _ in range(MAX_REFERRALS):
            response = self._query_any(servers, qname, qtype)
            if response is None:
                raise ResolutionError(
                    f"no nameserver answered for {qname} "
                    f"(tried {', '.join(visited) or 'none'})"
                )
            if response.header.rcode == Rcode.NXDOMAIN:
                return response
            if response.header.rcode != Rcode.NOERROR:
                raise ResolutionError(
                    f"upstream returned {Rcode.to_text(response.header.rcode)}"
                    f" for {qname}"
                )
            if response.answers or not response.is_referral():
                return response
            # Referral: find addresses for the delegated nameservers.
            next_servers: List[str] = []
            for target in response.referral_targets():
                glue = response.glue_address(target)
                if glue is not None:
                    next_servers.append(glue)
            if not next_servers:
                # Glueless delegation: resolve the NS targets' A records.
                for target in response.referral_targets():
                    try:
                        next_servers.extend(self.lookup_a(target))
                    except ResolutionError:
                        continue
                    if next_servers:
                        break
            if not next_servers:
                raise ResolutionError(
                    f"cannot find addresses for delegation of {qname}"
                )
            visited.extend(servers[:1])
            servers = next_servers
        raise ResolutionError(f"referral loop resolving {qname}")

    def _query_any(
        self, servers: List[str], qname: Name, qtype: int
    ) -> Optional[Message]:
        from ..net.network import NetworkError

        for server in servers:
            query = Message.make_query(qname, qtype, recursion_desired=False)
            try:
                self.stats.upstream_queries += 1
                return self.network.query_dns_auto(self.address, server, query)
            except NetworkError:
                continue
        return None

    # -- cache ----------------------------------------------------------

    def _cache_get(self, qname: Name, qtype: int) -> Optional[Message]:
        if not self.cache_enabled:
            return None
        entry = self._cache.get((qname, qtype))
        if entry is None:
            return None
        if self.network.now >= entry.expires:
            del self._cache[(qname, qtype)]
            return None
        message = Message()
        message.header = message.header.__class__(
            is_response=True, rcode=entry.rcode, recursion_available=True
        )
        message.answers = list(entry.records)
        return message

    def _cache_put(self, qname: Name, qtype: int, response: Message) -> None:
        if not self.cache_enabled:
            return
        ttl = min(
            (record.ttl for record in response.answers), default=300
        )
        self._cache[(qname, qtype)] = CacheEntry(
            expires=self.network.now + ttl,
            records=tuple(response.answers),
            rcode=response.header.rcode,
        )

    def flush_cache(self) -> None:
        self._cache.clear()


ResponseRewriter = Callable[[Message], Message]


class OpenResolver(RecursiveResolver):
    """A publicly reachable recursive resolver.

    ``rewriter`` simulates answer manipulation (censorship, ad injection):
    applied to every response before it leaves the resolver.  URHunter's
    stage 1 assumes most vantage points are honest; scenario builders make
    a small fraction manipulated to stress that assumption.
    """

    def __init__(
        self,
        address: str,
        network: object,
        root_hints: List[str],
        rewriter: Optional[ResponseRewriter] = None,
        country: str = "US",
    ):
        super().__init__(address, network, root_hints)
        self.rewriter = rewriter
        self.country = country

    @property
    def is_manipulated(self) -> bool:
        return self.rewriter is not None

    def _postprocess(self, response: Message) -> Message:
        if self.rewriter is not None:
            return self.rewriter(response)
        return response


class StubResolver:
    """A client-side resolver forwarding to one recursive resolver."""

    def __init__(self, address: str, network: object, recursive_ip: str):
        self.address = address
        self.network = network
        self.recursive_ip = recursive_ip

    def resolve(self, qname: Union[str, Name], qtype: int) -> Message:
        query = Message.make_query(qname, qtype, recursion_desired=True)
        return self.network.query_dns_auto(self.address, self.recursive_ip, query)

    def lookup_a(self, qname: Union[str, Name]) -> List[str]:
        from .rdata import A

        response = self.resolve(qname, RRType.A)
        return [
            record.rdata.address
            for record in response.answers
            if isinstance(record.rdata, A)
        ]
