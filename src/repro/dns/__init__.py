"""DNS substrate: names, records, messages, wire format, zones, servers.

This package is a self-contained miniature DNS implementation sufficient
to simulate the hosting-provider ecosystem the paper measures.  Public
entry points:

* :func:`repro.dns.name.name` / :class:`~repro.dns.name.Name`
* RDATA classes in :mod:`repro.dns.rdata` (A, AAAA, NS, CNAME, SOA, MX, TXT)
* :class:`~repro.dns.message.Message` with wire round-trip in
  :mod:`repro.dns.wire`
* :class:`~repro.dns.zone.Zone` and :class:`~repro.dns.server.AuthoritativeServer`
* :class:`~repro.dns.resolver.RecursiveResolver` /
  :class:`~repro.dns.resolver.OpenResolver` /
  :class:`~repro.dns.resolver.StubResolver`
"""

from .name import Name, NameError_, ROOT, name
from .psl import DEFAULT_PSL, PublicSuffixList
from .rdata import (
    A,
    AAAA,
    CNAME,
    MX,
    NS,
    PTR,
    SOA,
    TXT,
    Rdata,
    RdataError,
    RRClass,
    RRType,
    rdata_from_text,
    rdata_from_wire,
)
from .message import (
    Header,
    Message,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    rrset,
)
from .wire import WireError, decode_message, encode_message, roundtrip
from .zone import LookupResult, LookupStatus, Zone, ZoneError, zone_from_records
from .server import AuthoritativeServer, UnhostedPolicy, make_protective_server
from .resolver import (
    OpenResolver,
    RecursiveResolver,
    ResolutionError,
    StubResolver,
)

__all__ = [
    "A",
    "AAAA",
    "AuthoritativeServer",
    "CNAME",
    "DEFAULT_PSL",
    "Header",
    "LookupResult",
    "LookupStatus",
    "Message",
    "MX",
    "Name",
    "NameError_",
    "NS",
    "Opcode",
    "OpenResolver",
    "PTR",
    "PublicSuffixList",
    "Question",
    "Rcode",
    "Rdata",
    "RdataError",
    "RecursiveResolver",
    "ResolutionError",
    "ResourceRecord",
    "ROOT",
    "RRClass",
    "RRType",
    "SOA",
    "StubResolver",
    "TXT",
    "UnhostedPolicy",
    "WireError",
    "Zone",
    "ZoneError",
    "decode_message",
    "encode_message",
    "make_protective_server",
    "name",
    "rdata_from_text",
    "rdata_from_wire",
    "roundtrip",
    "rrset",
    "zone_from_records",
]
