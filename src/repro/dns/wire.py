"""RFC 1035 wire-format encoding and decoding with name compression.

The simulated network serializes every DNS message through this module, so
malformed-message handling, compression pointers, and section counts behave
as they would on a real wire.  Compression targets names in owner fields and
in the name-bearing RDATA types that RFC 3597 classifies as "well-known"
(NS, CNAME, PTR, SOA, MX); TXT and address records are opaque.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .message import Header, Message, Question, ResourceRecord
from .name import MAX_LABEL_LENGTH, Name, NameError_
from .rdata import (
    CNAME,
    MX,
    NS,
    PTR,
    RDATA_CLASSES,
    SOA,
    RdataError,
    Rdata,
    RRType,
)

MAX_POINTER_OFFSET = 0x3FFF
#: Types whose RDATA contains a domain name eligible for compression.
_NAME_BEARING_TYPES = frozenset(
    {RRType.NS, RRType.CNAME, RRType.PTR, RRType.SOA, RRType.MX}
)


class WireError(ValueError):
    """Raised when a message cannot be encoded or decoded."""


class _Encoder:
    """Accumulates wire bytes and tracks compression offsets."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    def write_u16(self, value: int) -> None:
        self.buffer.extend(struct.pack("!H", value))

    def write_u32(self, value: int) -> None:
        self.buffer.extend(struct.pack("!I", value))

    def write_name(self, target: Name, compress: bool = True) -> None:
        """Write a possibly-compressed domain name."""
        labels = tuple(label.lower() for label in target.labels)
        index = 0
        while index < len(labels):
            suffix = labels[index:]
            known = self._offsets.get(suffix) if compress else None
            if known is not None:
                self.write_u16(0xC000 | known)
                return
            if compress and len(self.buffer) <= MAX_POINTER_OFFSET:
                self._offsets[suffix] = len(self.buffer)
            raw = target.labels[index].encode("ascii")
            self.buffer.append(len(raw))
            self.buffer.extend(raw)
            index += 1
        self.buffer.append(0)


class _Decoder:
    """Reads wire bytes, following compression pointers."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def read(self, count: int) -> bytes:
        if self.remaining() < count:
            raise WireError(
                f"truncated message: wanted {count} bytes, "
                f"have {self.remaining()}"
            )
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> Name:
        labels, next_offset = self._read_name_at(self.offset)
        self.offset = next_offset
        try:
            return Name(labels)
        except NameError_ as exc:
            raise WireError(f"invalid name on the wire: {exc}") from exc

    def _read_name_at(self, offset: int) -> Tuple[List[str], int]:
        labels: List[str] = []
        jumps = 0
        end_offset = -1
        while True:
            if offset >= len(self.data):
                raise WireError("name runs past end of message")
            length = self.data[offset]
            if length & 0xC0 == 0xC0:
                if offset + 1 >= len(self.data):
                    raise WireError("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | self.data[offset + 1]
                if end_offset < 0:
                    end_offset = offset + 2
                if pointer >= offset:
                    raise WireError("forward compression pointer")
                offset = pointer
                jumps += 1
                if jumps > 128:
                    raise WireError("compression pointer loop")
                continue
            if length & 0xC0:
                raise WireError(f"reserved label type {length >> 6:#x}")
            if length > MAX_LABEL_LENGTH:
                raise WireError(f"label length {length} exceeds 63")
            offset += 1
            if length == 0:
                break
            if offset + length > len(self.data):
                raise WireError("label runs past end of message")
            try:
                labels.append(
                    self.data[offset : offset + length].decode(
                        "ascii", errors="strict"
                    )
                )
            except UnicodeDecodeError as exc:
                raise WireError(
                    f"non-ASCII label bytes at offset {offset}"
                ) from exc
            offset += length
        return labels, end_offset if end_offset >= 0 else offset


def _encode_rdata(encoder: _Encoder, record: ResourceRecord) -> None:
    """Write RDLENGTH + RDATA, compressing embedded names where allowed."""
    length_position = len(encoder.buffer)
    encoder.write_u16(0)  # placeholder for RDLENGTH
    start = len(encoder.buffer)
    rdata = record.rdata
    if isinstance(rdata, (NS, CNAME, PTR)):
        encoder.write_name(rdata.target)
    elif isinstance(rdata, MX):
        encoder.write_u16(rdata.preference)
        encoder.write_name(rdata.exchange)
    elif isinstance(rdata, SOA):
        encoder.write_name(rdata.mname)
        encoder.write_name(rdata.rname)
        encoder.write_u32(rdata.serial)
        encoder.write_u32(rdata.refresh)
        encoder.write_u32(rdata.retry)
        encoder.write_u32(rdata.expire)
        encoder.write_u32(rdata.minimum)
    else:
        encoder.write(rdata.to_wire())
    rdlength = len(encoder.buffer) - start
    if rdlength > 0xFFFF:
        raise WireError(f"RDATA too long: {rdlength}")
    struct.pack_into("!H", encoder.buffer, length_position, rdlength)


def _decode_rdata(decoder: _Decoder, rrtype: int, rdlength: int) -> Rdata:
    """Read RDATA, decompressing embedded names for name-bearing types."""
    end = decoder.offset + rdlength
    if end > len(decoder.data):
        raise WireError("RDATA runs past end of message")
    if rrtype in _NAME_BEARING_TYPES:
        if rrtype == RRType.MX:
            preference = decoder.read_u16()
            exchange = decoder.read_name()
            rdata: Rdata = MX(preference, exchange)
        elif rrtype == RRType.SOA:
            mname = decoder.read_name()
            rname = decoder.read_name()
            serial = decoder.read_u32()
            refresh = decoder.read_u32()
            retry = decoder.read_u32()
            expire = decoder.read_u32()
            minimum = decoder.read_u32()
            rdata = SOA(mname, rname, serial, refresh, retry, expire, minimum)
        else:
            target = decoder.read_name()
            cls = RDATA_CLASSES[rrtype]
            rdata = cls(target)  # type: ignore[call-arg]
        if decoder.offset != end:
            raise WireError(
                f"RDATA length mismatch for {RRType.to_text(rrtype)}"
            )
        return rdata
    raw = decoder.read(rdlength)
    cls = RDATA_CLASSES.get(rrtype)
    if cls is None:
        raise WireError(f"unsupported RR type {RRType.to_text(rrtype)}")
    try:
        return cls.from_wire(raw)
    except RdataError as exc:
        raise WireError(str(exc)) from exc


def encode_message(message: Message) -> bytes:
    """Serialize a :class:`Message` to RFC 1035 wire format."""
    encoder = _Encoder()
    encoder.write_u16(message.header.message_id)
    encoder.write_u16(message.header.flags_word())
    encoder.write_u16(len(message.questions))
    encoder.write_u16(len(message.answers))
    encoder.write_u16(len(message.authorities))
    encoder.write_u16(len(message.additionals))
    for question in message.questions:
        encoder.write_name(question.qname)
        encoder.write_u16(question.qtype)
        encoder.write_u16(question.qclass)
    for record in (
        *message.answers,
        *message.authorities,
        *message.additionals,
    ):
        encoder.write_name(record.owner)
        encoder.write_u16(record.rrtype)
        encoder.write_u16(record.rrclass)
        encoder.write_u32(record.ttl)
        _encode_rdata(encoder, record)
    return bytes(encoder.buffer)


def decode_message(data: bytes) -> Message:
    """Parse RFC 1035 wire bytes into a :class:`Message`.

    Raises :class:`WireError` for any malformation: truncation, bad
    pointers, inconsistent RDLENGTH, unknown types.
    """
    decoder = _Decoder(data)
    if decoder.remaining() < 12:
        raise WireError(f"message shorter than header: {len(data)} bytes")
    message_id = decoder.read_u16()
    flags = decoder.read_u16()
    qdcount = decoder.read_u16()
    ancount = decoder.read_u16()
    nscount = decoder.read_u16()
    arcount = decoder.read_u16()
    header = Header.from_flags_word(message_id, flags)

    questions: List[Question] = []
    for _ in range(qdcount):
        qname = decoder.read_name()
        qtype = decoder.read_u16()
        qclass = decoder.read_u16()
        questions.append(Question(qname, qtype, qclass))

    def read_records(count: int) -> List[ResourceRecord]:
        records: List[ResourceRecord] = []
        for _ in range(count):
            owner = decoder.read_name()
            rrtype = decoder.read_u16()
            rrclass = decoder.read_u16()
            ttl = decoder.read_u32()
            rdlength = decoder.read_u16()
            rdata = _decode_rdata(decoder, rrtype, rdlength)
            records.append(ResourceRecord(owner, rdata, ttl, rrclass))
        return records

    answers = read_records(ancount)
    authorities = read_records(nscount)
    additionals = read_records(arcount)
    if decoder.remaining():
        raise WireError(f"{decoder.remaining()} trailing bytes after message")
    return Message(
        header=header,
        questions=questions,
        answers=answers,
        authorities=authorities,
        additionals=additionals,
    )


def roundtrip(message: Message) -> Message:
    """Encode then decode; used by the transport and by tests."""
    return decode_message(encode_message(message))


# -- memoization ---------------------------------------------------------------


def clone_message(template: Message) -> Message:
    """A shallow copy safe to hand to callers: fresh section lists,
    shared frozen records/header.  Callers may rebind or extend the
    lists without corrupting the cached template."""
    return Message(
        header=template.header,
        questions=list(template.questions),
        answers=list(template.answers),
        authorities=list(template.authorities),
        additionals=list(template.additionals),
    )


_MESSAGE_ID = struct.Struct("!H")


def _with_message_id(template: Message, message_id: int) -> Message:
    """A clone of ``template`` under a different message id.

    Runs once per cache hit, so it bypasses both ``dataclasses.replace``
    and the frozen ``Header.__init__``: copying the field dict and
    overwriting ``message_id`` is equivalent (``Header`` has no slots)
    and several times cheaper at scan volume.
    """
    header = object.__new__(Header)
    header.__dict__.update(template.header.__dict__)
    header.__dict__["message_id"] = message_id
    return Message(
        header=header,
        questions=list(template.questions),
        answers=list(template.answers),
        authorities=list(template.authorities),
        additionals=list(template.additionals),
    )


def _rdata_key(rdata: Rdata):
    """A hashable, case-exact stand-in for RDATA in structural keys.

    Frozen rdata objects are hashable, but the name-bearing types hash
    through :class:`Name`, whose equality is case-insensitive — two
    spellings that encode differently would collide.  Expand their
    names to exact label tuples instead; opaque types (addresses, TXT)
    hash their strings case-exactly already.
    """
    if isinstance(rdata, (NS, CNAME, PTR)):
        return (rdata.rrtype, rdata.target.labels)
    if isinstance(rdata, MX):
        return (RRType.MX, rdata.preference, rdata.exchange.labels)
    if isinstance(rdata, SOA):
        return (
            RRType.SOA,
            rdata.mname.labels,
            rdata.rname.labels,
            rdata.serial,
            rdata.refresh,
            rdata.retry,
            rdata.expire,
            rdata.minimum,
        )
    return rdata


def _section_key(records) -> Tuple:
    return tuple(
        (
            record.owner.labels,
            record.rrtype,
            record.rrclass,
            record.ttl,
            _rdata_key(record.rdata),
        )
        for record in records
    )


class WireCodecCache:
    """Bounded memoization for the simulator's hot encode/decode paths.

    Three caches, all structural (recomputed keys per call, so callers
    never need to treat messages as frozen) and all **id-agnostic** —
    the message id occupies exactly the first two wire bytes and the
    ``message_id`` header field, so a template cached under one id
    serves any other via a 2-byte patch and a header swap.  Without
    this the caches would be useless: resolvers mint a fresh id per
    internal query, and response wires differing only in id would never
    collide.

    * the **query round-trip cache** maps a record-free message's
      ``(flags word, questions)`` — with exact label case, since the
      wire preserves spelling — to its validated wire, collapsing the
      per-query encode→decode round trip to a dict hit (the first
      occurrence proved the round trip is the identity, so the original
      message object can stand in for its own decode);
    * the **encode cache** maps a full message's structural key (flags,
      questions, all record sections, names as exact label tuples) to
      its wire — sound because the encoder is deterministic and
      compression canonical, so equal structure means equal bytes;
    * the **decode cache** maps ``wire[2:]`` (everything after the id)
      to the parsed message, deduplicating the many near-identical
      responses a scan provokes (REFUSED / protective answers repeat
      across servers and ids).

    All caches only ever store *successful* codec results — a
    malformed message pays full price every time, so ``wire_errors``
    accounting is cache-transparent.  Hits return shallow clones;
    templates never escape.  Eviction is FIFO at ``max_entries``.
    """

    __slots__ = (
        "_query_cache",
        "_encode_cache",
        "_decode_cache",
        "max_entries",
        "metrics",
    )

    def __init__(self, metrics=None, max_entries: int = 8192):
        self._query_cache: Dict[object, Tuple[int, bytes]] = {}
        self._encode_cache: Dict[object, Tuple[int, bytes]] = {}
        self._decode_cache: Dict[bytes, Message] = {}
        self.max_entries = max_entries
        #: duck-typed counter holder (repro.net.scanpath.ScanPathMetrics)
        self.metrics = metrics

    @staticmethod
    def _query_key(query: Message):
        """Structural identity of a record-free message sans id, or None.

        Label case is part of the key (``Name`` equality is
        case-insensitive but the wire preserves spelling); the message
        id is deliberately not — see the class docstring.
        """
        if query.answers or query.authorities or query.additionals:
            return None
        return (
            query.header.flags_word(),
            tuple(
                (question.qname.labels, question.qtype, question.qclass)
                for question in query.questions
            ),
        )

    def query_hit(self, query: Message):
        """The cached ``(wire, key)`` for this query, or None.

        The returned wire already carries the query's own message id.
        The key is handed back so the transport can thread it through
        to the authoritative server's compiled-answer cache (same key
        structure) without rebuilding it.
        """
        key = self._query_key(query)
        cached = self._query_cache.get(key) if key is not None else None
        metrics = self.metrics
        if cached is None:
            if metrics is not None:
                metrics.query_misses += 1
            return None
        if metrics is not None:
            metrics.query_hits += 1
        cached_id, wire = cached
        message_id = query.header.message_id
        if message_id != cached_id:
            wire = _MESSAGE_ID.pack(message_id) + wire[2:]
        return wire, key

    def query_store(self, query: Message, wire: bytes) -> None:
        """Record a validated round trip for future :meth:`query_hit`."""
        key = self._query_key(query)
        if key is None:
            return
        cache = self._query_cache
        if len(cache) >= self.max_entries:
            cache.pop(next(iter(cache)))
        cache[key] = (query.header.message_id, wire)

    def encode(self, message: Message) -> bytes:
        """Memoized :func:`encode_message`; failures propagate uncached.

        Responses to a scan are massively repetitive *modulo the
        question echo and the message id*: the same REFUSED or
        protective answer goes to every prober.  The structural key
        makes those a single encode plus 2-byte patches.
        """
        key = (
            message.header.flags_word(),
            tuple(
                (question.qname.labels, question.qtype, question.qclass)
                for question in message.questions
            ),
            _section_key(message.answers),
            _section_key(message.authorities),
            _section_key(message.additionals),
        )
        cache = self._encode_cache
        cached = cache.get(key)
        metrics = self.metrics
        message_id = message.header.message_id
        if cached is not None:
            if metrics is not None:
                metrics.encode_hits += 1
            cached_id, wire = cached
            if message_id == cached_id:
                return wire
            return _MESSAGE_ID.pack(message_id) + wire[2:]
        if metrics is not None:
            metrics.encode_misses += 1
        wire = encode_message(message)
        if len(cache) >= self.max_entries:
            cache.pop(next(iter(cache)))
        cache[key] = (message_id, wire)
        return wire

    def decode(self, wire: bytes) -> Message:
        """Memoized :func:`decode_message`; failures are never cached."""
        cache = self._decode_cache
        template = cache.get(wire[2:])
        metrics = self.metrics
        if template is not None:
            if metrics is not None:
                metrics.decode_hits += 1
            message_id = _MESSAGE_ID.unpack_from(wire)[0]
            if message_id == template.header.message_id:
                return clone_message(template)
            return _with_message_id(template, message_id)
        if metrics is not None:
            metrics.decode_misses += 1
        decoded = decode_message(wire)
        if len(cache) >= self.max_entries:
            cache.pop(next(iter(cache)))
        cache[wire[2:]] = decoded
        return clone_message(decoded)

    def clear(self) -> None:
        self._query_cache.clear()
        self._encode_cache.clear()
        self._decode_cache.clear()
