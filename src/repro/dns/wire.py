"""RFC 1035 wire-format encoding and decoding with name compression.

The simulated network serializes every DNS message through this module, so
malformed-message handling, compression pointers, and section counts behave
as they would on a real wire.  Compression targets names in owner fields and
in the name-bearing RDATA types that RFC 3597 classifies as "well-known"
(NS, CNAME, PTR, SOA, MX); TXT and address records are opaque.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .message import Header, Message, Question, ResourceRecord
from .name import MAX_LABEL_LENGTH, Name, NameError_
from .rdata import (
    CNAME,
    MX,
    NS,
    PTR,
    RDATA_CLASSES,
    SOA,
    RdataError,
    Rdata,
    RRType,
)

MAX_POINTER_OFFSET = 0x3FFF
#: Types whose RDATA contains a domain name eligible for compression.
_NAME_BEARING_TYPES = frozenset(
    {RRType.NS, RRType.CNAME, RRType.PTR, RRType.SOA, RRType.MX}
)


class WireError(ValueError):
    """Raised when a message cannot be encoded or decoded."""


class _Encoder:
    """Accumulates wire bytes and tracks compression offsets."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    def write_u16(self, value: int) -> None:
        self.buffer.extend(struct.pack("!H", value))

    def write_u32(self, value: int) -> None:
        self.buffer.extend(struct.pack("!I", value))

    def write_name(self, target: Name, compress: bool = True) -> None:
        """Write a possibly-compressed domain name."""
        labels = tuple(label.lower() for label in target.labels)
        index = 0
        while index < len(labels):
            suffix = labels[index:]
            known = self._offsets.get(suffix) if compress else None
            if known is not None:
                self.write_u16(0xC000 | known)
                return
            if compress and len(self.buffer) <= MAX_POINTER_OFFSET:
                self._offsets[suffix] = len(self.buffer)
            raw = target.labels[index].encode("ascii")
            self.buffer.append(len(raw))
            self.buffer.extend(raw)
            index += 1
        self.buffer.append(0)


class _Decoder:
    """Reads wire bytes, following compression pointers."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def read(self, count: int) -> bytes:
        if self.remaining() < count:
            raise WireError(
                f"truncated message: wanted {count} bytes, "
                f"have {self.remaining()}"
            )
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> Name:
        labels, next_offset = self._read_name_at(self.offset)
        self.offset = next_offset
        try:
            return Name(labels)
        except NameError_ as exc:
            raise WireError(f"invalid name on the wire: {exc}") from exc

    def _read_name_at(self, offset: int) -> Tuple[List[str], int]:
        labels: List[str] = []
        jumps = 0
        end_offset = -1
        while True:
            if offset >= len(self.data):
                raise WireError("name runs past end of message")
            length = self.data[offset]
            if length & 0xC0 == 0xC0:
                if offset + 1 >= len(self.data):
                    raise WireError("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | self.data[offset + 1]
                if end_offset < 0:
                    end_offset = offset + 2
                if pointer >= offset:
                    raise WireError("forward compression pointer")
                offset = pointer
                jumps += 1
                if jumps > 128:
                    raise WireError("compression pointer loop")
                continue
            if length & 0xC0:
                raise WireError(f"reserved label type {length >> 6:#x}")
            if length > MAX_LABEL_LENGTH:
                raise WireError(f"label length {length} exceeds 63")
            offset += 1
            if length == 0:
                break
            if offset + length > len(self.data):
                raise WireError("label runs past end of message")
            try:
                labels.append(
                    self.data[offset : offset + length].decode(
                        "ascii", errors="strict"
                    )
                )
            except UnicodeDecodeError as exc:
                raise WireError(
                    f"non-ASCII label bytes at offset {offset}"
                ) from exc
            offset += length
        return labels, end_offset if end_offset >= 0 else offset


def _encode_rdata(encoder: _Encoder, record: ResourceRecord) -> None:
    """Write RDLENGTH + RDATA, compressing embedded names where allowed."""
    length_position = len(encoder.buffer)
    encoder.write_u16(0)  # placeholder for RDLENGTH
    start = len(encoder.buffer)
    rdata = record.rdata
    if isinstance(rdata, (NS, CNAME, PTR)):
        encoder.write_name(rdata.target)
    elif isinstance(rdata, MX):
        encoder.write_u16(rdata.preference)
        encoder.write_name(rdata.exchange)
    elif isinstance(rdata, SOA):
        encoder.write_name(rdata.mname)
        encoder.write_name(rdata.rname)
        encoder.write_u32(rdata.serial)
        encoder.write_u32(rdata.refresh)
        encoder.write_u32(rdata.retry)
        encoder.write_u32(rdata.expire)
        encoder.write_u32(rdata.minimum)
    else:
        encoder.write(rdata.to_wire())
    rdlength = len(encoder.buffer) - start
    if rdlength > 0xFFFF:
        raise WireError(f"RDATA too long: {rdlength}")
    struct.pack_into("!H", encoder.buffer, length_position, rdlength)


def _decode_rdata(decoder: _Decoder, rrtype: int, rdlength: int) -> Rdata:
    """Read RDATA, decompressing embedded names for name-bearing types."""
    end = decoder.offset + rdlength
    if end > len(decoder.data):
        raise WireError("RDATA runs past end of message")
    if rrtype in _NAME_BEARING_TYPES:
        if rrtype == RRType.MX:
            preference = decoder.read_u16()
            exchange = decoder.read_name()
            rdata: Rdata = MX(preference, exchange)
        elif rrtype == RRType.SOA:
            mname = decoder.read_name()
            rname = decoder.read_name()
            serial = decoder.read_u32()
            refresh = decoder.read_u32()
            retry = decoder.read_u32()
            expire = decoder.read_u32()
            minimum = decoder.read_u32()
            rdata = SOA(mname, rname, serial, refresh, retry, expire, minimum)
        else:
            target = decoder.read_name()
            cls = RDATA_CLASSES[rrtype]
            rdata = cls(target)  # type: ignore[call-arg]
        if decoder.offset != end:
            raise WireError(
                f"RDATA length mismatch for {RRType.to_text(rrtype)}"
            )
        return rdata
    raw = decoder.read(rdlength)
    cls = RDATA_CLASSES.get(rrtype)
    if cls is None:
        raise WireError(f"unsupported RR type {RRType.to_text(rrtype)}")
    try:
        return cls.from_wire(raw)
    except RdataError as exc:
        raise WireError(str(exc)) from exc


def encode_message(message: Message) -> bytes:
    """Serialize a :class:`Message` to RFC 1035 wire format."""
    encoder = _Encoder()
    encoder.write_u16(message.header.message_id)
    encoder.write_u16(message.header.flags_word())
    encoder.write_u16(len(message.questions))
    encoder.write_u16(len(message.answers))
    encoder.write_u16(len(message.authorities))
    encoder.write_u16(len(message.additionals))
    for question in message.questions:
        encoder.write_name(question.qname)
        encoder.write_u16(question.qtype)
        encoder.write_u16(question.qclass)
    for record in (
        *message.answers,
        *message.authorities,
        *message.additionals,
    ):
        encoder.write_name(record.owner)
        encoder.write_u16(record.rrtype)
        encoder.write_u16(record.rrclass)
        encoder.write_u32(record.ttl)
        _encode_rdata(encoder, record)
    return bytes(encoder.buffer)


def decode_message(data: bytes) -> Message:
    """Parse RFC 1035 wire bytes into a :class:`Message`.

    Raises :class:`WireError` for any malformation: truncation, bad
    pointers, inconsistent RDLENGTH, unknown types.
    """
    decoder = _Decoder(data)
    if decoder.remaining() < 12:
        raise WireError(f"message shorter than header: {len(data)} bytes")
    message_id = decoder.read_u16()
    flags = decoder.read_u16()
    qdcount = decoder.read_u16()
    ancount = decoder.read_u16()
    nscount = decoder.read_u16()
    arcount = decoder.read_u16()
    header = Header.from_flags_word(message_id, flags)

    questions: List[Question] = []
    for _ in range(qdcount):
        qname = decoder.read_name()
        qtype = decoder.read_u16()
        qclass = decoder.read_u16()
        questions.append(Question(qname, qtype, qclass))

    def read_records(count: int) -> List[ResourceRecord]:
        records: List[ResourceRecord] = []
        for _ in range(count):
            owner = decoder.read_name()
            rrtype = decoder.read_u16()
            rrclass = decoder.read_u16()
            ttl = decoder.read_u32()
            rdlength = decoder.read_u16()
            rdata = _decode_rdata(decoder, rrtype, rdlength)
            records.append(ResourceRecord(owner, rdata, ttl, rrclass))
        return records

    answers = read_records(ancount)
    authorities = read_records(nscount)
    additionals = read_records(arcount)
    if decoder.remaining():
        raise WireError(f"{decoder.remaining()} trailing bytes after message")
    return Message(
        header=header,
        questions=questions,
        answers=answers,
        authorities=authorities,
        additionals=additionals,
    )


def roundtrip(message: Message) -> Message:
    """Encode then decode; used by the transport and by tests."""
    return decode_message(encode_message(message))
