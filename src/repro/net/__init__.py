"""Simulated internet substrate: addressing, transport, traffic capture."""

from .address import (
    AddressError,
    AddressPool,
    Prefix,
    PrefixPlanner,
    in_prefix,
    int_to_ip,
    ip_to_int,
    same_slash24,
    slash24,
)
from .network import DNS_PORT, NetworkError, SimulatedInternet
from .traffic import FlowRecord, Protocol, TrafficCapture

__all__ = [
    "AddressError",
    "AddressPool",
    "DNS_PORT",
    "FlowRecord",
    "NetworkError",
    "Prefix",
    "PrefixPlanner",
    "Protocol",
    "SimulatedInternet",
    "TrafficCapture",
    "in_prefix",
    "int_to_ip",
    "ip_to_int",
    "same_slash24",
    "slash24",
]
