"""The simulated internet: host registry, transport, and a virtual clock.

Hosts register under IPv4 addresses and implement small service protocols
(:class:`DnsService`, :class:`TcpService`).  Every DNS exchange is encoded
to RFC 1035 wire format and decoded on the far side, so the simulation
exercises the same parsing paths a real scanner would.

The clock is virtual — time advances only when :meth:`SimulatedInternet.tick`
runs or a transaction charges latency — keeping every run deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Protocol as TypingProtocol, Sequence

from ..dns.message import Message, Rcode
from ..dns.wire import (
    WireCodecCache,
    WireError,
    decode_message,
    encode_message,
)
from .scanpath import ScanPathMetrics
from .traffic import FlowRecord, Protocol, TrafficCapture

DNS_PORT = 53
#: classic UDP payload ceiling (RFC 1035 §4.2.1); larger responses are
#: truncated and the client retries over TCP
MAX_UDP_PAYLOAD = 512


class NetworkError(RuntimeError):
    """Raised for transport-level failures (no route, no listener)."""


class DnsService(TypingProtocol):
    """A host-side DNS handler.

    Implementations receive the decoded query and return a response
    message; returning None simulates a drop (the client times out).
    """

    def handle_dns_query(
        self,
        query: Message,
        src_ip: str,
        network: "SimulatedInternet",
        query_key: object = None,
    ) -> Optional[Message]:
        ...


class TcpService(TypingProtocol):
    """A host-side TCP handler for non-DNS ports."""

    def handle_tcp_connect(
        self, src_ip: str, dst_port: int, payload: bytes,
        network: "SimulatedInternet",
    ) -> Optional[bytes]:
        ...


@dataclass
class _HostEntry:
    dns: Optional[DnsService] = None
    tcp: Optional[TcpService] = None
    online: bool = True


@dataclass
class FaultProfile:
    """Failure-injection knobs for one host (or the whole network).

    * ``loss_rate`` — fraction of DNS queries silently dropped;
    * ``latency_jitter`` — extra per-query latency, uniform in
      ``[0, latency_jitter)`` virtual seconds;
    * ``flap_up`` / ``flap_down`` — when both are set the host cycles
      online for ``flap_up`` seconds then dead for ``flap_down``
      seconds, phase-locked to the virtual clock (deterministic);
    * ``start`` / ``duration`` — optional activity window: the profile
      only applies from ``start`` for ``duration`` virtual seconds
      (``duration == 0`` means open-ended).  Flap phase is measured
      relative to ``start``.

    ``flap_down > 0`` with ``flap_up == 0`` is rejected: that shape is
    a permanently-dead host disguised as a flapping one — use
    :meth:`SimulatedInternet.set_online` (or ``loss_rate=1.0``) to
    model a dead host explicitly.
    """

    loss_rate: float = 0.0
    latency_jitter: float = 0.0
    flap_up: float = 0.0
    flap_down: float = 0.0
    start: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1], got {self.loss_rate}"
            )
        if self.latency_jitter < 0:
            raise ValueError(
                f"latency_jitter must be >= 0, got {self.latency_jitter}"
            )
        if self.flap_up < 0 or self.flap_down < 0:
            raise ValueError("flap durations must be >= 0")
        if self.flap_down > 0 and self.flap_up <= 0:
            raise ValueError(
                "flap_down > 0 requires flap_up > 0: a host that never "
                "comes back up is dead, not flapping (use set_online or "
                "loss_rate=1.0)"
            )
        if self.start < 0 or self.duration < 0:
            raise ValueError("start/duration must be >= 0")

    @property
    def active(self) -> bool:
        return (
            self.loss_rate > 0
            or self.latency_jitter > 0
            or (self.flap_up > 0 and self.flap_down > 0)
        )

    def active_at(self, now: float) -> bool:
        """Is the profile's activity window open at ``now``?"""
        if now < self.start:
            return False
        return self.duration <= 0 or now < self.start + self.duration

    def flapped_down(self, now: float) -> bool:
        """Is a flapping host inside its dead window at ``now``?"""
        period = self.flap_up + self.flap_down
        if self.flap_down <= 0 or period <= 0:
            return False
        return ((now - self.start) % period) >= self.flap_up


class SimulatedInternet:
    """Registry plus transport for all simulated hosts.

    All exchanges are synchronous request/response; latency is charged to
    the virtual clock per transaction.
    """

    def __init__(self, latency: float = 0.01):
        self._hosts: Dict[str, _HostEntry] = {}
        self._clock = 0.0
        self.latency = latency
        self.capture = TrafficCapture()
        #: scan-path fast-lane hit/miss counters (timing-only telemetry)
        self.scanpath = ScanPathMetrics()
        #: memoized wire codec shared by every transaction on this network
        self.codec = WireCodecCache(self.scanpath)
        #: master switch for the fast lane (compiled answers + codec
        #: memoization).  Output is byte-identical either way; the naive
        #: path is kept as the correctness reference (--no-scan-cache).
        self.scan_cache_enabled = True
        #: network-wide pool of unhosted-REFUSED answer templates: the
        #: same REFUSED body goes out whichever server is probed, so the
        #: per-server compiled caches share one pool for them
        self.refused_pool: Dict[object, tuple] = {}
        #: counters for observability / benchmarks — all preinitialized
        #: so the schema is stable for tests and metrics documents
        self.stats: Dict[str, int] = {
            "dns_queries": 0,
            "dns_timeouts": 0,
            "tcp_connects": 0,
            "tcp_failures": 0,
            "wire_errors": 0,
            "injected_losses": 0,
            "flap_drops": 0,
            "truncated_responses": 0,
        }
        #: failure injection (None / empty = zero overhead)
        self._global_faults: Optional[FaultProfile] = None
        self._server_faults: Dict[str, FaultProfile] = {}
        self._fault_windows: Dict[str, List[FaultProfile]] = {}
        self._fault_rng = random.Random(0)
        #: the base seed the fault RNG was last (re)seeded from — the
        #: anchor the shard runner derives its per-group seeds from
        self.fault_seed = 0
        #: bumped whenever the host registry or fault profiles change;
        #: DnsChannel instances revalidate their cached lookups against it
        self._topology_generation = 0

    # -- failure injection --------------------------------------------------

    def inject_faults(
        self,
        loss_rate: float = 0.0,
        latency_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        """Apply a network-wide fault profile (deterministic via ``seed``).

        Per-server profiles from :meth:`set_server_faults` take
        precedence over the global one.
        """
        profile = FaultProfile(
            loss_rate=loss_rate, latency_jitter=latency_jitter
        )
        self._global_faults = profile if profile.active else None
        self._fault_rng = random.Random(seed)
        self.fault_seed = seed
        self._topology_generation += 1

    def set_server_faults(
        self,
        address: str,
        loss_rate: float = 0.0,
        latency_jitter: float = 0.0,
        flap_up: float = 0.0,
        flap_down: float = 0.0,
    ) -> None:
        """Attach a fault profile to one host (zeros clear it)."""
        profile = FaultProfile(
            loss_rate=loss_rate,
            latency_jitter=latency_jitter,
            flap_up=flap_up,
            flap_down=flap_down,
        )
        if profile.active:
            self._server_faults[address] = profile
        else:
            self._server_faults.pop(address, None)
        self._topology_generation += 1

    def add_fault_window(self, address: str, profile: FaultProfile) -> None:
        """Attach a time-windowed fault profile to one host.

        Windows stack: several may target the same address (chaos
        scenarios compile onto this hook) and each active window is
        evaluated, in insertion order, before the static per-server /
        global profile.
        """
        if profile.active:
            self._fault_windows.setdefault(address, []).append(profile)
            self._topology_generation += 1

    def seed_faults(self, seed: int) -> None:
        """Re-seed the fault RNG (scenario scripts pin their own seed)."""
        self._fault_rng = random.Random(seed)
        self.fault_seed = seed

    def clear_faults(self) -> None:
        """Remove every injected fault profile."""
        self._global_faults = None
        self._server_faults.clear()
        self._fault_windows.clear()
        self._topology_generation += 1

    def _fault_profile(self, address: str) -> Optional[FaultProfile]:
        if not self._server_faults and self._global_faults is None:
            return None
        return self._server_faults.get(address, self._global_faults)

    def _active_faults(self, address: str, now: float) -> List[FaultProfile]:
        """Every profile that applies to ``address`` at ``now``.

        Active windows first (insertion order), then the static profile
        — so with no windows installed behaviour is exactly the
        pre-window fault path.
        """
        profiles: List[FaultProfile] = []
        for window in self._fault_windows.get(address, ()):
            if window.active_at(now):
                profiles.append(window)
        static = self._fault_profile(address)
        if static is not None:
            profiles.append(static)
        return profiles

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._clock

    def tick(self, seconds: float = 1.0) -> float:
        """Advance the virtual clock."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._clock += seconds
        return self._clock

    def set_clock(self, seconds: float) -> float:
        """Pin the virtual clock to an absolute time.

        The shard runner's isolation primitive: every nameserver group
        starts at the classification epoch, and the parent clock is
        advanced to ``epoch + makespan`` afterwards.  Unlike
        :meth:`tick` this may move the clock backwards — it rewinds to
        a previously observed instant, it never invents time.
        """
        if seconds < 0:
            raise ValueError(f"clock must be >= 0, got {seconds}")
        self._clock = float(seconds)
        return self._clock

    # -- host registry ------------------------------------------------------

    def register_dns_host(self, address: str, service: DnsService) -> None:
        """Attach a DNS service to an address (port 53)."""
        entry = self._hosts.setdefault(address, _HostEntry())
        entry.dns = service
        self._topology_generation += 1

    def register_tcp_host(self, address: str, service: TcpService) -> None:
        """Attach a generic TCP service to an address."""
        entry = self._hosts.setdefault(address, _HostEntry())
        entry.tcp = service
        self._topology_generation += 1

    def register_stub(self, address: str) -> None:
        """Register an address with no services (a plain endpoint)."""
        self._hosts.setdefault(address, _HostEntry())
        self._topology_generation += 1

    def set_online(self, address: str, online: bool) -> None:
        """Take a host down or bring it back (failure injection)."""
        entry = self._hosts.get(address)
        if entry is None:
            raise NetworkError(f"unknown host {address}")
        entry.online = online

    def knows(self, address: str) -> bool:
        return address in self._hosts

    def is_online(self, address: str) -> bool:
        entry = self._hosts.get(address)
        return entry is not None and entry.online

    def dns_hosts(self) -> Dict[str, DnsService]:
        """All currently registered DNS services by address."""
        return {
            address: entry.dns
            for address, entry in self._hosts.items()
            if entry.dns is not None
        }

    # -- transport ----------------------------------------------------------

    def query_dns(
        self,
        src_ip: str,
        dst_ip: str,
        query: Message,
        transport: str = "udp",
    ) -> Message:
        """Send a DNS query and return the decoded response.

        The query is wire-encoded and re-decoded on each side.  Transport
        failures (unknown host, offline host, handler drop) raise
        :class:`NetworkError`, which callers treat as a timeout.

        Over ``"udp"`` a response larger than :data:`MAX_UDP_PAYLOAD`
        comes back truncated (TC bit set, record sections emptied);
        ``"tcp"`` carries any size.  :meth:`query_dns_auto` performs the
        standard retry-over-TCP dance.
        """
        if transport not in ("udp", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        return self._transact(
            src_ip,
            dst_ip,
            self._hosts.get(dst_ip),
            self._fault_windows.get(dst_ip, ()),
            self._fault_profile(dst_ip),
            query,
            transport,
        )

    def _transact(
        self,
        src_ip: str,
        dst_ip: str,
        entry: Optional[_HostEntry],
        windows: Sequence[FaultProfile],
        static: Optional[FaultProfile],
        query: Message,
        transport: str,
    ) -> Message:
        """One DNS transaction with the destination lookups hoisted out.

        ``entry``/``windows``/``static`` are the per-destination host
        entry and fault profiles — resolved by :meth:`query_dns` per
        call, or cached across a burst by a :class:`DnsChannel`.  The
        clock charge, fault dice, truncation check, and loss accounting
        are identical on both entry paths and on both sides of the
        ``scan_cache_enabled`` switch.
        """
        self._clock += self.latency
        stats = self.stats
        stats["dns_queries"] += 1
        capture = self.capture
        want_flow = capture.admit(Protocol.DNS)
        if want_flow:
            # timestamp/metadata snapshot before any jitter, matching
            # the eager construction point of the pre-lazy capture
            flow_time = self._clock
            if query.questions:
                first = query.questions[0]
                base_meta: Dict[str, object] = {
                    "qname": str(first.qname),
                    "qtype": first.qtype,
                }
            else:
                base_meta = {"qname": None, "qtype": None}

        def record_failure() -> None:
            if want_flow:
                capture.record(
                    FlowRecord(
                        timestamp=flow_time,
                        src=src_ip,
                        dst=dst_ip,
                        protocol=Protocol.DNS,
                        dst_port=DNS_PORT,
                        success=False,
                        metadata=base_meta,
                    )
                )

        if entry is None or not entry.online or entry.dns is None:
            stats["dns_timeouts"] += 1
            record_failure()
            raise NetworkError(f"no DNS service at {dst_ip}")
        if windows or static is not None:
            now = self._clock
            profiles = [
                window for window in windows if window.active_at(now)
            ]
            if static is not None:
                profiles.append(static)
            for faults in profiles:
                if faults.flapped_down(self._clock):
                    stats["dns_timeouts"] += 1
                    stats["flap_drops"] += 1
                    record_failure()
                    raise NetworkError(f"host {dst_ip} is flapping (down)")
                if (
                    faults.loss_rate > 0
                    and self._fault_rng.random() < faults.loss_rate
                ):
                    stats["dns_timeouts"] += 1
                    stats["injected_losses"] += 1
                    record_failure()
                    raise NetworkError(f"query to {dst_ip} lost (injected)")
                if faults.latency_jitter > 0:
                    self._clock += (
                        self._fault_rng.random() * faults.latency_jitter
                    )
        fast = self.scan_cache_enabled
        cached = self.codec.query_hit(query) if fast else None
        query_key = None
        if cached is not None:
            # the first occurrence of this (flags, question) shape
            # proved decode(encode(q)) == q, so the original message
            # stands in for its own decode; the key is threaded to the
            # server's compiled cache, which shares its structure
            wire, query_key = cached
            decoded_query = query
        else:
            wire = encode_message(query)
            try:
                decoded_query = decode_message(wire)
            except WireError as exc:
                stats["wire_errors"] += 1
                raise NetworkError(f"query failed to encode cleanly: {exc}")
            if fast:
                self.codec.query_store(query, wire)
        response = entry.dns.handle_dns_query(
            decoded_query, src_ip, self, query_key=query_key
        )
        if response is None:
            stats["dns_timeouts"] += 1
            record_failure()
            raise NetworkError(f"DNS service at {dst_ip} dropped the query")
        response_wire = (
            getattr(response, "compiled_wire", None) if fast else None
        )
        if response_wire is None:
            if fast:
                response_wire = self.codec.encode(response)
            else:
                response_wire = encode_message(response)
        if transport == "udp" and len(response_wire) > MAX_UDP_PAYLOAD:
            stats["truncated_responses"] += 1
            truncated = Message(
                header=replace(response.header, truncated=True),
                questions=list(response.questions),
            )
            response_wire = encode_message(truncated)
        try:
            if fast:
                decoded = self.codec.decode(response_wire)
            else:
                decoded = decode_message(response_wire)
        except WireError as exc:
            stats["wire_errors"] += 1
            raise NetworkError(f"response failed to decode: {exc}")
        if want_flow:
            capture.record(
                FlowRecord(
                    timestamp=flow_time,
                    src=src_ip,
                    dst=dst_ip,
                    protocol=Protocol.DNS,
                    dst_port=DNS_PORT,
                    payload_size=len(response_wire),
                    metadata={
                        **base_meta,
                        "rcode": Rcode.to_text(decoded.header.rcode),
                        "answers": [
                            record.rdata.to_text()
                            for record in decoded.answers
                        ],
                    },
                )
            )
        return decoded

    def open_channel(self, src_ip: str, dst_ip: str) -> "DnsChannel":
        """A reusable (src, dst) query path with cached destination
        lookups — the per-server grouping the batched engine's lanes
        ride on."""
        return DnsChannel(self, src_ip, dst_ip)

    def query_dns_auto(
        self, src_ip: str, dst_ip: str, query: Message
    ) -> Message:
        """UDP first; on a truncated response, retry the query over TCP."""
        response = self.query_dns(src_ip, dst_ip, query, transport="udp")
        if response.header.truncated:
            response = self.query_dns(
                src_ip, dst_ip, query, transport="tcp"
            )
        return response

    def connect_tcp(
        self,
        src_ip: str,
        dst_ip: str,
        dst_port: int,
        payload: bytes = b"",
        protocol: Protocol = Protocol.TCP,
        metadata: Optional[Dict[str, object]] = None,
    ) -> Optional[bytes]:
        """Open a TCP exchange; returns the response bytes or None.

        A connection to an unregistered or offline address fails (records
        an unsuccessful flow and returns None) — malware beaconing to a
        dead C2 looks exactly like this in the capture.
        """
        self._clock += self.latency
        self.stats["tcp_connects"] += 1
        entry = self._hosts.get(dst_ip)
        reachable = (
            entry is not None and entry.online and entry.tcp is not None
        )
        if self.capture.admit(protocol):
            merged_metadata = dict(metadata or {})
            # Keep a payload excerpt so content-inspection (IDS
            # signatures) works on the capture, as it would on a pcap.
            merged_metadata.setdefault("payload", payload[:256])
            self.capture.record(
                FlowRecord(
                    timestamp=self._clock,
                    src=src_ip,
                    dst=dst_ip,
                    protocol=protocol,
                    dst_port=dst_port,
                    payload_size=len(payload),
                    success=reachable,
                    metadata=merged_metadata,
                )
            )
        if not reachable:
            self.stats["tcp_failures"] += 1
            return None
        assert entry is not None and entry.tcp is not None
        return entry.tcp.handle_tcp_connect(src_ip, dst_port, payload, self)


class DnsChannel:
    """A pinned (src, dst) DNS path with destination lookups hoisted out.

    Each batched-engine lane opens one channel to its nameserver and
    sends the whole burst through it, amortizing the host-entry and
    fault-profile resolution that :meth:`SimulatedInternet.query_dns`
    performs per call.  Cached lookups revalidate against the network's
    topology generation, which is bumped on every host registration and
    fault-profile change — so channels can never serve a stale host or
    miss a newly installed chaos window.  (``set_online`` mutates the
    cached entry in place and needs no bump.)
    """

    __slots__ = (
        "network",
        "src_ip",
        "dst_ip",
        "_generation",
        "_entry",
        "_windows",
        "_static",
    )

    def __init__(
        self, network: SimulatedInternet, src_ip: str, dst_ip: str
    ):
        self.network = network
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self._generation = -1
        self._entry: Optional[_HostEntry] = None
        self._windows: Sequence[FaultProfile] = ()
        self._static: Optional[FaultProfile] = None

    def _refresh(self) -> None:
        network = self.network
        self._entry = network._hosts.get(self.dst_ip)
        self._windows = network._fault_windows.get(self.dst_ip, ())
        self._static = network._fault_profile(self.dst_ip)
        self._generation = network._topology_generation

    def query(self, query: Message, transport: str = "udp") -> Message:
        """Exactly :meth:`SimulatedInternet.query_dns` over this path."""
        network = self.network
        if self._generation != network._topology_generation:
            self._refresh()
        return network._transact(
            self.src_ip,
            self.dst_ip,
            self._entry,
            self._windows,
            self._static,
            query,
            transport,
        )

    def query_auto(self, query: Message) -> Message:
        """UDP first; on a truncated response, retry over TCP."""
        response = self.query(query, "udp")
        if response.header.truncated:
            response = self.query(query, "tcp")
        return response
