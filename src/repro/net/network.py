"""The simulated internet: host registry, transport, and a virtual clock.

Hosts register under IPv4 addresses and implement small service protocols
(:class:`DnsService`, :class:`TcpService`).  Every DNS exchange is encoded
to RFC 1035 wire format and decoded on the far side, so the simulation
exercises the same parsing paths a real scanner would.

The clock is virtual — time advances only when :meth:`SimulatedInternet.tick`
runs or a transaction charges latency — keeping every run deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Protocol as TypingProtocol

from ..dns.message import Message, Rcode
from ..dns.wire import WireError, decode_message, encode_message
from .traffic import FlowRecord, Protocol, TrafficCapture

DNS_PORT = 53
#: classic UDP payload ceiling (RFC 1035 §4.2.1); larger responses are
#: truncated and the client retries over TCP
MAX_UDP_PAYLOAD = 512


class NetworkError(RuntimeError):
    """Raised for transport-level failures (no route, no listener)."""


class DnsService(TypingProtocol):
    """A host-side DNS handler.

    Implementations receive the decoded query and return a response
    message; returning None simulates a drop (the client times out).
    """

    def handle_dns_query(
        self, query: Message, src_ip: str, network: "SimulatedInternet"
    ) -> Optional[Message]:
        ...


class TcpService(TypingProtocol):
    """A host-side TCP handler for non-DNS ports."""

    def handle_tcp_connect(
        self, src_ip: str, dst_port: int, payload: bytes,
        network: "SimulatedInternet",
    ) -> Optional[bytes]:
        ...


@dataclass
class _HostEntry:
    dns: Optional[DnsService] = None
    tcp: Optional[TcpService] = None
    online: bool = True


@dataclass
class FaultProfile:
    """Failure-injection knobs for one host (or the whole network).

    * ``loss_rate`` — fraction of DNS queries silently dropped;
    * ``latency_jitter`` — extra per-query latency, uniform in
      ``[0, latency_jitter)`` virtual seconds;
    * ``flap_up`` / ``flap_down`` — when both are set the host cycles
      online for ``flap_up`` seconds then dead for ``flap_down``
      seconds, phase-locked to the virtual clock (deterministic);
    * ``start`` / ``duration`` — optional activity window: the profile
      only applies from ``start`` for ``duration`` virtual seconds
      (``duration == 0`` means open-ended).  Flap phase is measured
      relative to ``start``.

    ``flap_down > 0`` with ``flap_up == 0`` is rejected: that shape is
    a permanently-dead host disguised as a flapping one — use
    :meth:`SimulatedInternet.set_online` (or ``loss_rate=1.0``) to
    model a dead host explicitly.
    """

    loss_rate: float = 0.0
    latency_jitter: float = 0.0
    flap_up: float = 0.0
    flap_down: float = 0.0
    start: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1], got {self.loss_rate}"
            )
        if self.latency_jitter < 0:
            raise ValueError(
                f"latency_jitter must be >= 0, got {self.latency_jitter}"
            )
        if self.flap_up < 0 or self.flap_down < 0:
            raise ValueError("flap durations must be >= 0")
        if self.flap_down > 0 and self.flap_up <= 0:
            raise ValueError(
                "flap_down > 0 requires flap_up > 0: a host that never "
                "comes back up is dead, not flapping (use set_online or "
                "loss_rate=1.0)"
            )
        if self.start < 0 or self.duration < 0:
            raise ValueError("start/duration must be >= 0")

    @property
    def active(self) -> bool:
        return (
            self.loss_rate > 0
            or self.latency_jitter > 0
            or (self.flap_up > 0 and self.flap_down > 0)
        )

    def active_at(self, now: float) -> bool:
        """Is the profile's activity window open at ``now``?"""
        if now < self.start:
            return False
        return self.duration <= 0 or now < self.start + self.duration

    def flapped_down(self, now: float) -> bool:
        """Is a flapping host inside its dead window at ``now``?"""
        period = self.flap_up + self.flap_down
        if self.flap_down <= 0 or period <= 0:
            return False
        return ((now - self.start) % period) >= self.flap_up


class SimulatedInternet:
    """Registry plus transport for all simulated hosts.

    All exchanges are synchronous request/response; latency is charged to
    the virtual clock per transaction.
    """

    def __init__(self, latency: float = 0.01):
        self._hosts: Dict[str, _HostEntry] = {}
        self._clock = 0.0
        self.latency = latency
        self.capture = TrafficCapture()
        #: counters for observability / benchmarks
        self.stats: Dict[str, int] = {
            "dns_queries": 0,
            "dns_timeouts": 0,
            "tcp_connects": 0,
            "tcp_failures": 0,
            "wire_errors": 0,
            "injected_losses": 0,
            "flap_drops": 0,
        }
        #: failure injection (None / empty = zero overhead)
        self._global_faults: Optional[FaultProfile] = None
        self._server_faults: Dict[str, FaultProfile] = {}
        self._fault_windows: Dict[str, List[FaultProfile]] = {}
        self._fault_rng = random.Random(0)

    # -- failure injection --------------------------------------------------

    def inject_faults(
        self,
        loss_rate: float = 0.0,
        latency_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        """Apply a network-wide fault profile (deterministic via ``seed``).

        Per-server profiles from :meth:`set_server_faults` take
        precedence over the global one.
        """
        profile = FaultProfile(
            loss_rate=loss_rate, latency_jitter=latency_jitter
        )
        self._global_faults = profile if profile.active else None
        self._fault_rng = random.Random(seed)

    def set_server_faults(
        self,
        address: str,
        loss_rate: float = 0.0,
        latency_jitter: float = 0.0,
        flap_up: float = 0.0,
        flap_down: float = 0.0,
    ) -> None:
        """Attach a fault profile to one host (zeros clear it)."""
        profile = FaultProfile(
            loss_rate=loss_rate,
            latency_jitter=latency_jitter,
            flap_up=flap_up,
            flap_down=flap_down,
        )
        if profile.active:
            self._server_faults[address] = profile
        else:
            self._server_faults.pop(address, None)

    def add_fault_window(self, address: str, profile: FaultProfile) -> None:
        """Attach a time-windowed fault profile to one host.

        Windows stack: several may target the same address (chaos
        scenarios compile onto this hook) and each active window is
        evaluated, in insertion order, before the static per-server /
        global profile.
        """
        if profile.active:
            self._fault_windows.setdefault(address, []).append(profile)

    def seed_faults(self, seed: int) -> None:
        """Re-seed the fault RNG (scenario scripts pin their own seed)."""
        self._fault_rng = random.Random(seed)

    def clear_faults(self) -> None:
        """Remove every injected fault profile."""
        self._global_faults = None
        self._server_faults.clear()
        self._fault_windows.clear()

    def _fault_profile(self, address: str) -> Optional[FaultProfile]:
        if not self._server_faults and self._global_faults is None:
            return None
        return self._server_faults.get(address, self._global_faults)

    def _active_faults(self, address: str, now: float) -> List[FaultProfile]:
        """Every profile that applies to ``address`` at ``now``.

        Active windows first (insertion order), then the static profile
        — so with no windows installed behaviour is exactly the
        pre-window fault path.
        """
        profiles: List[FaultProfile] = []
        for window in self._fault_windows.get(address, ()):
            if window.active_at(now):
                profiles.append(window)
        static = self._fault_profile(address)
        if static is not None:
            profiles.append(static)
        return profiles

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._clock

    def tick(self, seconds: float = 1.0) -> float:
        """Advance the virtual clock."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._clock += seconds
        return self._clock

    # -- host registry ------------------------------------------------------

    def register_dns_host(self, address: str, service: DnsService) -> None:
        """Attach a DNS service to an address (port 53)."""
        entry = self._hosts.setdefault(address, _HostEntry())
        entry.dns = service

    def register_tcp_host(self, address: str, service: TcpService) -> None:
        """Attach a generic TCP service to an address."""
        entry = self._hosts.setdefault(address, _HostEntry())
        entry.tcp = service

    def register_stub(self, address: str) -> None:
        """Register an address with no services (a plain endpoint)."""
        self._hosts.setdefault(address, _HostEntry())

    def set_online(self, address: str, online: bool) -> None:
        """Take a host down or bring it back (failure injection)."""
        entry = self._hosts.get(address)
        if entry is None:
            raise NetworkError(f"unknown host {address}")
        entry.online = online

    def knows(self, address: str) -> bool:
        return address in self._hosts

    def is_online(self, address: str) -> bool:
        entry = self._hosts.get(address)
        return entry is not None and entry.online

    def dns_hosts(self) -> Dict[str, DnsService]:
        """All currently registered DNS services by address."""
        return {
            address: entry.dns
            for address, entry in self._hosts.items()
            if entry.dns is not None
        }

    # -- transport ----------------------------------------------------------

    def query_dns(
        self,
        src_ip: str,
        dst_ip: str,
        query: Message,
        transport: str = "udp",
    ) -> Message:
        """Send a DNS query and return the decoded response.

        The query is wire-encoded and re-decoded on each side.  Transport
        failures (unknown host, offline host, handler drop) raise
        :class:`NetworkError`, which callers treat as a timeout.

        Over ``"udp"`` a response larger than :data:`MAX_UDP_PAYLOAD`
        comes back truncated (TC bit set, record sections emptied);
        ``"tcp"`` carries any size.  :meth:`query_dns_auto` performs the
        standard retry-over-TCP dance.
        """
        if transport not in ("udp", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self._clock += self.latency
        self.stats["dns_queries"] += 1
        qname = query.questions[0].qname if query.questions else None
        flow = FlowRecord(
            timestamp=self._clock,
            src=src_ip,
            dst=dst_ip,
            protocol=Protocol.DNS,
            dst_port=DNS_PORT,
            payload_size=0,
            metadata={
                "qname": str(qname) if qname is not None else None,
                "qtype": (
                    query.questions[0].qtype if query.questions else None
                ),
            },
        )
        entry = self._hosts.get(dst_ip)
        if entry is None or not entry.online or entry.dns is None:
            self.stats["dns_timeouts"] += 1
            self.capture.record(replace(flow, success=False))
            raise NetworkError(f"no DNS service at {dst_ip}")
        for faults in self._active_faults(dst_ip, self._clock):
            if faults.flapped_down(self._clock):
                self.stats["dns_timeouts"] += 1
                self.stats["flap_drops"] += 1
                self.capture.record(replace(flow, success=False))
                raise NetworkError(f"host {dst_ip} is flapping (down)")
            if (
                faults.loss_rate > 0
                and self._fault_rng.random() < faults.loss_rate
            ):
                self.stats["dns_timeouts"] += 1
                self.stats["injected_losses"] += 1
                self.capture.record(replace(flow, success=False))
                raise NetworkError(f"query to {dst_ip} lost (injected)")
            if faults.latency_jitter > 0:
                self._clock += (
                    self._fault_rng.random() * faults.latency_jitter
                )
        wire = encode_message(query)
        try:
            decoded_query = decode_message(wire)
        except WireError as exc:
            self.stats["wire_errors"] += 1
            raise NetworkError(f"query failed to encode cleanly: {exc}")
        response = entry.dns.handle_dns_query(decoded_query, src_ip, self)
        if response is None:
            self.stats["dns_timeouts"] += 1
            self.capture.record(replace(flow, success=False))
            raise NetworkError(f"DNS service at {dst_ip} dropped the query")
        response_wire = encode_message(response)
        if transport == "udp" and len(response_wire) > MAX_UDP_PAYLOAD:
            self.stats["truncated_responses"] = (
                self.stats.get("truncated_responses", 0) + 1
            )
            truncated = Message(
                header=replace(response.header, truncated=True),
                questions=list(response.questions),
            )
            response_wire = encode_message(truncated)
        try:
            decoded = decode_message(response_wire)
        except WireError as exc:
            self.stats["wire_errors"] += 1
            raise NetworkError(f"response failed to decode: {exc}")
        self.capture.record(
            replace(
                flow,
                payload_size=len(response_wire),
                metadata={
                    **flow.metadata,
                    "rcode": Rcode.to_text(decoded.header.rcode),
                    "answers": [
                        record.rdata.to_text() for record in decoded.answers
                    ],
                },
            )
        )
        return decoded

    def query_dns_auto(
        self, src_ip: str, dst_ip: str, query: Message
    ) -> Message:
        """UDP first; on a truncated response, retry the query over TCP."""
        response = self.query_dns(src_ip, dst_ip, query, transport="udp")
        if response.header.truncated:
            response = self.query_dns(
                src_ip, dst_ip, query, transport="tcp"
            )
        return response

    def connect_tcp(
        self,
        src_ip: str,
        dst_ip: str,
        dst_port: int,
        payload: bytes = b"",
        protocol: Protocol = Protocol.TCP,
        metadata: Optional[Dict[str, object]] = None,
    ) -> Optional[bytes]:
        """Open a TCP exchange; returns the response bytes or None.

        A connection to an unregistered or offline address fails (records
        an unsuccessful flow and returns None) — malware beaconing to a
        dead C2 looks exactly like this in the capture.
        """
        self._clock += self.latency
        self.stats["tcp_connects"] += 1
        entry = self._hosts.get(dst_ip)
        reachable = (
            entry is not None and entry.online and entry.tcp is not None
        )
        merged_metadata = dict(metadata or {})
        # Keep a payload excerpt so content-inspection (IDS signatures)
        # works on the capture, as it would on a pcap.
        merged_metadata.setdefault("payload", payload[:256])
        flow = FlowRecord(
            timestamp=self._clock,
            src=src_ip,
            dst=dst_ip,
            protocol=protocol,
            dst_port=dst_port,
            payload_size=len(payload),
            success=reachable,
            metadata=merged_metadata,
        )
        self.capture.record(flow)
        if not reachable:
            self.stats["tcp_failures"] += 1
            return None
        assert entry is not None and entry.tcp is not None
        return entry.tcp.handle_tcp_connect(src_ip, dst_port, payload, self)
