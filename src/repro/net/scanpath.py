"""Scan-path fast-lane counters behind the one MetricsSnapshot API.

The fast lane (compiled zone answers, wire-codec memoization, lazy
traffic capture) is a pure re-expression of the naive query path:
reports, traces, and deterministic metrics are byte-identical with the
lane on or off.  Its *effectiveness*, however, legitimately varies with
the cache settings — hit counts differ between a fast and a naive run
by construction — so these counters live exclusively in the ``timing``
section of the metrics document and are never registered on the
byte-compared report surface.

:class:`ScanPathMetrics` implements the structural
:class:`~repro.obs.metrics.MetricsSnapshot` protocol (name / to_dict /
merge / summary) without importing it; the live instance hangs off
:class:`~repro.net.network.SimulatedInternet` and is incremented by the
wire codec and the authoritative servers, while flow-capture figures
are folded in at snapshot time.
"""

from __future__ import annotations

from typing import Any, Dict

_COUNTERS = (
    "compiled_hits",
    "compiled_misses",
    "query_hits",
    "query_misses",
    "encode_hits",
    "encode_misses",
    "decode_hits",
    "decode_misses",
    "flows_recorded",
    "flows_skipped",
)


class ScanPathMetrics:
    """Hit/miss counters of the scan-path fast lane.

    * ``compiled_*`` — prebuilt authoritative answers served from the
      per-server compiled cache vs. built from a zone lookup;
    * ``query_*`` — query-side encode→decode round trips served from
      the wire codec's structural cache;
    * ``encode_*`` — response encodes served from the structural
      id-agnostic encode cache;
    * ``decode_*`` — response wire decodes served from the bounded
      byte-keyed cache;
    * ``flows_*`` — capture records materialized vs. counted only
      (``CaptureMode`` sampling / count-only).
    """

    name = "scan_path"
    heading = "scan-path fast lane:"

    __slots__ = _COUNTERS

    def __init__(self) -> None:
        for counter in _COUNTERS:
            setattr(self, counter, 0)

    @classmethod
    def from_network(cls, network: Any) -> "ScanPathMetrics":
        """Snapshot the live counters of a simulated internet.

        Duck-typed so the CLI can hand in anything network-shaped; a
        network without a fast lane yields an all-zero snapshot.
        """
        snapshot = cls()
        live = getattr(network, "scanpath", None)
        if live is not None:
            snapshot.merge(live)
        capture = getattr(network, "capture", None)
        if capture is not None:
            snapshot.flows_recorded += len(capture)
            skipped = getattr(capture, "skipped", None)
            if callable(skipped):
                snapshot.flows_skipped += skipped()
        return snapshot

    # -- MetricsSnapshot protocol ----------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {counter: getattr(self, counter) for counter in _COUNTERS}

    def merge(self, other: Any) -> None:
        for counter in _COUNTERS:
            setattr(
                self,
                counter,
                getattr(self, counter) + getattr(other, counter, 0),
            )

    def summary(self, indent: str = "") -> str:
        def rate(hits: int, misses: int) -> str:
            total = hits + misses
            if total == 0:
                return "n/a"
            return f"{100.0 * hits / total:.1f}%"

        lines = [
            f"{indent}compiled answers:  {self.compiled_hits} hits / "
            f"{self.compiled_misses} builds "
            f"({rate(self.compiled_hits, self.compiled_misses)})",
            f"{indent}query round trips: {self.query_hits} hits / "
            f"{self.query_misses} misses "
            f"({rate(self.query_hits, self.query_misses)})",
            f"{indent}wire encodes:      {self.encode_hits} hits / "
            f"{self.encode_misses} misses "
            f"({rate(self.encode_hits, self.encode_misses)})",
            f"{indent}wire decodes:      {self.decode_hits} hits / "
            f"{self.decode_misses} misses "
            f"({rate(self.decode_hits, self.decode_misses)})",
            f"{indent}capture records:   {self.flows_recorded} stored / "
            f"{self.flows_skipped} skipped",
        ]
        return "\n".join(lines)
