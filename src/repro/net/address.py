"""IPv4 address arithmetic and allocation pools.

The simulation assigns every host an IPv4 address drawn from per-operator
prefixes so that AS- and prefix-level reasoning (URHunter's uniformity
conditions, the SPF case study's "three IPs in the same /24") behaves
realistically.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Union

IPv4 = str


class AddressError(ValueError):
    """Raised for invalid addresses or exhausted pools."""


def ip_to_int(address: IPv4) -> int:
    """Dotted-quad to 32-bit integer."""
    try:
        return int(ipaddress.IPv4Address(address))
    except ipaddress.AddressValueError as exc:
        raise AddressError(f"invalid IPv4 address {address!r}") from exc


def int_to_ip(value: int) -> IPv4:
    """32-bit integer to dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise AddressError(f"IPv4 integer out of range: {value}")
    return str(ipaddress.IPv4Address(value))


def slash24(address: IPv4) -> str:
    """The /24 prefix containing ``address``, as ``a.b.c.0/24``."""
    network = ipaddress.IPv4Network(f"{address}/24", strict=False)
    return str(network)


def same_slash24(first: IPv4, second: IPv4) -> bool:
    """True when two addresses share a /24."""
    return ip_to_int(first) >> 8 == ip_to_int(second) >> 8


def in_prefix(address: IPv4, prefix: str) -> bool:
    """True when ``address`` falls inside CIDR ``prefix``."""
    try:
        network = ipaddress.IPv4Network(prefix, strict=False)
    except ValueError as exc:
        raise AddressError(f"invalid prefix {prefix!r}") from exc
    return ipaddress.IPv4Address(address) in network


@dataclass
class Prefix:
    """A CIDR block with sequential allocation."""

    cidr: str
    _network: ipaddress.IPv4Network = field(init=False, repr=False)
    _cursor: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        try:
            self._network = ipaddress.IPv4Network(self.cidr)
        except ValueError as exc:
            raise AddressError(f"invalid prefix {self.cidr!r}") from exc
        self._cursor = 1  # skip the network address

    @property
    def size(self) -> int:
        return self._network.num_addresses

    def allocate(self) -> IPv4:
        """The next unused address in the block."""
        # Leave the broadcast address unallocated for /31-and-larger blocks.
        limit = self.size - (1 if self.size > 2 else 0)
        if self._cursor >= limit:
            raise AddressError(f"prefix {self.cidr} exhausted")
        address = int(self._network.network_address) + self._cursor
        self._cursor += 1
        return int_to_ip(address)

    def contains(self, address: IPv4) -> bool:
        return ipaddress.IPv4Address(address) in self._network

    def __iter__(self) -> Iterator[IPv4]:
        for host in self._network.hosts():
            yield str(host)


@dataclass
class AddressPool:
    """A set of prefixes allocated to one operator (AS).

    Pools allocate addresses round-robin-free (first prefix with space),
    and track every address they hand out.
    """

    label: str
    prefixes: List[Prefix] = field(default_factory=list)
    allocated: Set[IPv4] = field(default_factory=set)
    #: rotate across prefixes instead of filling them in order — used for
    #: operators whose hosts should be spread over several ASes
    rotate: bool = False
    _rotation_cursor: int = field(default=0, repr=False)

    @classmethod
    def from_cidrs(cls, label: str, cidrs: Union[str, List[str]]) -> "AddressPool":
        if isinstance(cidrs, str):
            cidrs = [cidrs]
        return cls(label=label, prefixes=[Prefix(cidr) for cidr in cidrs])

    def add_prefix(self, cidr: str) -> None:
        self.prefixes.append(Prefix(cidr))

    def allocate(self) -> IPv4:
        """Allocate one address (first-fit, or round-robin with ``rotate``)."""
        if not self.prefixes:
            raise AddressError(f"address pool {self.label!r} has no prefixes")
        if self.rotate:
            order = [
                self.prefixes[(self._rotation_cursor + offset)
                              % len(self.prefixes)]
                for offset in range(len(self.prefixes))
            ]
            self._rotation_cursor = (
                self._rotation_cursor + 1
            ) % len(self.prefixes)
        else:
            order = self.prefixes
        for prefix in order:
            try:
                address = prefix.allocate()
            except AddressError:
                continue
            self.allocated.add(address)
            return address
        raise AddressError(f"address pool {self.label!r} exhausted")

    def allocate_many(self, count: int) -> List[IPv4]:
        return [self.allocate() for _ in range(count)]

    def contains(self, address: IPv4) -> bool:
        return any(prefix.contains(address) for prefix in self.prefixes)


class PrefixPlanner:
    """Deterministically carves the simulated address space into /16 blocks.

    Operators (providers, attackers, resolver fleets, origin hosting) each
    receive disjoint /16s, so prefix membership alone identifies an
    operator — mirroring how real AS-level data behaves.
    """

    def __init__(self, base_octet: int = 10):
        if not 1 <= base_octet <= 223:
            raise AddressError(f"base octet out of range: {base_octet}")
        self._base = base_octet
        self._next_block = 0

    def next_slash16(self, label: Optional[str] = None) -> str:
        """The next unused /16, as a CIDR string."""
        block = self._next_block
        self._next_block += 1
        first_octet = self._base + (block >> 8)
        second_octet = block & 0xFF
        if first_octet > 223:
            raise AddressError("prefix planner exhausted the address space")
        return f"{first_octet}.{second_octet}.0.0/16"

    def pool(self, label: str, blocks: int = 1) -> AddressPool:
        """Allocate a pool backed by ``blocks`` consecutive /16s."""
        cidrs = [self.next_slash16(label) for _ in range(blocks)]
        return AddressPool.from_cidrs(label, cidrs)
