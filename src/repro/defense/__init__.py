"""Operator-side defenses and their evaluation (paper §3 and §6)."""

from .evaluation import (
    DefenseScore,
    evaluate_defenses,
    score_defense,
    synthesize_benign_direct_flows,
    ur_retrieval_flows,
)
from .monitor import (
    DEFAULT_RESOLVER_ALLOWLIST,
    Detection,
    DirectResolutionMonitor,
    ReputationDetector,
)

__all__ = [
    "DEFAULT_RESOLVER_ALLOWLIST",
    "DefenseScore",
    "Detection",
    "DirectResolutionMonitor",
    "ReputationDetector",
    "evaluate_defenses",
    "score_defense",
    "synthesize_benign_direct_flows",
    "ur_retrieval_flows",
]
