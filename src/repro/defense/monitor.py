"""Network-operator defenses against UR-based covert channels.

The paper's §3 argues URs bypass two deployed defense classes, and §6
recommends that operators "give extra consideration to the DNS traffic
that does not follow the recursive process and avoid overreliance on
reputation-based detection".  This module implements both classes so the
claims are measurable:

* :class:`ReputationDetector` — the bypassed baseline: flags DNS queries
  for blacklisted domains and flows toward blacklisted IPs.  UR
  retrievals evade the DNS half entirely (the domain is reputable and
  the nameserver belongs to a reputable provider).
* :class:`DirectResolutionMonitor` — the recommended mitigation: flags
  client DNS traffic that bypasses the organisation's resolvers.  It
  catches UR retrievals but also fires on benign direct-resolver use
  (public DNS users), which is exactly the collateral-damage trade-off
  the paper describes; an allowlist of well-known public resolvers
  mitigates part of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from ..intel.aggregator import ThreatIntelAggregator
from ..net.traffic import FlowRecord, Protocol


@dataclass(frozen=True)
class Detection:
    """One defense verdict on one flow."""

    flow: FlowRecord
    rule: str
    detail: str = ""


class ReputationDetector:
    """Blocklist-based detection (the paper's bypassed baseline).

    Flags (1) DNS queries whose qname is on a domain blocklist and
    (2) any flow whose destination IP is flagged by threat intel.
    """

    def __init__(
        self,
        intel: Optional[ThreatIntelAggregator] = None,
        domain_blocklist: Iterable[str] = (),
    ):
        self.intel = intel
        self.domain_blocklist: Set[str] = {
            entry.lower().rstrip(".") for entry in domain_blocklist
        }

    def inspect(self, flows: Sequence[FlowRecord]) -> List[Detection]:
        detections: List[Detection] = []
        for flow in flows:
            if flow.protocol is Protocol.DNS:
                qname = str(flow.metadata.get("qname", "")).lower().rstrip(".")
                if qname and self._domain_blocked(qname):
                    detections.append(
                        Detection(
                            flow=flow,
                            rule="reputation:domain",
                            detail=f"blocklisted domain {qname}",
                        )
                    )
                    continue
            if self.intel is not None and self.intel.is_flagged(flow.dst):
                detections.append(
                    Detection(
                        flow=flow,
                        rule="reputation:ip",
                        detail=f"blocklisted destination {flow.dst}",
                    )
                )
        return detections

    def _domain_blocked(self, qname: str) -> bool:
        labels = qname.split(".")
        for index in range(len(labels)):
            if ".".join(labels[index:]) in self.domain_blocklist:
                return True
        return False


#: well-known public resolver addresses operators typically allowlist
DEFAULT_RESOLVER_ALLOWLIST = frozenset(
    {"8.8.8.8", "8.8.4.4", "1.1.1.1", "1.0.0.1", "9.9.9.9"}
)


class DirectResolutionMonitor:
    """Flags DNS traffic that does not follow the recursive process.

    ``approved_resolvers`` is the organisation's resolver set; DNS flows
    from monitored clients to any other port-53 endpoint are direct
    resolutions.  With ``allowlist`` the monitor tolerates well-known
    public resolvers (fewer false positives, but an attacker hosting URs
    on an allowlisted operator would slip through — the centralization
    risk the paper notes).
    """

    def __init__(
        self,
        approved_resolvers: Iterable[str],
        allowlist: Iterable[str] = (),
        monitored_clients: Optional[Iterable[str]] = None,
    ):
        self.approved: Set[str] = set(approved_resolvers)
        self.allowlist: Set[str] = set(allowlist)
        self.monitored: Optional[Set[str]] = (
            set(monitored_clients) if monitored_clients is not None else None
        )

    def inspect(self, flows: Sequence[FlowRecord]) -> List[Detection]:
        detections: List[Detection] = []
        for flow in flows:
            if flow.protocol is not Protocol.DNS:
                continue
            if self.monitored is not None and flow.src not in self.monitored:
                continue
            if flow.dst in self.approved or flow.dst in self.allowlist:
                continue
            detections.append(
                Detection(
                    flow=flow,
                    rule="direct-resolution",
                    detail=(
                        f"client {flow.src} queried non-approved DNS "
                        f"server {flow.dst} for "
                        f"{flow.metadata.get('qname')}"
                    ),
                )
            )
        return detections
