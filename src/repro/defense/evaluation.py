"""Evaluate defenses against the simulated UR campaigns.

Given a world's sandbox reports (malicious traffic with ground truth)
plus benign direct-resolver traffic, compute per-defense detection and
false-positive rates — quantifying the paper's §3 claim that URs bypass
reputation-based detection, and §6's trade-off for direct-resolution
monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..net.traffic import FlowRecord, Protocol
from ..sandbox.sandbox import SandboxReport
from .monitor import Detection, DirectResolutionMonitor, ReputationDetector


@dataclass
class DefenseScore:
    """Detection outcome of one defense over a labeled flow set."""

    name: str
    malicious_flows: int
    detected_malicious: int
    benign_flows: int
    false_positives: int

    @property
    def detection_rate(self) -> float:
        if not self.malicious_flows:
            return 0.0
        return self.detected_malicious / self.malicious_flows

    @property
    def false_positive_rate(self) -> float:
        if not self.benign_flows:
            return 0.0
        return self.false_positives / self.benign_flows

    def summary(self) -> str:
        return (
            f"{self.name}: detects "
            f"{self.detected_malicious}/{self.malicious_flows} malicious "
            f"DNS retrievals ({100 * self.detection_rate:.1f}%), "
            f"{self.false_positives}/{self.benign_flows} benign flows "
            f"flagged ({100 * self.false_positive_rate:.1f}% FPR)"
        )


def ur_retrieval_flows(
    sandbox_reports: Sequence[SandboxReport],
    measured_nameservers: Set[str],
) -> List[FlowRecord]:
    """DNS flows where malware queried a measured provider nameserver
    directly — the covert-channel retrievals (threat-model step ③)."""
    flows: List[FlowRecord] = []
    for report in sandbox_reports:
        for flow in report.capture.dns_lookups():
            if flow.dst in measured_nameservers:
                flows.append(flow)
    return flows


def score_defense(
    name: str,
    detections: Sequence[Detection],
    malicious_flows: Sequence[FlowRecord],
    benign_flows: Sequence[FlowRecord],
) -> DefenseScore:
    """Score a detection list against labeled malicious/benign flows."""
    detected = {id(detection.flow) for detection in detections}
    return DefenseScore(
        name=name,
        malicious_flows=len(malicious_flows),
        detected_malicious=sum(
            1 for flow in malicious_flows if id(flow) in detected
        ),
        benign_flows=len(benign_flows),
        false_positives=sum(
            1 for flow in benign_flows if id(flow) in detected
        ),
    )


def synthesize_benign_direct_flows(
    world: "object", per_client: int = 3, clients: int = 5
) -> List[FlowRecord]:
    """Benign direct-to-public-DNS traffic (Google Public DNS users).

    This is the collateral-damage population §3 describes: blocking
    direct DNS "may inadvertently disrupt legitimate activities ... such
    as the traffic generated from configuring custom DNS resolvers".
    """
    from .monitor import DEFAULT_RESOLVER_ALLOWLIST

    public = sorted(DEFAULT_RESOLVER_ALLOWLIST)
    domains = [
        str(entry.domain) for entry in world.tranco.top(per_client)
    ]
    flows: List[FlowRecord] = []
    for client_index in range(clients):
        client = f"198.18.60.{client_index + 1}"
        for query_index in range(per_client):
            flows.append(
                FlowRecord(
                    timestamp=float(query_index),
                    src=client,
                    dst=public[client_index % len(public)],
                    protocol=Protocol.DNS,
                    dst_port=53,
                    metadata={
                        "qname": domains[query_index % len(domains)]
                    },
                )
            )
    return flows


def evaluate_defenses(
    world: "object",
    benign_direct_flows: Sequence[FlowRecord] = (),
) -> Dict[str, DefenseScore]:
    """Run both defense classes over the world's malicious DNS traffic.

    ``benign_direct_flows`` lets callers inject legitimate
    direct-to-public-resolver traffic (e.g. users of Google Public DNS)
    to expose the direct-resolution monitor's collateral damage.
    """
    measured = {
        target.address for target in world.nameserver_targets
    }
    malicious = ur_retrieval_flows(world.sandbox_reports, measured)
    benign = list(benign_direct_flows)
    if not benign:
        benign = synthesize_benign_direct_flows(world)
    all_flows = malicious + benign

    reputation = ReputationDetector(
        intel=world.intel,
        domain_blocklist=["evil-c2.example", "malware-drop.example"],
    )
    monitor_strict = DirectResolutionMonitor(
        approved_resolvers=set(world.open_resolver_ips[:1]),
    )
    from .monitor import DEFAULT_RESOLVER_ALLOWLIST

    monitor_allowlist = DirectResolutionMonitor(
        approved_resolvers=set(world.open_resolver_ips[:1]),
        allowlist=DEFAULT_RESOLVER_ALLOWLIST,
    )

    return {
        "reputation": score_defense(
            "reputation-based (baseline)",
            reputation.inspect(all_flows),
            malicious,
            benign,
        ),
        "direct-strict": score_defense(
            "direct-resolution monitor (strict)",
            monitor_strict.inspect(all_flows),
            malicious,
            benign,
        ),
        "direct-allowlist": score_defense(
            "direct-resolution monitor (allowlisted public DNS)",
            monitor_allowlist.inspect(all_flows),
            malicious,
            benign,
        ),
    }
