"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation artifacts:

* ``run``        — full measurement, §5.1 overview summary;
* ``table1``     — suspicious-UR overview by record type;
* ``table2``     — hosting-strategy matrix by active probing;
* ``figures``    — Figure 2 and Figure 3(a)-(d) with paper comparisons;
* ``casestudies``— the §5.3 case studies;
* ``defenses``   — score reputation vs direct-resolution monitoring;
* ``validate``   — the §4.2 zero-false-negative check;
* ``chaos``      — replay chaos scenarios through the robustness
  invariant checker (all bundled scripts, or one via
  ``--chaos-script``);
* ``plan``       — print the deterministic stage-1 scan-plan summary
  (unit counts, nameserver groups, shard partition) without running
  a single query; ``--json`` dumps it machine-readably, ``--diff
  OLD.json`` compares against a saved dump, and ``--result-store``
  explains which groups a warm run would replay vs re-execute;
* ``trace summarize FILE`` — render a ``--trace-out`` JSONL as a
  per-stage span tree with event counters.

Shared options: ``--seed``, ``--scale {small,default,paper}``,
``--post-disclosure``, ``--mx`` (future-work MX sweep).

Resilience options: ``--checkpoint-dir`` writes per-stage JSON
checkpoints, ``--resume`` continues a killed run from the last completed
stage, and the ``--*-fault-rate`` knobs inject seeded data-source faults
for chaos testing.  ``--run-deadline``/``--stage-deadline`` bound the
run in virtual seconds (exhausted budgets shed remaining queries into
the loss ledger), ``--hedge-delay`` turns the first retry into a fast
hedge, ``--aimd`` adapts send rate to timeout signals, and
``--chaos-script`` applies a declarative fault scenario before the run.

Sharding options: ``--shards N`` partitions the stage-1 UR scan into N
isolated shards (byte-identical report), ``--shard-workers K`` executes
them across K worker processes.

Incremental options: ``--result-store DIR`` persists each nameserver
group's merged stage-1 outcome content-addressed by its query units,
zone serials, provider policy, and scan-shaping config; later runs
replay unchanged groups from the store (byte-identical report) and
re-execute only the dirty ones.  ``--no-incremental`` keeps the store
untouched for one run; chaos/faulted runs bypass it automatically.

Observability options: ``--trace-out PATH`` streams the run's event bus
(:mod:`repro.obs`) to a JSONL file, ``--metrics-out PATH`` writes the
consolidated metrics document, and ``-q``/``-v`` tune stderr verbosity
(stdout stays machine-readable at every level).

Exit codes (stable contract, relied on by CI):

* 0 — clean run, or degraded-but-complete (a warning banner goes to
  stderr so operators notice without breaking scripted callers);
* 1 — the requested validation failed (nonzero false-negative rate);
* 2 — usage or configuration error;
* 3 — the pipeline aborted mid-stage (checkpoints, if enabled, were
  kept for ``--resume``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

EXIT_OK = 0
EXIT_VALIDATION_FAILED = 1
EXIT_USAGE = 2
EXIT_ABORTED = 3

from .analysis import (
    PAPER_FIGURE3A,
    PAPER_FIGURE3B,
    PAPER_FIGURE3C,
    PAPER_FIGURE3D,
    all_case_studies,
    build_table1,
    build_table2,
    compare_to_paper,
    figure2,
    figure3a,
    figure3b,
    figure3c,
    figure3d,
    overview_funnel,
)
from .core import HunterConfig, URHunter
from .engine import DEFAULT_ENGINE, ENGINE_REGISTRY
from .defense import evaluate_defenses
from .dns.rdata import RRType
from .hosting import TABLE2_PROVIDERS
from .intel.aggregator import ThreatIntelAggregator
from .net.scanpath import ScanPathMetrics
from .obs import (
    Reporter,
    RunTrace,
    Verbosity,
    build_metrics_document,
    summarize_trace,
)
from .obs.summarize import TraceFormatError
from .pipeline import (
    CheckpointError,
    CheckpointStore,
    FaultPlan,
    FlakyIPInfo,
    FlakyPassiveDNS,
    FlakyVendor,
    PipelineError,
    PipelineRunner,
    StageFailed,
)
from .scenario import (
    ScenarioConfig,
    build_world,
    paper_scale_config,
    small_config,
)

_SCALES = {
    "small": small_config,
    "default": lambda seed: ScenarioConfig(seed=seed),
    "paper": paper_scale_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "URHunter reproduction: measure undelegated records on a "
            "simulated internet (IMC 2023)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="scenario seed (default 7)"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="scenario size (default: default)",
    )
    parser.add_argument(
        "--post-disclosure",
        action="store_true",
        help="apply the providers' post-disclosure mitigations (§6)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="with 'run': print the complete evaluation document",
    )
    parser.add_argument(
        "--mx",
        action="store_true",
        help="also sweep MX records (the paper's future-work extension)",
    )
    engine = parser.add_argument_group(
        "scan engine", "stage-1 collection scheduling and fault tolerance"
    )
    engine.add_argument(
        "--engine",
        choices=sorted(ENGINE_REGISTRY),
        default=DEFAULT_ENGINE,
        help=f"query engine driving stage 1 (default: {DEFAULT_ENGINE})",
    )
    engine.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        metavar="N",
        help="worker lanes the batched engine keeps in flight (default 8)",
    )
    engine.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-sends after a query times out (default 2)",
    )
    engine.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="virtual seconds before a query is declared lost (default 5)",
    )
    engine.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        metavar="P",
        help=(
            "inject uniform query loss with probability P in [0, 1) "
            "(deterministic per --seed; default 0, no loss)"
        ),
    )
    engine.add_argument(
        "--no-scan-cache",
        action="store_true",
        help=(
            "disable the scan-path fast lane (compiled zone answers + "
            "wire-codec memoization); the naive reference path produces "
            "byte-identical output, just slower"
        ),
    )
    engine.add_argument(
        "--capture-mode",
        choices=("full", "sampled", "off"),
        default="full",
        help=(
            "scan-phase traffic-capture fidelity: full stores every "
            "flow, sampled every Nth per protocol, off only counts "
            "(default: full; sandbox detonation always captures fully)"
        ),
    )
    execution = parser.add_argument_group(
        "execution", "batch vs streaming dataflow"
    )
    execution.add_argument(
        "--execution",
        choices=("batch", "stream"),
        default="batch",
        help=(
            "run the three stages as a whole-corpus batch or as one "
            "record-level streaming dataflow (default: batch; the "
            "report is byte-identical either way)"
        ),
    )
    execution.add_argument(
        "--channel-depth",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bounded-channel capacity between streaming stages "
            "(default 64; smaller = tighter memory, more scheduling)"
        ),
    )
    execution.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --execution stream and --checkpoint-dir: persist an "
            "incremental segment every N classified records "
            "(omit for stage checkpoints only; N must be >= 1)"
        ),
    )
    sharding = parser.add_argument_group(
        "sharding", "stage-1 scan-plan partitioning and worker pool"
    )
    sharding.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "partition the UR scan's nameserver groups into N isolated "
            "shards; the merged report is byte-identical to an "
            "unsharded run (omit for the legacy in-line scan)"
        ),
    )
    sharding.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="K",
        help=(
            "execute shards across K worker processes (default 1: all "
            "shards run in this process; needs --shards)"
        ),
    )
    incremental = parser.add_argument_group(
        "incremental", "group-result store and warm re-scans"
    )
    incremental.add_argument(
        "--result-store",
        metavar="DIR",
        default=None,
        help=(
            "persist per-nameserver-group stage-1 outcomes in DIR and "
            "replay unchanged groups on later runs (warm re-scan; the "
            "report stays byte-identical to a cold run; chaos/faulted "
            "runs bypass the store automatically)"
        ),
    )
    incremental.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "replay stored group outcomes when --result-store is set "
            "(default: on; --no-incremental executes every group and "
            "leaves the store untouched)"
        ),
    )
    planning = parser.add_argument_group(
        "plan", "scan-plan inspection ('plan' command)"
    )
    planning.add_argument(
        "--json",
        action="store_true",
        dest="plan_json",
        help=(
            "with 'plan': print the machine-readable plan summary "
            "(save it to compare against a later plan with --diff)"
        ),
    )
    planning.add_argument(
        "--diff",
        metavar="OLD.json",
        dest="plan_diff",
        default=None,
        help=(
            "with 'plan': diff the current plan against a saved --json "
            "dump (added/removed/changed groups); exits 2 on malformed "
            "input"
        ),
    )
    stage2 = parser.add_argument_group(
        "stage 2", "exclusion-stage parallelism and caching"
    )
    stage2.add_argument(
        "--stage2-workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker threads for stage-2 classification (default 1; "
            "the report is byte-identical across worker counts)"
        ),
    )
    stage2.add_argument(
        "--no-stage2-memoize",
        action="store_true",
        help=(
            "disable per-key verdict memoization and classify every "
            "record independently (debugging aid)"
        ),
    )
    resilience = parser.add_argument_group(
        "resilience", "checkpointing, resumption, and chaos injection"
    )
    resilience.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write per-stage JSON checkpoints into DIR",
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the checkpoints in --checkpoint-dir, "
            "re-running only stages without a completed snapshot"
        ),
    )
    resilience.add_argument(
        "--intel-fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject threat-intel vendor faults with probability P",
    )
    resilience.add_argument(
        "--pdns-fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject passive-DNS faults with probability P",
    )
    resilience.add_argument(
        "--ipinfo-fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject IP-metadata faults with probability P",
    )
    resilience.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed for the injected data-source faults (default 0)",
    )
    resilience.add_argument(
        "--run-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "virtual-seconds budget for the whole run; once exhausted, "
            "remaining queries are shed (recorded, never silently "
            "dropped; omit for no deadline)"
        ),
    )
    resilience.add_argument(
        "--stage-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "virtual-seconds budget per pipeline phase "
            "(omit for no deadline)"
        ),
    )
    resilience.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "after a first failed attempt, hedge the retry after this "
            "many virtual seconds instead of a full timeout+backoff "
            "(must be below --timeout; omit to disable hedging)"
        ),
    )
    resilience.add_argument(
        "--aimd",
        action="store_true",
        help=(
            "adapt per-server/per-provider send rate on timeout signals "
            "(additive recovery, multiplicative cut; no-op on healthy "
            "runs)"
        ),
    )
    resilience.add_argument(
        "--chaos-script",
        metavar="NAME|PATH",
        default=None,
        help=(
            "apply a chaos scenario before the run: a bundled name "
            "(see the 'chaos' command) or a JSON script path"
        ),
    )
    observability = parser.add_argument_group(
        "observability", "trace/metrics artifacts and stderr verbosity"
    )
    observability.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the run's event bus as JSONL to PATH (deterministic "
            "section first, timing section after; inspect with "
            "'repro trace summarize PATH')"
        ),
    )
    observability.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the consolidated metrics document (versioned JSON, "
            "deterministic and timing sections) to PATH"
        ),
    )
    observability.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress routine stderr diagnostics (errors/warnings stay)",
    )
    observability.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="show scheduling/debug detail on stderr",
    )
    parser.add_argument(
        "command",
        choices=(
            "run",
            "table1",
            "table2",
            "figures",
            "casestudies",
            "defenses",
            "validate",
            "chaos",
            "plan",
        ),
        help="what to produce",
    )
    return parser


def _scenario(args: argparse.Namespace) -> ScenarioConfig:
    config = _SCALES[args.scale](args.seed)
    config.post_disclosure = args.post_disclosure
    return config


def _hunter_config(args: argparse.Namespace) -> HunterConfig:
    config = HunterConfig(
        engine=args.engine,
        max_concurrency=args.max_concurrency,
        retries=args.retries,
        timeout=args.timeout,
        stage2_workers=args.stage2_workers,
        stage2_memoize=not args.no_stage2_memoize,
        execution=args.execution,
        channel_depth=args.channel_depth,
        run_deadline=args.run_deadline or 0.0,
        stage_deadline=args.stage_deadline or 0.0,
        hedge_delay=args.hedge_delay or 0.0,
        aimd=args.aimd,
        scan_cache=not args.no_scan_cache,
        capture_mode=args.capture_mode,
        shards=args.shards or 0,
        shard_workers=args.shard_workers or 1,
        incremental=args.incremental,
    )
    if args.mx:
        config.query_types = (RRType.A, RRType.TXT, RRType.MX)
    return config


def _scenario_fingerprint(args: argparse.Namespace) -> str:
    """Everything outside HunterConfig that shapes the measurement —
    resuming under a different world must be rejected, not merged."""
    return (
        f"scale={args.scale},seed={args.seed},"
        f"post={args.post_disclosure},mx={args.mx},"
        f"loss={args.loss_rate},intel={args.intel_fault_rate},"
        f"pdns={args.pdns_fault_rate},ipinfo={args.ipinfo_fault_rate},"
        f"fseed={args.fault_seed},chaos={args.chaos_script}"
    )


def _apply_faults(args: argparse.Namespace, world, hunter: URHunter) -> None:
    """Wrap the stage-2/3 data sources in seeded fault injectors."""
    if args.intel_fault_rate:
        vendors = [
            FlakyVendor(
                vendor,
                FaultPlan(
                    seed=args.fault_seed + index,
                    error_rate=args.intel_fault_rate,
                ),
            )
            for index, vendor in enumerate(world.vendors)
        ]
        hunter.intel = ThreatIntelAggregator(vendors)
    if args.pdns_fault_rate and world.pdns is not None:
        hunter.pdns = FlakyPassiveDNS(
            world.pdns,
            FaultPlan(
                seed=args.fault_seed + 101,
                error_rate=args.pdns_fault_rate,
            ),
        )
    if args.ipinfo_fault_rate:
        # stage 2 only: stage-1 profile building keeps the clean source
        hunter.stage2_ipinfo = FlakyIPInfo(
            world.ipinfo,
            FaultPlan(
                seed=args.fault_seed + 202,
                error_rate=args.ipinfo_fault_rate,
            ),
        )


def _trace_command(argv: List[str], reporter: Reporter) -> int:
    """Handle ``repro trace summarize FILE`` (dispatched before the main
    parser: the trace tools need no scenario options)."""
    if len(argv) != 2 or argv[0] != "summarize":
        reporter.error("usage: repro trace summarize FILE")
        return EXIT_USAGE
    try:
        print(summarize_trace(argv[1]))
    except OSError as error:
        reporter.error(f"error: cannot read trace: {error}")
        return EXIT_USAGE
    except TraceFormatError as error:
        reporter.error(f"error: {error}")
        return EXIT_USAGE
    return EXIT_OK


def _verbosity(args: argparse.Namespace) -> Verbosity:
    if args.quiet:
        return Verbosity.QUIET
    if args.verbose:
        return Verbosity.VERBOSE
    return Verbosity.NORMAL


def _write_metrics(
    path: str,
    report,
    runner: PipelineRunner,
    hunter: URHunter,
    args: argparse.Namespace,
    incremental=None,
) -> None:
    """Write the consolidated ``--metrics-out`` document."""
    flow_stats = hunter.last_flow_stats
    document = build_metrics_document(
        report,
        fingerprint=runner._fingerprint(),
        execution=args.execution,
        stage2_workers=args.stage2_workers,
        channel_depth=args.channel_depth,
        shards=args.shards or 0,
        shard_workers=args.shard_workers or 1,
        flow_metrics=(
            flow_stats.to_metrics() if flow_stats is not None else None
        ),
        scan_path=ScanPathMetrics.from_network(hunter.network),
        incremental=incremental,
    )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def _plan_command(
    args: argparse.Namespace, hunter: URHunter, reporter: Reporter
) -> int:
    """Handle ``repro plan``: text summary, ``--json`` dump, ``--diff``
    against a saved dump, and — with ``--result-store`` — the would-
    replay/would-execute explanation for a warm run."""
    from .incremental import (
        GroupResultStore,
        PlanDiffer,
        PlanSummaryError,
        diff_plan_summaries,
        load_plan_summary,
        plan_summary_json,
        render_plan_diff,
    )

    summary = plan_summary_json(hunter.plan)
    if args.plan_diff is not None:
        try:
            old = load_plan_summary(args.plan_diff)
        except PlanSummaryError as error:
            reporter.error(f"error: {error}")
            return EXIT_USAGE
        print(render_plan_diff(diff_plan_summaries(old, summary)))
        return EXIT_OK
    if args.plan_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return EXIT_OK
    print(hunter.plan.summary(shards=hunter.config.shards or 1))
    if args.result_store:
        differ = PlanDiffer(GroupResultStore(args.result_store))
        providers = {
            target.address: target.provider
            for target in hunter.nameservers
        }
        diff = differ.partition(
            hunter.plan, hunter.network, hunter.config, providers
        )
        reasons: dict = {}
        for decision in diff.decisions:
            if decision.action == "execute":
                reasons[decision.reason] = (
                    reasons.get(decision.reason, 0) + 1
                )
        detail = ", ".join(
            f"{count} {reason}"
            for reason, count in sorted(reasons.items())
        )
        print(
            f"result store: {diff.hits} groups would replay, "
            f"{diff.dirty} would execute"
            + (f" ({detail})" if detail else "")
        )
        for decision in diff.decisions:
            # stale groups are the actionable ones: their nameserver
            # state moved since the stored outcome was written
            if decision.reason == "stale":
                print(f"  stale: {decision.server_ip}")
    return EXIT_OK


def _chaos_command(args: argparse.Namespace, reporter: Reporter) -> int:
    """Handle ``repro chaos``: replay scenarios through the invariant
    checker (small worlds, the full batch/stream matrix)."""
    from .resilience.invariants import (
        InvariantViolation,
        check_clean_baseline,
        check_scenario,
    )
    from .resilience.scenario import (
        BUNDLED_SCENARIOS,
        ScenarioError,
        load_scenario,
    )

    if args.chaos_script:
        try:
            scripts = [load_scenario(args.chaos_script)]
        except ScenarioError as error:
            reporter.error(f"error: {error}")
            return EXIT_USAGE
    else:
        scripts = list(BUNDLED_SCENARIOS)
    try:
        check_clean_baseline(seed=args.seed)
        print("clean-baseline: resilience on == off (byte-identical)")
        for script in scripts:
            verdict = check_scenario(script, seed=args.seed)
            print(verdict.summary())
    except InvariantViolation as error:
        reporter.error(f"error: invariant violated: {error}")
        return EXIT_VALIDATION_FAILED
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list and arg_list[0] == "trace":
        return _trace_command(arg_list[1:], Reporter())
    args = build_parser().parse_args(arg_list)
    reporter = Reporter(_verbosity(args))
    if args.quiet and args.verbose:
        reporter.error("error: --quiet and --verbose are mutually exclusive")
        return EXIT_USAGE
    if args.resume and not args.checkpoint_dir:
        reporter.error("error: --resume requires --checkpoint-dir")
        return EXIT_USAGE
    # explicit non-positive values on count/duration knobs are always a
    # mistake (omit the flag to disable the feature) — reject loudly
    for option, value in (
        ("--checkpoint-every", args.checkpoint_every),
        ("--run-deadline", args.run_deadline),
        ("--stage-deadline", args.stage_deadline),
        ("--hedge-delay", args.hedge_delay),
        ("--shards", args.shards),
        ("--shard-workers", args.shard_workers),
    ):
        if value is not None and value <= 0:
            reporter.error(
                f"error: {option} must be > 0, got {value} "
                f"(omit the flag to disable)"
            )
            return EXIT_USAGE
    if args.command == "chaos":
        return _chaos_command(args, reporter)
    try:
        hunter_config = _hunter_config(args)
    except ValueError as error:
        reporter.error(f"error: {error}")
        return EXIT_USAGE
    reporter.info(
        f"# scenario: scale={args.scale} seed={args.seed} "
        f"post_disclosure={args.post_disclosure} mx={args.mx} "
        f"engine={args.engine} loss_rate={args.loss_rate}"
    )
    world = build_world(_scenario(args))
    if args.loss_rate:
        if not 0.0 <= args.loss_rate < 1.0:
            reporter.error(
                f"error: --loss-rate must be in [0, 1), "
                f"got {args.loss_rate}"
            )
            return EXIT_USAGE
        world.network.inject_faults(
            loss_rate=args.loss_rate, seed=args.seed
        )

    if args.command == "table2":
        table = build_table2(
            [world.providers[provider] for provider in TABLE2_PROVIDERS]
        )
        print(table.text)
        return EXIT_OK

    hunter = URHunter.from_world(world, hunter_config)

    if args.command == "plan":
        # pure plan inspection: the plan was built in the constructor,
        # before any packet moved — print and leave
        return _plan_command(args, hunter, reporter)

    try:
        _apply_faults(args, world, hunter)
    except ValueError as error:
        reporter.error(f"error: {error}")
        return EXIT_USAGE
    if args.chaos_script:
        from .resilience.scenario import (
            ScenarioError,
            apply_scenario,
            load_scenario,
        )

        try:
            script = load_scenario(args.chaos_script)
            installed = apply_scenario(script, world, hunter)
        except ScenarioError as error:
            reporter.error(f"error: {error}")
            return EXIT_USAGE
        reporter.info(
            f"# chaos: {script.name} ({installed} fault bindings)"
        )

    if hunter_config.shards > 0 and hunter_config.shard_workers > 1:
        # hand the shard pool a picklable recipe to rebuild this exact
        # world (scenario + loss faults + chaos) in worker processes
        from .plan.pool import WorldSpec

        hunter.world_spec = WorldSpec(
            scenario=_scenario(args),
            loss_rate=args.loss_rate or 0.0,
            loss_seed=args.seed,
            chaos_script=args.chaos_script or None,
        )

    result_store = None
    if args.result_store:
        from .incremental import GroupResultStore

        result_store = GroupResultStore(args.result_store)
        hunter.result_store = result_store

    trace = RunTrace(args.trace_out) if args.trace_out else None
    if trace is not None:
        hunter.attach_trace(trace)
    store = (
        CheckpointStore(args.checkpoint_dir)
        if args.checkpoint_dir
        else None
    )
    runner = PipelineRunner(
        hunter,
        store=store,
        resume=args.resume,
        scenario_fingerprint=_scenario_fingerprint(args),
        checkpoint_every=args.checkpoint_every or 0,
    )
    needs_validation = args.command in ("run", "validate")
    try:
        result = runner.run(validate=needs_validation)
    except CheckpointError as error:
        reporter.error(f"error: {error}")
        return EXIT_ABORTED
    except (StageFailed, PipelineError) as error:
        reporter.error(f"error: {error}")
        if store is not None:
            reporter.warn(
                "checkpoints kept; rerun with --resume to continue"
            )
        return EXIT_ABORTED
    finally:
        # an aborted run still leaves its partial trace behind —
        # finalize() is idempotent and rewrites on every call
        if trace is not None:
            trace.finalize()
    report = result.report
    if result_store is not None:
        result_store.write_stats()
        stats = result_store.stats
        reporter.info(
            f"# result store: {stats['hits']} hits, "
            f"{stats['misses']} misses, "
            f"{stats['invalidated']} invalidated, "
            f"{stats['stored']} stored"
        )
    if args.metrics_out:
        _write_metrics(
            args.metrics_out,
            report,
            runner,
            hunter,
            args,
            incremental=(
                result_store.stats if result_store is not None else None
            ),
        )
    if result.resumed:
        reporter.info(
            f"# resumed from checkpoint: {', '.join(result.resumed)}"
        )
    if report.is_degraded:
        degraded = report.degraded
        reporter.warn(
            "warning: degraded run — sources: "
            + (", ".join(degraded.degraded_source_names) or "none")
            + f"; unverifiable URs: {degraded.unverifiable_urs}"
        )
    if report.stage2_metrics is not None:
        # stderr, not stdout: wall-clock throughput varies run to run and
        # would break the byte-compared resume transcripts
        perf = report.stage2_metrics
        reporter.info(
            f"# stage-2 perf: {perf.records_per_s:,.0f} records/s  "
            f"workers={perf.workers}  wall={perf.wall_s * 1000:.1f}ms"
        )

    if args.command == "run":
        if args.full:
            from .analysis import render_full_report

            nameserver_provider = {
                target.address: target.provider
                for target in world.nameserver_targets
            }
            print(
                render_full_report(
                    report,
                    sandbox_reports=world.sandbox_reports,
                    nameserver_provider=nameserver_provider,
                    world=world,
                )
            )
        else:
            funnel = overview_funnel(report)
            for key, value in funnel.items():
                print(f"{key:12} {value:,}")
            print()
            print(report.summary())
    elif args.command == "table1":
        print(build_table1(report).text)
    elif args.command == "figures":
        print(figure2(report).text)
        for figure, paper in (
            (figure3a(report), PAPER_FIGURE3A),
            (figure3b(report), PAPER_FIGURE3B),
            (figure3c(report), PAPER_FIGURE3C),
            (figure3d(report), PAPER_FIGURE3D),
        ):
            print()
            print(figure.text)
            print(compare_to_paper(figure.series, paper))
    elif args.command == "casestudies":
        nameserver_provider = {
            target.address: target.provider
            for target in world.nameserver_targets
        }
        cases = all_case_studies(
            report, world.sandbox_reports, nameserver_provider
        )
        for case_name, case in cases.items():
            print(f"[{case_name}] {case.summary()}")
    elif args.command == "defenses":
        scores = evaluate_defenses(world)
        for score in scores.values():
            print(score.summary())
    elif args.command == "validate":
        print(
            f"false-negative rate on delegated records: "
            f"{report.false_negative_rate:.4f} (paper: 0.0)"
        )
        return (
            EXIT_OK
            if report.false_negative_rate == 0.0
            else EXIT_VALIDATION_FAILED
        )
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
