"""IP metadata: AS, geolocation, TLS certificates, HTTP page classes.

Stands in for the MaxMind lookups and the HTTP/TLS probing URHunter's
stage 1 performs on every undelegated A record.  The database resolves a
specific registration first, then falls back to per-prefix defaults —
exactly how AS/geo data behaves (prefix-granular) versus cert/HTTP data
(host-granular).
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.address import ip_to_int


class PageKind(enum.Enum):
    """Coarse classification of the HTTP content at an IP."""

    NONE = "none"  # nothing listening / connection refused
    NORMAL = "normal"  # an ordinary site
    PARKED = "parked"  # domain-parking page
    REDIRECT = "redirect"  # redirection page
    WARNING = "warning"  # provider protective/warning page


#: Keywords URHunter's HTTP filter looks for (Appendix B).
PAGE_KEYWORDS = {
    PageKind.PARKED: ("parked", "parking", "this domain is for sale"),
    PageKind.REDIRECT: ("redirecting", "moved permanently", "meta refresh"),
    PageKind.WARNING: ("not hosted", "warning", "suspended"),
}


@dataclass(frozen=True)
class HttpPage:
    """A probed HTTP response."""

    status: int = 200
    title: str = ""
    body: str = ""
    kind: PageKind = PageKind.NORMAL

    @classmethod
    def none(cls) -> "HttpPage":
        return cls(status=0, kind=PageKind.NONE)

    @classmethod
    def parked(cls) -> "HttpPage":
        return cls(
            status=200,
            title="Domain parked",
            body="This domain is parked free, courtesy of the registrar.",
            kind=PageKind.PARKED,
        )

    @classmethod
    def redirect(cls, location: str = "https://example.invalid/") -> "HttpPage":
        return cls(
            status=301,
            title="Redirecting",
            body=f"Redirecting you to {location} ...",
            kind=PageKind.REDIRECT,
        )

    @classmethod
    def warning(cls, provider: str) -> "HttpPage":
        return cls(
            status=200,
            title=f"{provider} — domain not hosted",
            body=(
                f"Warning: this domain is not hosted at {provider}. "
                "If you are the owner, finish your delegation."
            ),
            kind=PageKind.WARNING,
        )

    def contains_keywords(self, keywords: Tuple[str, ...]) -> bool:
        haystack = (self.title + " " + self.body).lower()
        return any(keyword in haystack for keyword in keywords)


@dataclass(frozen=True)
class IpMetadata:
    """Everything URHunter collects about one IPv4 address."""

    address: str
    asn: int
    as_name: str
    country: str
    #: TLS certificate subject organisation, when a cert is served
    cert_org: Optional[str] = None
    http: HttpPage = field(default_factory=HttpPage.none)


@dataclass
class _PrefixInfo:
    network: ipaddress.IPv4Network
    asn: int
    as_name: str
    country: str


class IpInfoDatabase:
    """Prefix-level AS/geo defaults plus host-level overrides."""

    UNKNOWN_ASN = 0

    def __init__(self) -> None:
        self._prefixes: List[_PrefixInfo] = []
        self._hosts: Dict[str, IpMetadata] = {}

    # -- population --------------------------------------------------------

    def register_prefix(
        self, cidr: str, asn: int, as_name: str, country: str
    ) -> None:
        """Declare AS/geo defaults for every address in ``cidr``."""
        self._prefixes.append(
            _PrefixInfo(
                network=ipaddress.IPv4Network(cidr),
                asn=asn,
                as_name=as_name,
                country=country,
            )
        )

    def register_host(
        self,
        address: str,
        cert_org: Optional[str] = None,
        http: Optional[HttpPage] = None,
        asn: Optional[int] = None,
        as_name: Optional[str] = None,
        country: Optional[str] = None,
    ) -> IpMetadata:
        """Record host-level facts, inheriting prefix defaults."""
        base = self._prefix_defaults(address)
        meta = IpMetadata(
            address=address,
            asn=asn if asn is not None else base[0],
            as_name=as_name if as_name is not None else base[1],
            country=country if country is not None else base[2],
            cert_org=cert_org,
            http=http if http is not None else HttpPage.none(),
        )
        self._hosts[address] = meta
        return meta

    # -- lookup ---------------------------------------------------------

    def _prefix_defaults(self, address: str) -> Tuple[int, str, str]:
        ip_to_int(address)  # validates
        packed = ipaddress.IPv4Address(address)
        best: Optional[_PrefixInfo] = None
        for info in self._prefixes:
            if packed in info.network:
                if best is None or (
                    info.network.prefixlen > best.network.prefixlen
                ):
                    best = info
        if best is None:
            return (self.UNKNOWN_ASN, "UNKNOWN", "ZZ")
        return (best.asn, best.as_name, best.country)

    def lookup(self, address: str) -> IpMetadata:
        """Full metadata for ``address`` (never raises for unknown hosts)."""
        hit = self._hosts.get(address)
        if hit is not None:
            return hit
        asn, as_name, country = self._prefix_defaults(address)
        return IpMetadata(
            address=address, asn=asn, as_name=as_name, country=country
        )

    def asn(self, address: str) -> int:
        return self.lookup(address).asn

    def country(self, address: str) -> str:
        return self.lookup(address).country

    def cert_org(self, address: str) -> Optional[str]:
        return self.lookup(address).cert_org

    def http(self, address: str) -> HttpPage:
        return self.lookup(address).http

    def known_hosts(self) -> List[str]:
        return list(self._hosts)
