"""IP metadata: AS, geolocation, TLS certificates, HTTP page classes.

Stands in for the MaxMind lookups and the HTTP/TLS probing URHunter's
stage 1 performs on every undelegated A record.  The database resolves a
specific registration first, then falls back to per-prefix defaults —
exactly how AS/geo data behaves (prefix-granular) versus cert/HTTP data
(host-granular).

Performance: stage 2 resolves metadata for every candidate A record, so
``lookup`` must not linear-scan the registered prefixes.  The database
keeps an interval index bucketed by prefix length (longest-prefix match
becomes ≤ 33 dict probes, one per distinct registered length) plus an
LRU cache of assembled :class:`IpMetadata`, so the four per-field
helpers (``asn``/``country``/``cert_org``/``http``) share one cached
lookup instead of four scans.  ``indexed=False`` / ``cache_size=0``
keep the naive path alive for benchmarking and equivalence testing.
"""

from __future__ import annotations

import enum
import ipaddress
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.address import ip_to_int


class PageKind(enum.Enum):
    """Coarse classification of the HTTP content at an IP."""

    NONE = "none"  # nothing listening / connection refused
    NORMAL = "normal"  # an ordinary site
    PARKED = "parked"  # domain-parking page
    REDIRECT = "redirect"  # redirection page
    WARNING = "warning"  # provider protective/warning page


#: Keywords URHunter's HTTP filter looks for (Appendix B).
PAGE_KEYWORDS = {
    PageKind.PARKED: ("parked", "parking", "this domain is for sale"),
    PageKind.REDIRECT: ("redirecting", "moved permanently", "meta refresh"),
    PageKind.WARNING: ("not hosted", "warning", "suspended"),
}


@dataclass(frozen=True)
class HttpPage:
    """A probed HTTP response."""

    status: int = 200
    title: str = ""
    body: str = ""
    kind: PageKind = PageKind.NORMAL

    @classmethod
    def none(cls) -> "HttpPage":
        return cls(status=0, kind=PageKind.NONE)

    @classmethod
    def parked(cls) -> "HttpPage":
        return cls(
            status=200,
            title="Domain parked",
            body="This domain is parked free, courtesy of the registrar.",
            kind=PageKind.PARKED,
        )

    @classmethod
    def redirect(cls, location: str = "https://example.invalid/") -> "HttpPage":
        return cls(
            status=301,
            title="Redirecting",
            body=f"Redirecting you to {location} ...",
            kind=PageKind.REDIRECT,
        )

    @classmethod
    def warning(cls, provider: str) -> "HttpPage":
        return cls(
            status=200,
            title=f"{provider} — domain not hosted",
            body=(
                f"Warning: this domain is not hosted at {provider}. "
                "If you are the owner, finish your delegation."
            ),
            kind=PageKind.WARNING,
        )

    def contains_keywords(self, keywords: Tuple[str, ...]) -> bool:
        haystack = (self.title + " " + self.body).lower()
        return any(keyword in haystack for keyword in keywords)


@dataclass(frozen=True)
class IpMetadata:
    """Everything URHunter collects about one IPv4 address."""

    address: str
    asn: int
    as_name: str
    country: str
    #: TLS certificate subject organisation, when a cert is served
    cert_org: Optional[str] = None
    http: HttpPage = field(default_factory=HttpPage.none)


@dataclass
class _PrefixInfo:
    network: ipaddress.IPv4Network
    asn: int
    as_name: str
    country: str


class IpInfoDatabase:
    """Prefix-level AS/geo defaults plus host-level overrides."""

    UNKNOWN_ASN = 0

    #: repeat lookups always return the same answer — memoization-safe
    #: (fault-injecting wrappers advertise ``False`` instead)
    deterministic = True

    def __init__(self, indexed: bool = True, cache_size: int = 4096) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._prefixes: List[_PrefixInfo] = []
        self._hosts: Dict[str, IpMetadata] = {}
        self._indexed = indexed
        # lazy longest-prefix-match index: {prefixlen: {masked_int: info}},
        # rebuilt on first lookup after a register_prefix
        self._prefix_index: Optional[Dict[int, Dict[int, _PrefixInfo]]] = None
        self._index_lengths: Tuple[int, ...] = ()
        # LRU of assembled metadata for non-host addresses; locked because
        # stage-2 workers share the database across threads
        self._cache_size = cache_size
        self._cache: "OrderedDict[str, IpMetadata]" = OrderedDict()
        self._cache_lock = threading.Lock()
        #: metadata-cache accounting (stage-2 observability)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- population --------------------------------------------------------

    def register_prefix(
        self, cidr: str, asn: int, as_name: str, country: str
    ) -> None:
        """Declare AS/geo defaults for every address in ``cidr``."""
        self._prefixes.append(
            _PrefixInfo(
                network=ipaddress.IPv4Network(cidr),
                asn=asn,
                as_name=as_name,
                country=country,
            )
        )
        # a new prefix can change any cached or indexed answer
        self._prefix_index = None
        with self._cache_lock:
            self._cache.clear()

    def register_host(
        self,
        address: str,
        cert_org: Optional[str] = None,
        http: Optional[HttpPage] = None,
        asn: Optional[int] = None,
        as_name: Optional[str] = None,
        country: Optional[str] = None,
    ) -> IpMetadata:
        """Record host-level facts, inheriting prefix defaults."""
        base = self._prefix_defaults(address)
        meta = IpMetadata(
            address=address,
            asn=asn if asn is not None else base[0],
            as_name=as_name if as_name is not None else base[1],
            country=country if country is not None else base[2],
            cert_org=cert_org,
            http=http if http is not None else HttpPage.none(),
        )
        self._hosts[address] = meta
        # the host override supersedes any cached prefix-derived answer
        with self._cache_lock:
            self._cache.pop(address, None)
        return meta

    # -- lookup ---------------------------------------------------------

    def _prefix_scan(self, address: str) -> Tuple[int, str, str]:
        """The reference O(prefixes) longest-prefix match."""
        packed = ipaddress.IPv4Address(address)
        best: Optional[_PrefixInfo] = None
        for info in self._prefixes:
            if packed in info.network:
                if best is None or (
                    info.network.prefixlen > best.network.prefixlen
                ):
                    best = info
        if best is None:
            return (self.UNKNOWN_ASN, "UNKNOWN", "ZZ")
        return (best.asn, best.as_name, best.country)

    def _build_index(self) -> None:
        index: Dict[int, Dict[int, _PrefixInfo]] = {}
        for info in self._prefixes:
            bucket = index.setdefault(info.network.prefixlen, {})
            # setdefault: the scan keeps the *first* registration of a
            # duplicate network (strictly-greater replacement rule), so
            # the index must too
            bucket.setdefault(int(info.network.network_address), info)
        self._prefix_index = index
        # longest first: the first bucket hit is the longest match
        self._index_lengths = tuple(sorted(index, reverse=True))

    def _prefix_defaults(self, address: str) -> Tuple[int, str, str]:
        as_int = ip_to_int(address)  # validates
        if not self._indexed:
            return self._prefix_scan(address)
        if self._prefix_index is None:
            self._build_index()
        for prefixlen in self._index_lengths:
            shift = 32 - prefixlen
            info = self._prefix_index[prefixlen].get(
                (as_int >> shift) << shift
            )
            if info is not None:
                return (info.asn, info.as_name, info.country)
        return (self.UNKNOWN_ASN, "UNKNOWN", "ZZ")

    def lookup(self, address: str) -> IpMetadata:
        """Full metadata for ``address`` (never raises for unknown hosts)."""
        hit = self._hosts.get(address)
        if hit is not None:
            return hit
        if self._cache_size:
            with self._cache_lock:
                cached = self._cache.get(address)
                if cached is not None:
                    self.cache_hits += 1
                    self._cache.move_to_end(address)
                    return cached
                self.cache_misses += 1
        asn, as_name, country = self._prefix_defaults(address)
        meta = IpMetadata(
            address=address, asn=asn, as_name=as_name, country=country
        )
        if self._cache_size:
            with self._cache_lock:
                self._cache[address] = meta
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return meta

    def asn(self, address: str) -> int:
        return self.lookup(address).asn

    def country(self, address: str) -> str:
        return self.lookup(address).country

    def cert_org(self, address: str) -> Optional[str]:
        return self.lookup(address).cert_org

    def http(self, address: str) -> HttpPage:
        return self.lookup(address).http

    def known_hosts(self) -> List[str]:
        return list(self._hosts)
