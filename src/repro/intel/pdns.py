"""Passive DNS store: historical resolutions and delegations.

The paper collaborated with "one of the largest DNS providers in the
world" for six years of passive DNS, used in two places:

* Appendix B condition 5 — a UR matching any historical record of its
  domain is a *correct record* (a past delegation, e.g. the domain moved
  providers);
* §4.1(2) — collecting historical delegated records.

This store is time-windowed so the six-year horizon is explicit.

Performance: stage 2 queries the store once per candidate UR — at paper
scale (~8,941 nameservers × 2K domains) a full scan of every observation
per query dominates exclusion wall-clock time.  The store therefore
maintains two incremental indexes — ``domain → observations`` and
``(domain, rrtype) → observations`` — plus a generation-stamped cache of
windowed query results (lazily invalidated on ingest).  Index buckets
preserve global insertion order, so every query returns *exactly* what
the naive full scan would, in the same order; ``indexed=False`` keeps
the naive scan alive for benchmarking and equivalence testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..dns.name import Name, name
from ..dns.rdata import RRType

SIX_YEARS = 6 * 365 * 24 * 3600.0


@dataclass(frozen=True)
class PdnsObservation:
    """One historical (domain, rrtype, rdata) sighting."""

    domain: Name
    rrtype: int
    rdata_text: str
    first_seen: float
    last_seen: float


#: key of one observation inside the store and its index buckets
_ObsKey = Tuple[Name, int, str]


class PassiveDnsStore:
    """An append-only passive-DNS database with windowed queries."""

    #: repeat queries always return the same answer — memoization-safe
    #: (fault-injecting wrappers advertise ``False`` instead)
    deterministic = True

    def __init__(self, horizon: float = SIX_YEARS, indexed: bool = True):
        self.horizon = horizon
        self._observations: Dict[_ObsKey, PdnsObservation] = {}
        self._indexed = indexed
        # incremental indexes: buckets keep global insertion order, so an
        # indexed query reproduces the naive scan's order exactly
        self._by_domain: Dict[Name, Dict[_ObsKey, PdnsObservation]] = {}
        self._by_domain_type: Dict[
            Tuple[Name, int], Dict[_ObsKey, PdnsObservation]
        ] = {}
        self._domains: Set[Name] = set()
        # lazy invalidation: ingest bumps the generation, the next query
        # notices the mismatch and drops the stale result cache
        self._generation = 0
        self._cache_generation = 0
        self._history_cache: Dict[
            Tuple[Name, Optional[int], float], Tuple[PdnsObservation, ...]
        ] = {}
        self._rdata_cache: Dict[Tuple[Name, int, float], FrozenSet[str]] = {}
        #: result-cache accounting (stage-2 observability)
        self.cache_hits = 0
        self.cache_misses = 0

    def observe(
        self,
        domain: Union[str, Name],
        rrtype: int,
        rdata_text: str,
        timestamp: float,
    ) -> None:
        """Record a sighting, widening first/last-seen as needed."""
        domain = name(domain)
        key = (domain, rrtype, rdata_text)
        existing = self._observations.get(key)
        if existing is None:
            observation = PdnsObservation(
                domain=domain,
                rrtype=rrtype,
                rdata_text=rdata_text,
                first_seen=timestamp,
                last_seen=timestamp,
            )
        else:
            observation = PdnsObservation(
                domain=domain,
                rrtype=rrtype,
                rdata_text=rdata_text,
                first_seen=min(existing.first_seen, timestamp),
                last_seen=max(existing.last_seen, timestamp),
            )
        self._observations[key] = observation
        if not self._indexed:
            return
        # dict assignment preserves a key's position, so updating an
        # existing bucket entry keeps insertion order == scan order
        self._by_domain.setdefault(domain, {})[key] = observation
        self._by_domain_type.setdefault((domain, rrtype), {})[
            key
        ] = observation
        self._domains.add(domain)
        self._generation += 1

    def observe_delegation(
        self,
        domain: Union[str, Name],
        ns_targets: List[Union[str, Name]],
        timestamp: float,
    ) -> None:
        """Record the NS set a domain was delegated to at ``timestamp``."""
        for target in ns_targets:
            self.observe(
                domain, RRType.NS, name(target).to_text(True), timestamp
            )

    # -- queries -------------------------------------------------------------

    def _in_window(
        self, observation: PdnsObservation, now: float
    ) -> bool:
        return (
            observation.last_seen >= now - self.horizon
            and observation.first_seen <= now
        )

    def _history_scan(
        self, domain: Name, now: float, rrtype: Optional[int]
    ) -> List[PdnsObservation]:
        """The reference O(total observations) implementation."""
        return [
            observation
            for observation in self._observations.values()
            if observation.domain == domain
            and (rrtype is None or observation.rrtype == rrtype)
            and self._in_window(observation, now)
        ]

    def _fresh_cache(self) -> None:
        """Lazily drop memoized query results after an ingest."""
        if self._cache_generation != self._generation:
            self._history_cache.clear()
            self._rdata_cache.clear()
            self._cache_generation = self._generation

    def history(
        self,
        domain: Union[str, Name],
        now: float,
        rrtype: Optional[int] = None,
    ) -> List[PdnsObservation]:
        """Observations for ``domain`` within the horizon ending at ``now``."""
        domain = name(domain)
        if not self._indexed:
            return self._history_scan(domain, now, rrtype)
        self._fresh_cache()
        cache_key = (domain, rrtype, now)
        cached = self._history_cache.get(cache_key)
        if cached is not None:
            self.cache_hits += 1
            return list(cached)
        self.cache_misses += 1
        if rrtype is None:
            bucket = self._by_domain.get(domain)
        else:
            bucket = self._by_domain_type.get((domain, rrtype))
        result: Tuple[PdnsObservation, ...] = tuple(
            observation
            for observation in (bucket.values() if bucket else ())
            if self._in_window(observation, now)
        )
        self._history_cache[cache_key] = result
        return list(result)

    def historical_rdata(
        self, domain: Union[str, Name], rrtype: int, now: float
    ) -> Set[str]:
        """The set of historical rdata texts for (domain, rrtype)."""
        domain = name(domain)
        if not self._indexed:
            return {
                observation.rdata_text
                for observation in self._history_scan(domain, now, rrtype)
            }
        self._fresh_cache()
        cache_key = (domain, rrtype, now)
        cached = self._rdata_cache.get(cache_key)
        if cached is None:
            cached = frozenset(
                observation.rdata_text
                for observation in self.history(domain, now, rrtype)
            )
            self._rdata_cache[cache_key] = cached
        return set(cached)

    def record_in_history(
        self,
        domain: Union[str, Name],
        rrtype: int,
        rdata_text: str,
        now: float,
    ) -> bool:
        """Appendix B condition 5: was this exact record ever served?"""
        return rdata_text in self.historical_rdata(domain, rrtype, now)

    def historical_nameservers(
        self, domain: Union[str, Name], now: float
    ) -> Set[Name]:
        """Every nameserver the domain was ever delegated to (in window)."""
        return {
            name(observation.rdata_text)
            for observation in self.history(domain, now, RRType.NS)
        }

    def domains(self) -> Set[Name]:
        if self._indexed:
            return set(self._domains)
        return {
            observation.domain
            for observation in self._observations.values()
        }

    def __len__(self) -> int:
        return len(self._observations)
