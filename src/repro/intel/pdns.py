"""Passive DNS store: historical resolutions and delegations.

The paper collaborated with "one of the largest DNS providers in the
world" for six years of passive DNS, used in two places:

* Appendix B condition 5 — a UR matching any historical record of its
  domain is a *correct record* (a past delegation, e.g. the domain moved
  providers);
* §4.1(2) — collecting historical delegated records.

This store is time-windowed so the six-year horizon is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from ..dns.name import Name, name
from ..dns.rdata import RRType

SIX_YEARS = 6 * 365 * 24 * 3600.0


@dataclass(frozen=True)
class PdnsObservation:
    """One historical (domain, rrtype, rdata) sighting."""

    domain: Name
    rrtype: int
    rdata_text: str
    first_seen: float
    last_seen: float


class PassiveDnsStore:
    """An append-only passive-DNS database with windowed queries."""

    def __init__(self, horizon: float = SIX_YEARS):
        self.horizon = horizon
        self._observations: Dict[
            Tuple[Name, int, str], PdnsObservation
        ] = {}

    def observe(
        self,
        domain: Union[str, Name],
        rrtype: int,
        rdata_text: str,
        timestamp: float,
    ) -> None:
        """Record a sighting, widening first/last-seen as needed."""
        domain = name(domain)
        key = (domain, rrtype, rdata_text)
        existing = self._observations.get(key)
        if existing is None:
            self._observations[key] = PdnsObservation(
                domain=domain,
                rrtype=rrtype,
                rdata_text=rdata_text,
                first_seen=timestamp,
                last_seen=timestamp,
            )
            return
        self._observations[key] = PdnsObservation(
            domain=domain,
            rrtype=rrtype,
            rdata_text=rdata_text,
            first_seen=min(existing.first_seen, timestamp),
            last_seen=max(existing.last_seen, timestamp),
        )

    def observe_delegation(
        self,
        domain: Union[str, Name],
        ns_targets: List[Union[str, Name]],
        timestamp: float,
    ) -> None:
        """Record the NS set a domain was delegated to at ``timestamp``."""
        for target in ns_targets:
            self.observe(
                domain, RRType.NS, name(target).to_text(True), timestamp
            )

    # -- queries -------------------------------------------------------------

    def history(
        self,
        domain: Union[str, Name],
        now: float,
        rrtype: Optional[int] = None,
    ) -> List[PdnsObservation]:
        """Observations for ``domain`` within the horizon ending at ``now``."""
        domain = name(domain)
        window_start = now - self.horizon
        return [
            observation
            for observation in self._observations.values()
            if observation.domain == domain
            and (rrtype is None or observation.rrtype == rrtype)
            and observation.last_seen >= window_start
            and observation.first_seen <= now
        ]

    def historical_rdata(
        self, domain: Union[str, Name], rrtype: int, now: float
    ) -> Set[str]:
        """The set of historical rdata texts for (domain, rrtype)."""
        return {
            observation.rdata_text
            for observation in self.history(domain, now, rrtype)
        }

    def record_in_history(
        self,
        domain: Union[str, Name],
        rrtype: int,
        rdata_text: str,
        now: float,
    ) -> bool:
        """Appendix B condition 5: was this exact record ever served?"""
        return rdata_text in self.historical_rdata(domain, rrtype, now)

    def historical_nameservers(
        self, domain: Union[str, Name], now: float
    ) -> Set[Name]:
        """Every nameserver the domain was ever delegated to (in window)."""
        return {
            name(observation.rdata_text)
            for observation in self.history(domain, now, RRType.NS)
        }

    def domains(self) -> Set[Name]:
        return {observation.domain for observation in self._observations.values()}

    def __len__(self) -> int:
        return len(self._observations)
