"""Multi-vendor threat-intelligence aggregation (VirusTotal-style).

URHunter treats "threat intelligence explicitly labels an IP address as
malicious" as one of its two malicious-UR conditions; this module answers
that question across a vendor fleet and exposes the per-IP vendor counts
and merged tags that drive Figures 3(b) and 3(d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence

from .vendor import SecurityVendor


@dataclass(frozen=True)
class IntelReport:
    """The aggregated view of one IP address."""

    address: str
    flagging_vendors: FrozenSet[str]
    tags: FrozenSet[str]

    @property
    def is_malicious(self) -> bool:
        return bool(self.flagging_vendors)

    @property
    def vendor_count(self) -> int:
        return len(self.flagging_vendors)


class ThreatIntelAggregator:
    """Aggregates verdicts across a fleet of :class:`SecurityVendor`."""

    def __init__(self, vendors: Sequence[SecurityVendor]):
        if not vendors:
            raise ValueError("an aggregator needs at least one vendor")
        self.vendors = list(vendors)

    def report(self, address: str) -> IntelReport:
        """Merged verdict for ``address``."""
        flagging = []
        tags: set = set()
        for vendor in self.vendors:
            if vendor.is_malicious(address):
                flagging.append(vendor.name)
                tags |= set(vendor.tags(address))
        return IntelReport(
            address=address,
            flagging_vendors=frozenset(flagging),
            tags=frozenset(tags),
        )

    def is_flagged(self, address: str) -> bool:
        return any(vendor.is_malicious(address) for vendor in self.vendors)

    def vendor_count(self, address: str) -> int:
        return sum(
            1 for vendor in self.vendors if vendor.is_malicious(address)
        )

    def tags(self, address: str) -> FrozenSet[str]:
        return self.report(address).tags

    def bulk_report(self, addresses: Iterable[str]) -> Dict[str, IntelReport]:
        return {address: self.report(address) for address in addresses}

    def union_blacklist(self) -> List[str]:
        """Every address flagged by at least one vendor."""
        seen: Dict[str, None] = {}
        for vendor in self.vendors:
            for address in vendor.blacklist():
                seen.setdefault(address, None)
        return list(seen)
