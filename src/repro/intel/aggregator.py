"""Multi-vendor threat-intelligence aggregation (VirusTotal-style).

URHunter treats "threat intelligence explicitly labels an IP address as
malicious" as one of its two malicious-UR conditions; this module answers
that question across a vendor fleet and exposes the per-IP vendor counts
and merged tags that drive Figures 3(b) and 3(d).

Two production behaviours live here:

* **degraded-mode aggregation** — every vendor call runs through a
  :class:`~repro.pipeline.resilience.SourceGuard` (retry with backoff,
  per-vendor circuit breaker, rate-limit cool-down).  A vendor that
  stays dead past its retry budget is *excluded from the quorum* for
  that address and recorded in :attr:`IntelReport.failed_vendors`; the
  merged verdict is computed over the survivors instead of aborting the
  measurement.
* **a per-address report cache** — ``is_flagged``/``vendor_count``/
  ``tags`` used to re-query every vendor independently (3× traffic
  against rate-limited feeds); they now all reuse one cached
  :meth:`report` per address.  The LRU memo is keyed by address and
  revalidated against the fleet's update counters, so a vendor pushing
  a new blacklist entry invalidates stale verdicts automatically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..pipeline.resilience import SourceGuard, SourceHealth
from .vendor import SecurityVendor


@dataclass(frozen=True)
class IntelReport:
    """The aggregated view of one IP address."""

    address: str
    flagging_vendors: FrozenSet[str]
    tags: FrozenSet[str]
    #: vendors that could not be queried for this address (degraded run)
    failed_vendors: FrozenSet[str] = frozenset()

    @property
    def is_malicious(self) -> bool:
        return bool(self.flagging_vendors)

    @property
    def vendor_count(self) -> int:
        return len(self.flagging_vendors)

    @property
    def is_partial(self) -> bool:
        """Did any vendor drop out of the quorum for this address?"""
        return bool(self.failed_vendors)


class ThreatIntelAggregator:
    """Aggregates verdicts across a fleet of :class:`SecurityVendor`.

    ``guard`` defaults to a fresh :class:`SourceGuard`; inject one to
    share failure thresholds with other pipeline components or to
    tighten/loosen the retry budget.
    """

    def __init__(
        self,
        vendors: Sequence[SecurityVendor],
        guard: Optional[SourceGuard] = None,
        cache_size: int = 4096,
    ):
        if not vendors:
            raise ValueError("an aggregator needs at least one vendor")
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.vendors = list(vendors)
        self.guard = guard or SourceGuard()
        self.cache_size = cache_size
        self._cache: "OrderedDict[str, Tuple[int, IntelReport]]" = (
            OrderedDict()
        )
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache plumbing ----------------------------------------------------

    def _fleet_version(self) -> int:
        """A cheap fingerprint of the fleet's update state."""
        return sum(getattr(vendor, "version", 0) for vendor in self.vendors)

    def cache_clear(self) -> None:
        self._cache.clear()

    def cache_info(self) -> Dict[str, int]:
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._cache),
            "max_size": self.cache_size,
        }

    # -- the merged verdict ------------------------------------------------

    def report(self, address: str) -> IntelReport:
        """Merged verdict for ``address`` (memoized per fleet version)."""
        version = self._fleet_version()
        cached = self._cache.get(address)
        if cached is not None and cached[0] == version:
            self._cache.move_to_end(address)
            self.cache_hits += 1
            return cached[1]
        self.cache_misses += 1
        report = self._query_vendors(address)
        self._cache[address] = (version, report)
        self._cache.move_to_end(address)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return report

    def _query_vendors(self, address: str) -> IntelReport:
        flagging: List[str] = []
        tags: set = set()
        failed: List[str] = []
        for vendor in self.vendors:
            source = f"vendor:{vendor.name}"

            def probe(vendor=vendor):  # one guarded round-trip per vendor
                malicious = vendor.is_malicious(address)
                vendor_tags = (
                    vendor.tags(address) if malicious else frozenset()
                )
                return malicious, vendor_tags

            ok, result = self.guard.try_call(source, probe)
            if not ok:
                failed.append(vendor.name)
                continue
            malicious, vendor_tags = result
            if malicious:
                flagging.append(vendor.name)
                tags |= set(vendor_tags)
        return IntelReport(
            address=address,
            flagging_vendors=frozenset(flagging),
            tags=frozenset(tags),
            failed_vendors=frozenset(failed),
        )

    def is_flagged(self, address: str) -> bool:
        return self.report(address).is_malicious

    def vendor_count(self, address: str) -> int:
        return self.report(address).vendor_count

    def tags(self, address: str) -> FrozenSet[str]:
        return self.report(address).tags

    def bulk_report(self, addresses: Iterable[str]) -> Dict[str, IntelReport]:
        return {address: self.report(address) for address in addresses}

    def union_blacklist(self) -> List[str]:
        """Every address flagged by at least one *reachable* vendor."""
        seen: Dict[str, None] = {}
        for vendor in self.vendors:
            source = f"vendor:{vendor.name}"
            ok, blacklist = self.guard.try_call(source, vendor.blacklist)
            if not ok:
                continue
            for address in blacklist:
                seen.setdefault(address, None)
        return list(seen)

    # -- degradation observability -----------------------------------------

    def source_health(self) -> Dict[str, SourceHealth]:
        """Per-vendor health ledgers (see ``DegradedSources``)."""
        return self.guard.snapshot()

    def dead_vendors(self) -> List[str]:
        """Vendors whose circuit is currently open."""
        return sorted(
            name
            for name, ledger in self.source_health().items()
            if ledger.dead
        )
