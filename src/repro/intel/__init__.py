"""Threat-intelligence substrate: IP metadata, vendors, passive DNS."""

from .aggregator import IntelReport, ThreatIntelAggregator
from .ipinfo import (
    HttpPage,
    IpInfoDatabase,
    IpMetadata,
    PAGE_KEYWORDS,
    PageKind,
)
from .pdns import SIX_YEARS, PassiveDnsStore, PdnsObservation
from .vendor import (
    IntelTag,
    SecurityVendor,
    VendorVerdict,
    default_vendor_fleet,
)

__all__ = [
    "HttpPage",
    "IntelReport",
    "IntelTag",
    "IpInfoDatabase",
    "IpMetadata",
    "PAGE_KEYWORDS",
    "PageKind",
    "PassiveDnsStore",
    "PdnsObservation",
    "SIX_YEARS",
    "SecurityVendor",
    "ThreatIntelAggregator",
    "VendorVerdict",
    "default_vendor_fleet",
]
