"""Security vendors: per-vendor IP blacklists with tags.

Models the VirusTotal/QAX/360-style feeds URHunter's stage 3 consumes.
Each vendor maintains its own blacklist; an IP may be flagged by several
vendors at once with different tags — the basis of Figure 3(b) (vendor
counts) and Figure 3(d) (tag mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional


class IntelTag:
    """Canonical tag vocabulary (Figure 3(d))."""

    TROJAN = "Trojan"
    SCANNER = "Scanner"
    MALWARE = "Malware"
    CC = "C&C"
    BOTNET = "Botnet"
    OTHER = "Other"

    ALL = (TROJAN, SCANNER, OTHER, MALWARE, CC, BOTNET)


@dataclass
class VendorVerdict:
    """One vendor's view of one IP."""

    malicious: bool
    tags: FrozenSet[str] = frozenset()
    first_seen: float = 0.0


class SecurityVendor:
    """One threat-intelligence feed with real-time blacklist updates."""

    def __init__(self, vendor_name: str):
        self.name = vendor_name
        self._verdicts: Dict[str, VendorVerdict] = {}
        #: bumped on every feed update; lets aggregator caches revalidate
        self.version = 0

    def flag(
        self,
        address: str,
        tags: Iterable[str] = (),
        timestamp: float = 0.0,
    ) -> None:
        """Blacklist ``address``, merging tags with any prior verdict."""
        self.version += 1
        existing = self._verdicts.get(address)
        merged = frozenset(tags) | (
            existing.tags if existing is not None else frozenset()
        )
        first_seen = (
            existing.first_seen if existing is not None else timestamp
        )
        self._verdicts[address] = VendorVerdict(
            malicious=True, tags=merged, first_seen=first_seen
        )

    def clear(self, address: str) -> None:
        """Remove ``address`` from the blacklist (delisting)."""
        self.version += 1
        self._verdicts.pop(address, None)

    def is_malicious(self, address: str) -> bool:
        verdict = self._verdicts.get(address)
        return verdict is not None and verdict.malicious

    def tags(self, address: str) -> FrozenSet[str]:
        verdict = self._verdicts.get(address)
        return verdict.tags if verdict is not None else frozenset()

    def verdict(self, address: str) -> Optional[VendorVerdict]:
        return self._verdicts.get(address)

    def blacklist(self) -> List[str]:
        return [
            address
            for address, verdict in self._verdicts.items()
            if verdict.malicious
        ]

    def __len__(self) -> int:
        return len(self._verdicts)

    def __repr__(self) -> str:
        return f"SecurityVendor({self.name!r}, {len(self)} entries)"


def default_vendor_fleet(count: int = 11) -> List[SecurityVendor]:
    """A fleet of vendors named after the paper's sources plus generics.

    The paper aggregates 74 vendors via VirusTotal but observes at most 11
    flagging any single IP (Figure 3(b)); ``count`` controls fleet size.
    """
    base_names = ["VirusTotal", "QAX", "360 Security"]
    names = base_names[:count]
    for index in range(len(names), count):
        names.append(f"Vendor-{index + 1:02d}")
    return [SecurityVendor(vendor_name) for vendor_name in names]
