"""The default IDS rule set.

Signatures are modeled on real emerging-threats rule families: trojan
check-in beacons, RAT C2 heartbeats, data-exfiltration markers, SMTP
covert channels, connectivity checks (informational), and a stateful
port-scan detector.  Malware in :mod:`repro.sandbox.families` emits the
actual byte patterns these rules look for — the IDS has no knowledge of
which sample produced a flow.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set

from ..net.traffic import FlowRecord, Protocol
from .ids import (
    Alert,
    AlertCategory,
    IdsRule,
    Severity,
    all_of,
    payload_contains,
    port_is,
    protocol_is,
)

#: Byte signatures trojan families embed in their check-in traffic.
TROJAN_BEACON_PATTERNS = (
    b"POST /gate.php",
    b"X-Trojan-Session:",
    b"MIRAI-SYN",
    b"dark.iot/checkin",
)

#: RAT / botnet command-and-control heartbeats.
CC_PATTERNS = (
    b"SPECTER-HELLO",
    b"C2-HEARTBEAT",
    b"BOT-REGISTER",
    b"MICROPSIA-TASK",
)

#: Credential / document exfiltration markers.
EXFIL_PATTERNS = (
    b"EXFIL-BEGIN",
    b"password-dump",
    b"X-Stolen-Data:",
)

#: SMTP covert-channel markers (AgentTesla-style exfil over SMTP).
SMTP_COVERT_PATTERNS = (
    b"X-Covert-Channel:",
    b"base64,U1RPTEVO",
)

#: Connectivity-check endpoints (informational only).
CONNECTIVITY_PATTERNS = (
    b"GET /generate_204",
    b"GET /connecttest.txt",
    b"GET /ncsi.txt",
)

SCAN_THRESHOLD = 8


def _scan_detector(flows: Sequence[FlowRecord]) -> List[Alert]:
    """Stateful rule: one source touching many distinct hosts on the same
    port in a capture is scanning."""
    by_source: Dict[tuple, Set[str]] = defaultdict(set)
    first_flow: Dict[tuple, FlowRecord] = {}
    for flow in flows:
        if flow.protocol is Protocol.DNS:
            continue
        key = (flow.src, flow.dst_port)
        by_source[key].add(flow.dst)
        first_flow.setdefault(key, flow)
    alerts = []
    for key, destinations in by_source.items():
        if len(destinations) >= SCAN_THRESHOLD:
            alerts.append(
                Alert(
                    sid=2100001,
                    message=(
                        f"port scan: {len(destinations)} hosts on "
                        f"port {key[1]}"
                    ),
                    category=AlertCategory.OTHER,
                    severity=Severity.MEDIUM,
                    flow=first_flow[key],
                )
            )
    return alerts


def default_rules() -> List[IdsRule]:
    """The stock signature set loaded by every sandbox."""
    return [
        IdsRule(
            sid=2000001,
            message="ET TROJAN generic trojan check-in",
            category=AlertCategory.TROJAN,
            severity=Severity.HIGH,
            predicate=payload_contains(*TROJAN_BEACON_PATTERNS),
        ),
        IdsRule(
            sid=2000002,
            message="ET MALWARE RAT C2 heartbeat",
            category=AlertCategory.CC,
            severity=Severity.HIGH,
            predicate=payload_contains(*CC_PATTERNS),
        ),
        IdsRule(
            sid=2000003,
            message="ET POLICY data exfiltration marker",
            category=AlertCategory.PRIVACY,
            severity=Severity.MEDIUM,
            predicate=payload_contains(*EXFIL_PATTERNS),
        ),
        IdsRule(
            sid=2000004,
            message="ET SMTP suspicious covert channel",
            category=AlertCategory.TROJAN,
            severity=Severity.HIGH,
            predicate=all_of(
                protocol_is(Protocol.SMTP),
                payload_contains(*SMTP_COVERT_PATTERNS),
            ),
        ),
        IdsRule(
            sid=2000005,
            message="ET CNC known C2 port with binary payload",
            category=AlertCategory.CC,
            severity=Severity.MEDIUM,
            predicate=all_of(
                port_is(4444, 6667, 1337),
                protocol_is(Protocol.TCP),
            ),
        ),
        IdsRule(
            sid=2000006,
            message="GPL bad-traffic nonstandard port 0 connection",
            category=AlertCategory.BAD_TRAFFIC,
            severity=Severity.MEDIUM,
            predicate=port_is(0),
        ),
        IdsRule(
            sid=2000009,
            message="GPL NETBIOS SMB probe on 445",
            category=AlertCategory.OTHER,
            severity=Severity.MEDIUM,
            predicate=all_of(
                port_is(445),
                payload_contains(b"\x00probe"),
            ),
        ),
        IdsRule(
            sid=2000007,
            message="ET POLICY connectivity check",
            category=AlertCategory.CONNECTIVITY,
            severity=Severity.LOW,
            predicate=payload_contains(*CONNECTIVITY_PATTERNS),
        ),
        IdsRule(
            sid=2000008,
            message="ET TROJAN suspicious SMTP from non-mail host",
            category=AlertCategory.TROJAN,
            severity=Severity.MEDIUM,
            predicate=all_of(
                protocol_is(Protocol.SMTP),
                payload_contains(b"EHLO victim"),
            ),
        ),
    ]


def default_capture_rules():
    """The stock stateful rules."""
    return [_scan_detector]
