"""A rule-based intrusion detection system (Snort/Suricata stand-in).

URHunter's second malicious-UR condition is "IDS detects malicious traffic
toward the IP address in a malware sandbox evaluation ... with a severity
level of at least medium, excluding cases where malware only checks
network connectivity".  This engine reproduces that interface: signature
rules over flow content plus stateful rules over whole captures (scan
detection), each alert carrying a category (Figure 3(c)) and a severity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..net.traffic import FlowRecord, Protocol, TrafficCapture


class Severity(enum.IntEnum):
    """Alert severity; URHunter only accepts MEDIUM and above."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3


class AlertCategory:
    """Figure 3(c)'s alert taxonomy."""

    TROJAN = "Trojan Activity"
    CC = "C&C Activity"
    PRIVACY = "Privacy Violation"
    BAD_TRAFFIC = "Bad Traffic"
    OTHER = "Other"
    #: informational: connectivity checks — never at or above MEDIUM
    CONNECTIVITY = "Network Connectivity"

    #: the categories counted by Figure 3(c)
    REPORTED = (TROJAN, OTHER, PRIVACY, CC, BAD_TRAFFIC)


@dataclass(frozen=True)
class Alert:
    """One IDS alert bound to the flow that triggered it."""

    sid: int
    message: str
    category: str
    severity: Severity
    flow: FlowRecord

    @property
    def dst(self) -> str:
        return self.flow.dst

    def describe(self) -> str:
        return (
            f"[{self.sid}] {self.severity.name} {self.category}: "
            f"{self.message} ({self.flow.src} -> {self.flow.dst}:"
            f"{self.flow.dst_port})"
        )


FlowPredicate = Callable[[FlowRecord], bool]


@dataclass(frozen=True)
class IdsRule:
    """A per-flow signature rule."""

    sid: int
    message: str
    category: str
    severity: Severity
    predicate: FlowPredicate

    def evaluate(self, flow: FlowRecord) -> Optional[Alert]:
        if self.predicate(flow):
            return Alert(
                sid=self.sid,
                message=self.message,
                category=self.category,
                severity=self.severity,
                flow=flow,
            )
        return None


CaptureRule = Callable[[Sequence[FlowRecord]], List[Alert]]


def payload_contains(*patterns: bytes) -> FlowPredicate:
    """Predicate: the flow payload excerpt contains any of ``patterns``."""

    def predicate(flow: FlowRecord) -> bool:
        payload = flow.metadata.get("payload")
        if not isinstance(payload, (bytes, bytearray)):
            return False
        return any(pattern in payload for pattern in patterns)

    return predicate


def port_is(*ports: int) -> FlowPredicate:
    def predicate(flow: FlowRecord) -> bool:
        return flow.dst_port in ports

    return predicate


def protocol_is(protocol: Protocol) -> FlowPredicate:
    def predicate(flow: FlowRecord) -> bool:
        return flow.protocol is protocol

    return predicate


def all_of(*predicates: FlowPredicate) -> FlowPredicate:
    def predicate(flow: FlowRecord) -> bool:
        return all(item(flow) for item in predicates)

    return predicate


def any_of(*predicates: FlowPredicate) -> FlowPredicate:
    def predicate(flow: FlowRecord) -> bool:
        return any(item(flow) for item in predicates)

    return predicate


class IdsEngine:
    """Evaluates rules over a capture; the sandbox's detection backend."""

    def __init__(
        self,
        rules: Iterable[IdsRule],
        capture_rules: Iterable[CaptureRule] = (),
        engine_name: str = "Suricata",
    ):
        self.rules = list(rules)
        self.capture_rules = list(capture_rules)
        self.engine_name = engine_name
        seen_sids = set()
        for rule in self.rules:
            if rule.sid in seen_sids:
                raise ValueError(f"duplicate rule sid {rule.sid}")
            seen_sids.add(rule.sid)

    def inspect(self, capture: TrafficCapture) -> List[Alert]:
        """All alerts for every flow in ``capture``, in flow order."""
        alerts: List[Alert] = []
        for flow in capture:
            # DNS control-plane traffic is never alerted on by itself —
            # the whole point of the UR attack is that these lookups look
            # benign; alerts come from what the malware does next.
            if flow.protocol is Protocol.DNS:
                continue
            for rule in self.rules:
                alert = rule.evaluate(flow)
                if alert is not None:
                    alerts.append(alert)
        if self.capture_rules:
            # stateful rules want a stable snapshot; only pay for the
            # copy when any are installed
            flows = capture.flows
            for capture_rule in self.capture_rules:
                alerts.extend(capture_rule(flows))
        return alerts

    @staticmethod
    def actionable(alerts: Iterable[Alert]) -> List[Alert]:
        """Alerts URHunter accepts: severity >= MEDIUM and not
        connectivity-only noise."""
        return [
            alert
            for alert in alerts
            if alert.severity >= Severity.MEDIUM
            and alert.category != AlertCategory.CONNECTIVITY
        ]
