"""The malware sandbox: detonation plus IDS inspection.

One :class:`Sandbox` detonates samples on the simulated internet from a
dedicated victim address, collects the per-run traffic capture, runs the
IDS over it, and emits :class:`SandboxReport` objects — the unit of
evidence URHunter's stage 3 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..net.network import SimulatedInternet
from ..net.traffic import Protocol, TrafficCapture
from .ids import Alert, IdsEngine, Severity
from .malware import MalwareSample, SandboxEnvironment
from .rules import default_capture_rules, default_rules


@dataclass
class SandboxReport:
    """Everything observed while detonating one sample."""

    sample: MalwareSample
    capture: TrafficCapture
    alerts: List[Alert]
    notes: List[str] = field(default_factory=list)

    @property
    def actionable_alerts(self) -> List[Alert]:
        """Alerts at the severity URHunter accepts (>= medium,
        excluding connectivity checks)."""
        return IdsEngine.actionable(self.alerts)

    def alerted_ips(self, min_severity: Severity = Severity.MEDIUM) -> Set[str]:
        """Destination IPs of alerts at or above ``min_severity``."""
        return {
            alert.dst
            for alert in self.actionable_alerts
            if alert.severity >= min_severity
        }

    def contacted_ips(self) -> Set[str]:
        """Every non-DNS destination the sample touched."""
        return {
            flow.dst
            for flow in self.capture
            if flow.protocol is not Protocol.DNS
        }

    def dns_queries(self) -> List[str]:
        """Names the sample looked up, in order."""
        return [
            str(flow.metadata.get("qname"))
            for flow in self.capture.dns_lookups()
        ]

    def queried_nameservers(self) -> Set[str]:
        """Nameserver IPs the sample queried directly."""
        return {flow.dst for flow in self.capture.dns_lookups()}


class Sandbox:
    """A detonation environment with a fixed victim address and IDS."""

    def __init__(
        self,
        network: SimulatedInternet,
        victim_ip: str,
        default_resolver_ip: Optional[str] = None,
        ids: Optional[IdsEngine] = None,
    ):
        self.network = network
        self.victim_ip = victim_ip
        self.default_resolver_ip = default_resolver_ip
        self.ids = ids or IdsEngine(
            default_rules(), default_capture_rules()
        )
        network.register_stub(victim_ip)
        self.reports: List[SandboxReport] = []

    def run(self, sample: MalwareSample) -> SandboxReport:
        """Detonate ``sample`` and inspect its traffic."""
        environment = SandboxEnvironment(
            self.network, self.victim_ip, self.default_resolver_ip
        )
        sample.run(environment)
        alerts = self.ids.inspect(environment.capture)
        report = SandboxReport(
            sample=sample,
            capture=environment.capture,
            alerts=alerts,
            notes=list(environment.notes),
        )
        self.reports.append(report)
        return report

    def run_all(
        self, samples: Iterable[MalwareSample]
    ) -> List[SandboxReport]:
        return [self.run(sample) for sample in samples]

    # -- corpus-level views ---------------------------------------------------

    def alerts_by_destination(self) -> Dict[str, List[Alert]]:
        """Actionable alerts across all runs, grouped by destination IP."""
        grouped: Dict[str, List[Alert]] = {}
        for report in self.reports:
            for alert in report.actionable_alerts:
                grouped.setdefault(alert.dst, []).append(alert)
        return grouped

    def malicious_traffic_ips(self) -> Set[str]:
        """IPs with IDS-confirmed malicious traffic (URHunter condition 2)."""
        return set(self.alerts_by_destination())
