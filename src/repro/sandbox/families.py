"""Malware family implementations.

The paper's case studies (§5.3) analyze concrete families; each is
reproduced here as behaviour code operating purely through the sandbox
environment:

* **Dark.IoT** — IoT botnet; 2021 variants resolve ``api.gitlab.com``
  URs at ClouDNS for their C2 and keep OpenNIC fallback domains on
  EmerDNS; the 2023-03-04 variant abandons EmerDNS and moves everything
  (including the OpenNIC domains) to ClouDNS URs for
  ``raw.pastebin.com``.
* **Specter** — a RAT holding C2 connections via URs for ``ibm.com`` and
  ``api.github.com`` on ClouDNS; undetected by all 74 AV engines.
* **Micropsia** — trojan consuming the masquerading SPF UR of
  ``speedtest.net`` and producing C2 traffic.
* **AgentTesla** — trojan consuming the same SPF UR and exfiltrating via
  an SMTP covert channel.
* generic **trojan / scanner / benign** samples for bulk scenarios.

Every behaviour extracts its rendezvous information from DNS responses at
runtime — nothing is hardcoded past the domain + nameserver pair, exactly
like the real samples.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..net.traffic import Protocol
from ..dns.rdata import RRType
from .malware import MalwareSample, SandboxEnvironment

SPF_IP4_PATTERN = re.compile(r"ip4:((?:\d{1,3}\.){3}\d{1,3})")


@dataclass
class UrTarget:
    """A (domain, nameserver IPs) pair a sample abuses."""

    domain: str
    nameserver_ips: Sequence[str]


def _first_a_via_urs(
    environment: SandboxEnvironment, target: UrTarget
) -> Optional[str]:
    """Resolve ``target.domain`` at each nameserver until an A comes back."""
    for nameserver_ip in target.nameserver_ips:
        response = environment.resolve_at(
            nameserver_ip, target.domain, RRType.A
        )
        addresses = environment.extract_a(response)
        if addresses:
            return addresses[0]
    return None


def _txt_via_urs(
    environment: SandboxEnvironment, target: UrTarget
) -> List[str]:
    values: List[str] = []
    for nameserver_ip in target.nameserver_ips:
        response = environment.resolve_at(
            nameserver_ip, target.domain, RRType.TXT
        )
        values.extend(environment.extract_txt(response))
        if values:
            break
    return values


# ---------------------------------------------------------------------------
# Dark.IoT
# ---------------------------------------------------------------------------


def make_darkiot_2021_variants(
    gitlab_ur: UrTarget,
    emerdns_resolver_ip: str,
    opennic_domain: str = "dark.libre",
) -> List[MalwareSample]:
    """The two 2021-12-12 variants: ClouDNS UR + EmerDNS fallback."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        env.connect(
            "192.88.99.1",
            80,
            b"GET /generate_204 HTTP/1.1\r\nHost: connectivity\r\n\r\n",
            protocol=Protocol.HTTP,
        )
        c2 = _first_a_via_urs(env, gitlab_ur)
        if c2 is None:
            # Fallback: the OpenNIC domain via the EmerDNS resolver.
            response = env.resolve_at(
                emerdns_resolver_ip, opennic_domain, RRType.A
            )
            addresses = env.extract_a(response)
            c2 = addresses[0] if addresses else None
            env.note(f"fell back to EmerDNS for {opennic_domain}")
        if c2 is None:
            env.note("no C2 found; sample went dormant")
            return
        env.connect(
            c2,
            1337,
            b"MIRAI-SYN dark.iot/checkin botid=%s" % sample.sample_id.encode(),
        )
        env.connect(c2, 1337, b"C2-HEARTBEAT seq=1")

    return [
        MalwareSample(
            sample_id=f"darkiot-2021-{index}",
            family="Dark.IoT",
            variant="2021-12-12",
            release_date="2021-12-12",
            behaviour=behaviour,
            vendor_detections=17,
            labels=("Trojan", "Botnet", "IoT"),
            description=(
                "Resolves api.gitlab.com at ClouDNS nameservers for C2; "
                "EmerDNS-hosted OpenNIC fallback"
            ),
        )
        for index in (1, 2)
    ]


def make_darkiot_2023_variant(
    pastebin_ur: UrTarget,
    opennic_ur: UrTarget,
) -> MalwareSample:
    """The 2023-03-04 variant: EmerDNS abandoned, everything rides URs."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        c2 = _first_a_via_urs(env, pastebin_ur)
        if c2 is None:
            # The OpenNIC domains themselves are now hosted as URs on
            # ClouDNS — no alternative root needed anymore.
            c2 = _first_a_via_urs(env, opennic_ur)
            env.note("used ClouDNS-hosted OpenNIC UR (EmerDNS abandoned)")
        if c2 is None:
            env.note("no C2 found; sample went dormant")
            return
        env.connect(c2, 1337, b"MIRAI-SYN dark.iot/checkin v2023")
        env.connect(c2, 1337, b"C2-HEARTBEAT seq=1")

    return MalwareSample(
        sample_id="darkiot-2023-1",
        family="Dark.IoT",
        variant="2023-03-04",
        release_date="2023-03-04",
        behaviour=behaviour,
        vendor_detections=9,
        labels=("Trojan", "Botnet", "IoT"),
        description=(
            "Resolves raw.pastebin.com at ClouDNS for C2; OpenNIC domains "
            "moved from EmerDNS onto ClouDNS URs"
        ),
    )


# ---------------------------------------------------------------------------
# Specter
# ---------------------------------------------------------------------------


def make_specter_variants(
    ibm_ur: UrTarget,
    github_ur: UrTarget,
) -> List[MalwareSample]:
    """Three Specter RAT variants maintaining C2 through URs.

    ``vendor_detections=0`` mirrors the paper: "they have not been
    flagged yet as malicious by 74 mainstream security vendors".
    """

    def behaviour_for(target: UrTarget):
        def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
            c2 = _first_a_via_urs(env, target)
            if c2 is None:
                env.note("no C2 via URs; retry later")
                return
            env.connect(c2, 4444, b"SPECTER-HELLO id=" + sample.sample_id.encode())
            env.connect(c2, 4444, b"SPECTER-HELLO keepalive")

        return behaviour

    targets = [ibm_ur, github_ur, ibm_ur]
    return [
        MalwareSample(
            sample_id=f"specter-{index + 1}",
            family="Specter",
            variant=f"v{index + 1}",
            release_date="2022-06-01",
            behaviour=behaviour_for(target),
            vendor_detections=0,
            labels=("RAT",),
            description=(
                f"RAT maintaining C2 via URs for {target.domain} on ClouDNS"
            ),
        )
        for index, target in enumerate(targets)
    ]


# ---------------------------------------------------------------------------
# The masquerading-SPF campaign (Micropsia + AgentTesla)
# ---------------------------------------------------------------------------


def extract_spf_ips(txt_values: Sequence[str]) -> List[str]:
    """IPv4 addresses from ``ip4:`` mechanisms in SPF-shaped TXT values."""
    addresses: List[str] = []
    for value in txt_values:
        addresses.extend(SPF_IP4_PATTERN.findall(value))
    return addresses


def make_micropsia_samples(
    spf_ur: UrTarget, count: int = 2
) -> List[MalwareSample]:
    """Micropsia trojans reading C2 addresses out of the SPF UR."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        txt_values = _txt_via_urs(env, spf_ur)
        addresses = extract_spf_ips(txt_values)
        if not addresses:
            env.note("SPF UR unavailable; dormant")
            return
        c2 = addresses[0]
        env.connect(c2, 8080, b"MICROPSIA-TASK fetch id=" + sample.sample_id.encode())

    return [
        MalwareSample(
            sample_id=f"micropsia-{index + 1}",
            family="Micropsia",
            variant=f"v{index + 1}",
            release_date="2022-09-15",
            behaviour=behaviour,
            vendor_detections=21,
            labels=("Trojan",),
            description=(
                f"Trojan obtaining C2 from the masquerading SPF record of "
                f"{spf_ur.domain}"
            ),
        )
        for index in range(count)
    ]


def make_tesla_samples(
    spf_ur: UrTarget, count: int = 3, detected: int = 2
) -> List[MalwareSample]:
    """AgentTesla trojans exfiltrating over an SMTP covert channel.

    ``detected`` of the ``count`` samples carry AV detections; the paper
    found one related sample "classified as harmless by all 74 vendors".
    """

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        txt_values = _txt_via_urs(env, spf_ur)
        addresses = extract_spf_ips(txt_values)
        if not addresses:
            env.note("SPF UR unavailable; dormant")
            return
        # Rotate across the advertised mail hosts like the real campaign.
        # (zlib.crc32, not hash(): str hashing is salted per process and
        # would break cross-process determinism.)
        digest = zlib.crc32(sample.sample_id.encode())
        mail_host = addresses[digest % len(addresses)]
        env.smtp_send(
            mail_host,
            [
                "EHLO victim.localdomain",
                "MAIL FROM:<update@speedtest.net>",
                "RCPT TO:<drop@speedtest.net>",
                "DATA",
                "X-Covert-Channel: v1",
                "Content-Transfer-Encoding: base64",
                "base64,U1RPTEVOLWNyZWRlbnRpYWxz",
                ".",
            ],
        )

    return [
        MalwareSample(
            sample_id=f"tesla-{index + 1}",
            family="AgentTesla",
            variant=f"v{index + 1}",
            release_date="2022-10-02",
            behaviour=behaviour,
            vendor_detections=33 if index < detected else 0,
            labels=("Trojan",) if index < detected else (),
            description=(
                "Trojan using the masquerading SPF UR for SMTP-based "
                "covert communication"
            ),
        )
        for index in range(count)
    ]


# ---------------------------------------------------------------------------
# Generic families for bulk scenarios
# ---------------------------------------------------------------------------


def make_generic_trojan(
    index: int, ur: UrTarget, port: int = 8080
) -> MalwareSample:
    """A run-of-the-mill trojan wired to one UR."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        c2 = _first_a_via_urs(env, ur)
        if c2 is None:
            return
        env.connect(
            c2,
            port,
            b"POST /gate.php HTTP/1.1\r\nX-Trojan-Session: "
            + sample.sample_id.encode(),
            protocol=Protocol.HTTP,
        )

    return MalwareSample(
        sample_id=f"trojan-{index:05d}",
        family="GenericTrojan",
        variant="bulk",
        release_date="2022-04-01",
        behaviour=behaviour,
        vendor_detections=5,
        labels=("Trojan",),
        description=f"Generic trojan using UR for {ur.domain}",
    )


def make_generic_scanner(
    index: int, ur: UrTarget, sweep_size: int = 10
) -> MalwareSample:
    """Reconnaissance malware: resolves its controller via a UR, then
    sweeps a /24 around it (the paper: scanning is 41% of flagged IPs)."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        base = _first_a_via_urs(env, ur)
        if base is None:
            return
        prefix = base.rsplit(".", 1)[0]
        for host in range(1, sweep_size + 1):
            env.connect(f"{prefix}.{200 + host}", 445, b"\x00probe")
        env.connect(base, 445, b"\x00probe-report")

    return MalwareSample(
        sample_id=f"scanner-{index:05d}",
        family="GenericScanner",
        variant="bulk",
        release_date="2022-05-10",
        behaviour=behaviour,
        vendor_detections=3,
        labels=("Scanner",),
        description=f"Scanner coordinated through UR for {ur.domain}",
    )


def make_generic_exfil(
    index: int, ur: UrTarget, port: int = 443
) -> MalwareSample:
    """Spyware exfiltrating stolen data to a UR-provided server."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        c2 = _first_a_via_urs(env, ur)
        if c2 is None:
            return
        env.connect(
            c2,
            port,
            b"EXFIL-BEGIN X-Stolen-Data: password-dump chunk=1",
        )

    return MalwareSample(
        sample_id=f"exfil-{index:05d}",
        family="GenericStealer",
        variant="bulk",
        release_date="2022-07-19",
        behaviour=behaviour,
        vendor_detections=7,
        labels=("Trojan", "Malware"),
        description=f"Stealer exfiltrating via UR for {ur.domain}",
    )


def make_generic_c2(
    index: int, ur: UrTarget, port: int = 6667
) -> MalwareSample:
    """Bot holding a long-lived C2 channel through a UR."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        c2 = _first_a_via_urs(env, ur)
        if c2 is None:
            return
        env.connect(c2, port, b"BOT-REGISTER id=" + sample.sample_id.encode())
        env.connect(c2, port, b"C2-HEARTBEAT seq=1")

    return MalwareSample(
        sample_id=f"bot-{index:05d}",
        family="GenericBot",
        variant="bulk",
        release_date="2022-03-11",
        behaviour=behaviour,
        vendor_detections=4,
        labels=("Botnet", "C&C"),
        description=f"Bot with C2 via UR for {ur.domain}",
    )


def make_generic_badtraffic(index: int, ur: UrTarget) -> MalwareSample:
    """Broken malware emitting malformed traffic (port 0) to its UR IP."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        c2 = _first_a_via_urs(env, ur)
        if c2 is None:
            return
        env.connect(c2, 0, b"\x00\x00\x00\x00garbled")

    return MalwareSample(
        sample_id=f"badtraffic-{index:05d}",
        family="GenericBroken",
        variant="bulk",
        release_date="2022-08-30",
        behaviour=behaviour,
        vendor_detections=2,
        labels=("Malware",),
        description=f"Malformed beacon toward UR for {ur.domain}",
    )


def make_benign_updater(index: int, domain: str) -> MalwareSample:
    """A benign sample (false-positive pressure for the pipeline): normal
    recursive resolution plus a connectivity check."""

    def behaviour(sample: MalwareSample, env: SandboxEnvironment) -> None:
        response = env.resolve(domain, RRType.A)
        addresses = env.extract_a(response)
        if addresses:
            env.connect(
                addresses[0],
                80,
                b"GET /connecttest.txt HTTP/1.1\r\nHost: updates\r\n\r\n",
                protocol=Protocol.HTTP,
            )

    return MalwareSample(
        sample_id=f"benign-{index:05d}",
        family="BenignUpdater",
        variant="bulk",
        release_date="2022-01-20",
        behaviour=behaviour,
        vendor_detections=0,
        labels=(),
        description=f"Benign updater fetching {domain} normally",
    )
