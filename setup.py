"""Setup shim for environments without the wheel package.

``pip install -e .`` uses PEP 660 (which needs wheel); this shim lets
``python setup.py develop`` work offline.  Configuration lives in
pyproject.toml.
"""

from setuptools import setup

setup()
