"""Benchmark: quantify the §3 evasion claims and the §6 operator advice.

Not a paper table — the paper *argues* that URs bypass reputation-based
detection and recommends operators watch DNS traffic that skips the
recursive process.  This bench measures both over the simulated
campaigns:

  * the reputation baseline sees 0% of UR retrieval lookups (the domain
    is reputable, the nameserver belongs to a reputable provider);
  * a strict direct-resolution monitor sees 100% of them but also flags
    every benign public-DNS user (the collateral-damage trade-off);
  * allowlisting well-known public resolvers removes the false
    positives while keeping full coverage of provider-nameserver
    retrievals.
"""

from repro.defense import evaluate_defenses

from .conftest import banner


def test_defense_evaluation(benchmark, bench_world):
    scores = benchmark(evaluate_defenses, bench_world)

    banner("defense evaluation: reputation vs direct-resolution monitoring")
    for score in scores.values():
        print("  " + score.summary())

    reputation = scores["reputation"]
    strict = scores["direct-strict"]
    allowlist = scores["direct-allowlist"]

    # §3: reputation-based detection misses the covert channel entirely.
    assert reputation.detection_rate == 0.0
    # §6: watching non-recursive DNS catches every retrieval...
    assert strict.detection_rate == 1.0
    # ...at the cost of flagging all benign direct-resolver users...
    assert strict.false_positive_rate == 1.0
    # ...which an allowlist of public resolvers removes.
    assert allowlist.detection_rate == 1.0
    assert allowlist.false_positive_rate == 0.0
