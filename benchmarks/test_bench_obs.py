"""Benchmark: observability overhead (traced vs untraced runs).

The event bus rides every stage of the pipeline, so its cost must be
noise.  Runs the full three-stage measurement with and without an
attached :class:`RunTrace` at two scenario sizes and asserts the traced
run stays within a generous wall-clock margin of the untraced one —
the deterministic report bytes must of course be identical either way.
"""

import time

from repro.core import URHunter
from repro.obs import RunTrace
from repro.scenario import ScenarioConfig, build_world, small_config

from .conftest import banner

SIZES = [
    ("small", lambda: small_config(seed=7)),
    ("default", lambda: ScenarioConfig(seed=7)),
]

#: traced wall clock may exceed untraced by at most this factor — the
#: bus does one dict build + list append per event, nothing per record
MAX_OVERHEAD = 1.25


def _measure(scenario_factory, traced: bool):
    """One full measurement; returns (report, wall_s, event_count)."""
    world = build_world(scenario_factory())
    hunter = URHunter.from_world(world)
    trace = None
    if traced:
        trace = RunTrace()
        hunter.attach_trace(trace)
    start = time.perf_counter()
    report = hunter.run()
    wall = time.perf_counter() - start
    events = len(trace.events()) if trace is not None else 0
    return report, wall, events


def test_trace_overhead_is_noise():
    banner("observability: traced vs untraced measurement")
    for label, factory in SIZES:
        plain_report, plain_wall, _ = _measure(factory, traced=False)
        traced_report, traced_wall, events = _measure(factory, traced=True)
        # tracing must not perturb the measurement itself
        assert traced_report.summary() == plain_report.summary()
        ratio = traced_wall / plain_wall if plain_wall > 0 else 1.0
        print(
            f"  {label:>8}  untraced {plain_wall * 1000:8.1f}ms  "
            f"traced {traced_wall * 1000:8.1f}ms  "
            f"({events} events, ratio {ratio:.2f})"
        )
        assert events > 0
        assert ratio <= MAX_OVERHEAD, (
            f"tracing overhead {ratio:.2f}x exceeds {MAX_OVERHEAD}x "
            f"at scale {label}"
        )
