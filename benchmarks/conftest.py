"""Shared benchmark fixtures: one default-scale world and measurement.

The world is built once per session; each benchmark times the piece of
the pipeline that regenerates its table or figure and prints the
measured-vs-paper series.
"""

import pytest

from repro.core import URHunter
from repro.scenario import ScenarioConfig, build_world


@pytest.fixture(scope="session")
def bench_world():
    """The default-scale scenario used by every benchmark."""
    return build_world(ScenarioConfig(seed=7))


@pytest.fixture(scope="session")
def bench_report(bench_world):
    """One full URHunter measurement over the benchmark world."""
    hunter = URHunter.from_world(bench_world)
    return hunter.run()


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
