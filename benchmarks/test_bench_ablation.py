"""Ablation benchmarks for URHunter's design choices (DESIGN.md §5).

Not paper tables — these quantify the knobs the paper fixes:

  * each Appendix-B uniformity condition's contribution to exclusion;
  * the IDS severity threshold (the paper requires >= medium);
  * the two evidence sources (threat intel vs sandbox IDS);
  * the number of open-resolver vantage points (the paper uses 3K).
"""

import pytest

from repro.core import (
    ALL_CONDITIONS,
    COND_AS,
    COND_CERT,
    COND_GEO,
    COND_HTTP,
    COND_IP,
    COND_PDNS,
    HunterConfig,
    URHunter,
)
from repro.sandbox.ids import Severity

from .conftest import banner


def _run(world, config=None):
    return URHunter.from_world(world, config).run(validate=False)


def test_uniformity_condition_ablation(benchmark, bench_world):
    """Measure each Appendix-B condition's exclusion power, two ways:
    leave-one-out (marginal contribution) and only-one-enabled
    (standalone power).  The conditions are highly correlated — IP/AS/
    cert all derive from the same open-resolver observations — so the
    standalone view is where individual power shows."""

    def sweep():
        results = {}
        results["all"] = len(_run(bench_world).suspicious)
        results["none"] = len(
            _run(
                bench_world,
                HunterConfig(enabled_conditions=frozenset()),
            ).suspicious
        )
        for condition in sorted(ALL_CONDITIONS):
            without = HunterConfig(
                enabled_conditions=ALL_CONDITIONS - {condition}
            )
            only = HunterConfig(enabled_conditions=frozenset({condition}))
            results[f"without {condition}"] = len(
                _run(bench_world, without).suspicious
            )
            results[f"only {condition}"] = len(
                _run(bench_world, only).suspicious
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    banner("ablation: Appendix-B uniformity conditions")
    baseline, none = results["all"], results["none"]
    print(f"  {'all conditions':22} suspicious={baseline:6d}")
    print(f"  {'no conditions':22} suspicious={none:6d}")
    for condition in sorted(ALL_CONDITIONS):
        print(
            f"  only {condition:17} suspicious={results[f'only {condition}']:6d}"
            f"   without: {results[f'without {condition}']:6d}"
        )
    # Sanity: each subset of conditions excludes at most what all do.
    for label, count in results.items():
        assert baseline <= count <= none, label
    # Standalone power: the IP-subset condition alone removes a large
    # share of the correct records (open resolvers are the primary
    # correct-record source).
    assert results[f"only {COND_IP}"] < none
    # And geo/HTTP carry marginal contributions the others don't cover.
    assert results[f"without {COND_HTTP}"] >= baseline
    assert results[f"without {COND_GEO}"] >= baseline


def test_severity_threshold_ablation(benchmark, bench_world):
    """LOW/MEDIUM/HIGH thresholds change the IDS evidence volume."""

    def sweep():
        return {
            severity.name: len(
                _run(
                    bench_world, HunterConfig(min_severity=severity)
                ).malicious
            )
            for severity in (Severity.LOW, Severity.MEDIUM, Severity.HIGH)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    banner("ablation: IDS severity threshold (paper: >= MEDIUM)")
    for label, count in results.items():
        print(f"  min severity {label:6} -> {count} malicious URs")
    assert results["LOW"] >= results["MEDIUM"] >= results["HIGH"]


def test_evidence_source_ablation(benchmark, bench_world):
    """Threat intel and IDS evidence each find URs the other misses
    (Figure 3(a)'s point)."""

    def sweep():
        both = len(_run(bench_world).malicious)
        intel_only = len(
            _run(bench_world, HunterConfig(use_ids=False)).malicious
        )
        ids_only = len(
            _run(bench_world, HunterConfig(use_intel=False)).malicious
        )
        return {"both": both, "intel only": intel_only, "ids only": ids_only}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    banner("ablation: evidence sources (threat intel vs sandbox IDS)")
    for label, count in results.items():
        print(f"  {label:10} -> {count} malicious URs")
    assert results["both"] > results["intel only"]
    assert results["both"] > results["ids only"]


def test_cohost_join_ablation(benchmark, bench_world):
    """The §4.3 A/TXT co-hosting join: without it, TXT URs whose data
    embeds no IP can never be labeled malicious."""

    def sweep():
        with_join = _run(bench_world)
        without_join = _run(
            bench_world, HunterConfig(use_cohost_join=False)
        )
        from repro.dns.rdata import RRType

        def malicious_txt(report):
            return sum(
                1
                for entry in report.malicious
                if entry.record.rrtype == RRType.TXT
            )

        return {
            "with join": malicious_txt(with_join),
            "without join": malicious_txt(without_join),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    banner("ablation: the A/TXT co-hosting join (§4.3)")
    for label, count in results.items():
        print(f"  {label:13} -> {count} malicious TXT URs")
    assert results["with join"] >= results["without join"]


def test_open_resolver_count_sweep(benchmark, bench_world):
    """Fewer vantage points -> thinner correct-record profiles -> more
    legitimate URs misclassified as suspicious."""

    def sweep():
        full = bench_world.open_resolver_ips
        results = {}
        for count in (1, len(full) // 4, len(full)):
            hunter = URHunter.from_world(bench_world)
            hunter.open_resolver_ips = full[:count]
            report = hunter.run(validate=False)
            results[count] = len(report.suspicious)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    banner("ablation: open-resolver vantage points (paper: 3K)")
    for count, suspicious in sorted(results.items()):
        print(f"  {count:3d} resolvers -> suspicious={suspicious}")
    counts = sorted(results)
    # Coverage is monotone: more vantage points never increase the
    # suspicious set.
    assert results[counts[0]] >= results[counts[-1]]
