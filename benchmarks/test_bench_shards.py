"""Benchmark: the shard runner's parallel headroom and overhead.

The shard runner's performance claim is a *scheduling* claim: the
round-robin partition of nameserver groups into shards is balanced
enough that executing shards across K workers divides the scan's
virtual cost by nearly K.  CI containers pin a single core, so the
gate is computed on the simulated clock — per-group virtual elapsed is
deterministic and proportional to the real per-group work (queries,
pacing, retries), making it a noise-free stand-in for wall time:

* ``serial_s`` — the summed virtual cost of every nameserver group,
  i.e. one worker draining all shards back to back;
* ``makespan_s`` — greedy least-loaded assignment of the shards to 4
  workers; the gate asserts ``serial / makespan >= 1.5`` at the
  largest size (the measured figure is close to the worker count);
* real wall clock for the legacy in-line scan vs the in-process shard
  path rides along informationally — sharding must not make the
  single-process scan meaningfully slower.

Results land in ``BENCH_shards.json`` at the repo root so CI can track
the trajectory across commits.
"""

import json
import subprocess
import time
from pathlib import Path

from repro.core import HunterConfig, URHunter
from repro.plan.shards import run_group_isolated
from repro.scenario import ScenarioConfig, build_world, small_config

from .conftest import banner

#: scenario scale per step: (label, config factory)
SIZES = [
    ("small", lambda: small_config(seed=7)),
    ("default", lambda: ScenarioConfig(seed=7)),
]
#: shards to partition into and workers to schedule them onto
SHARDS = 8
WORKERS = 4
#: minimum simulated-clock speedup at the largest size (CI gate)
SPEEDUP_FLOOR = 1.5
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shards.json"


def _group_costs(scenario_factory):
    """Virtual elapsed per nameserver group, plus the plan."""
    world = build_world(scenario_factory())
    hunter = URHunter.from_world(
        world, HunterConfig(shards=SHARDS)
    )
    plan = hunter.plan
    epoch = hunter.network.now
    base_seed = getattr(hunter.network, "fault_seed", 0)
    costs = {
        group.index: run_group_isolated(
            hunter.network,
            hunter.config,
            plan,
            group,
            hunter.collector.urs_from_outcome,
            epoch,
            base_seed,
        ).elapsed
        for group in plan.groups
    }
    return plan, costs


def _greedy_makespan(shard_costs, workers):
    """Least-loaded-worker assignment, in shard-index order."""
    loads = [0.0] * workers
    for cost in shard_costs:
        loads[loads.index(min(loads))] += cost
    return max(loads)


def _stage1_wall(scenario_factory, config):
    world = build_world(scenario_factory())
    hunter = URHunter.from_world(world, config)
    start = time.perf_counter()
    hunter.stage1_collect()
    return time.perf_counter() - start


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_shard_runner_headroom():
    labels, serials, makespans, speedups = [], [], [], []
    walls_legacy, walls_sharded, hashes = [], [], []
    banner(
        f"shard runner: serial virtual cost vs {WORKERS}-worker makespan"
    )
    for label, factory in SIZES:
        plan, costs = _group_costs(factory)
        shard_costs = [
            sum(costs[group.index] for group in shard.groups)
            for shard in plan.shard(SHARDS)
        ]
        serial = sum(shard_costs)
        makespan = _greedy_makespan(shard_costs, WORKERS)
        speedup = serial / makespan if makespan > 0 else float("inf")
        wall_legacy = _stage1_wall(factory, HunterConfig())
        wall_sharded = _stage1_wall(
            factory, HunterConfig(shards=SHARDS)
        )
        labels.append(label)
        serials.append(round(serial, 4))
        makespans.append(round(makespan, 4))
        speedups.append(round(speedup, 2))
        walls_legacy.append(round(wall_legacy, 4))
        walls_sharded.append(round(wall_sharded, 4))
        hashes.append(plan.plan_hash)
        print(
            f"  {label:>8}  groups {len(plan.groups):3d}  "
            f"serial {serial:8.1f}s  makespan {makespan:8.1f}s  "
            f"speedup {speedup:5.2f}x"
        )
        print(
            f"  {'':>8}  wall: legacy {wall_legacy * 1000:8.1f}ms  "
            f"sharded {wall_sharded * 1000:8.1f}ms"
        )
    payload = {
        "timestamp": time.time(),
        "git_rev": _git_rev(),
        "sizes": labels,
        "shards": SHARDS,
        "workers": WORKERS,
        "plan_hash": hashes,
        "serial_s": serials,
        "makespan_s": makespans,
        "speedup": speedups,
        "speedup_floor": SPEEDUP_FLOOR,
        "wall_legacy_s": walls_legacy,
        "wall_sharded_s": walls_sharded,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(
        f"\nwrote {OUTPUT.name}: largest-size speedup "
        f"{speedups[-1]:.2f}x over {WORKERS} workers"
    )
    # the partition must keep the workers busy at the largest size
    assert speedups[-1] >= SPEEDUP_FLOOR
