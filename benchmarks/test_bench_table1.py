"""Benchmark: regenerate Table 1 (overview of suspicious URs).

Paper values (IMC '23 Table 1, Total row): 1,580,925 suspicious URs of
which 401,718 (25.41%) malicious, spanning 1,369/1,999 domains (68.48%),
5,048/6,351 nameservers (79.48%), and 248/347 providers (71.47%).

We reproduce the *shape*: the malicious share of suspicious URs, the
high nameserver/provider coverage, and A-records carrying most of the
malicious volume.
"""

from repro.analysis import build_table1

from .conftest import banner


def test_table1(benchmark, bench_report):
    table = benchmark(build_table1, bench_report)

    banner("Table 1: overview of suspicious undelegated records")
    print(table.text)
    total = table.rows["Total"]
    print(
        f"\nmeasured malicious share of suspicious URs: "
        f"{total.urs_malicious_pct:.2f}%   (paper: 25.41%)"
    )
    print(
        f"measured malicious nameserver coverage:     "
        f"{total.nameservers_malicious_pct:.2f}%   (paper: 79.48%)"
    )
    print(
        f"measured malicious provider coverage:       "
        f"{total.providers_malicious_pct:.2f}%   (paper: 71.47%)"
    )

    # Shape assertions: who wins and by roughly what factor.
    assert 5.0 < total.urs_malicious_pct < 60.0
    a_row, txt_row = table.rows["A"], table.rows["TXT"]
    assert a_row.urs_malicious >= txt_row.urs_malicious
    assert total.nameservers_malicious_pct > total.urs_malicious_pct
