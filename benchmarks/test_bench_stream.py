"""Benchmark: batch pipeline vs streaming dataflow.

Runs the full three-stage measurement twice per scenario size — once in
batch mode, once as the record-level streaming dataflow — and records
wall clock, allocation peak (tracemalloc), and channel occupancy into
``BENCH_stream.json`` at the repo root so CI can track both claims
across commits:

* the streaming report is byte-identical to the batch report
  (asserted here, exhaustively in ``tests/flow``);
* streaming keeps intermediate buffering bounded by the channel depth
  without costing wall clock.
"""

import json
import subprocess
import time
import tracemalloc
from pathlib import Path

from repro.core import HunterConfig, URHunter
from repro.scenario import ScenarioConfig, build_world, small_config

from .conftest import banner

#: scenario scale per step: (label, config factory)
SIZES = [
    ("small", lambda: small_config(seed=7)),
    ("default", lambda: ScenarioConfig(seed=7)),
]
CHANNEL_DEPTH = 64
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def _measure(scenario_factory, execution: str):
    """One full measurement; returns (report, wall_s, peak_kb, hunter)."""
    world = build_world(scenario_factory())
    hunter = URHunter.from_world(
        world,
        HunterConfig(execution=execution, channel_depth=CHANNEL_DEPTH),
    )
    tracemalloc.start()
    start = time.perf_counter()
    report = hunter.run()
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return report, wall, peak / 1024.0, hunter


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_stream_perf_trajectory():
    labels, batch_s, stream_s, batch_kb, stream_kb, peaks = (
        [],
        [],
        [],
        [],
        [],
        [],
    )
    banner("pipeline execution: batch barrier vs streaming dataflow")
    for label, factory in SIZES:
        batch_report, batch_wall, batch_peak, _ = _measure(factory, "batch")
        stream_report, stream_wall, stream_peak, hunter = _measure(
            factory, "stream"
        )
        # the dataflow must be an invisible re-expression
        assert stream_report.summary() == batch_report.summary()
        stats = hunter.last_flow_stats
        assert stats is not None
        assert stats.max_occupancy <= CHANNEL_DEPTH
        labels.append(label)
        batch_s.append(round(batch_wall, 4))
        stream_s.append(round(stream_wall, 4))
        batch_kb.append(round(batch_peak, 1))
        stream_kb.append(round(stream_peak, 1))
        peaks.append(stats.max_occupancy)
        print(
            f"  {label:>8}  batch {batch_wall * 1000:8.1f}ms "
            f"{batch_peak:9.1f}KiB  stream {stream_wall * 1000:8.1f}ms "
            f"{stream_peak:9.1f}KiB  peak occupancy "
            f"{stats.max_occupancy}/{CHANNEL_DEPTH}"
        )
    payload = {
        "timestamp": time.time(),
        "git_rev": _git_rev(),
        "sizes": labels,
        "channel_depth": CHANNEL_DEPTH,
        "batch_s": batch_s,
        "stream_s": stream_s,
        "batch_peak_kb": batch_kb,
        "stream_peak_kb": stream_kb,
        "max_occupancy": peaks,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    ratio = stream_s[-1] / batch_s[-1] if batch_s[-1] > 0 else 1.0
    print(f"\nwrote {OUTPUT.name}: stream/batch wall ratio {ratio:.2f}")
    # streaming must not cost wall clock (generous noise margin: both
    # runs executed the identical query/classification work)
    assert ratio <= 1.15
