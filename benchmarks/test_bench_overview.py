"""Benchmark: the §5.1 funnel and the full URHunter pipeline.

Paper values: 23M responses -> 5,011,483 unique URs -> 1,580,925
suspicious -> 401,718 malicious (25.41% of suspicious); the §4.2
validation found a zero false-negative rate.

The funnel shape must hold at simulation scale: suspicious URs are a
minority of all URs, malicious URs roughly a quarter of suspicious, and
the validation stays at exactly zero.
"""

import pytest

from repro.analysis import overview_funnel
from repro.core import URHunter
from repro.scenario import ScenarioConfig, build_world

from .conftest import banner


def test_overview_funnel(benchmark, bench_report):
    funnel = benchmark(overview_funnel, bench_report)
    banner("§5.1 funnel: unique URs -> suspicious -> malicious")
    paper = {
        "unique_urs": 5_011_483,
        "suspicious": 1_580_925,
        "malicious": 401_718,
    }
    for key in ("unique_urs", "correct", "protective", "suspicious", "malicious"):
        measured = funnel[key]
        reference = paper.get(key)
        suffix = f"   (paper: {reference:,})" if reference else ""
        print(f"  {key:12} {measured:>8,}{suffix}")
    share = 100.0 * funnel["malicious"] / funnel["suspicious"]
    print(f"\nmalicious share of suspicious: {share:.2f}% (paper: 25.41%)")

    assert funnel["suspicious"] < funnel["unique_urs"] / 2
    assert 0.05 < funnel["malicious"] / funnel["suspicious"] < 0.60


def test_zero_false_negative_validation(benchmark, bench_world):
    """§4.2: delegated records through the exclusion stage -> 0 FNs."""
    hunter = URHunter.from_world(bench_world)
    report = hunter.run()  # includes validation

    def validation_rate():
        assert hunter.last_filter is not None
        return hunter.last_filter.false_negative_rate(
            hunter._delegated_records_sample(),
            now=bench_world.network.now,
        )

    rate = benchmark(validation_rate)
    banner("§4.2 validation: false-negative rate on delegated records")
    print(f"measured FN rate: {rate:.4f}   (paper: 0.0)")
    assert rate == 0.0
    assert report.false_negative_rate == 0.0


def test_full_pipeline(benchmark):
    """Time the complete measurement on a compact scenario."""

    def run_pipeline():
        world = build_world(
            ScenarioConfig(
                seed=11,
                top_list_size=150,
                target_domains=50,
                longtail_providers=4,
                open_resolvers=10,
                attacker_campaigns=8,
                benign_samples=2,
            )
        )
        return URHunter.from_world(world).run(validate=False)

    report = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    banner("full pipeline timing (compact scenario)")
    print(report.summary())
    assert report.classified
