"""Benchmark: the §5.1 funnel and the full URHunter pipeline.

Paper values: 23M responses -> 5,011,483 unique URs -> 1,580,925
suspicious -> 401,718 malicious (25.41% of suspicious); the §4.2
validation found a zero false-negative rate.

The funnel shape must hold at simulation scale: suspicious URs are a
minority of all URs, malicious URs roughly a quarter of suspicious, and
the validation stays at exactly zero.
"""

import time

import pytest

from repro.analysis import overview_funnel
from repro.core import HunterConfig, URHunter
from repro.scenario import ScenarioConfig, build_world

from .conftest import banner


def _compact_config() -> ScenarioConfig:
    return ScenarioConfig(
        seed=11,
        top_list_size=150,
        target_domains=50,
        longtail_providers=4,
        open_resolvers=10,
        attacker_campaigns=8,
        benign_samples=2,
    )


def test_overview_funnel(benchmark, bench_report):
    funnel = benchmark(overview_funnel, bench_report)
    banner("§5.1 funnel: unique URs -> suspicious -> malicious")
    paper = {
        "unique_urs": 5_011_483,
        "suspicious": 1_580_925,
        "malicious": 401_718,
    }
    for key in ("unique_urs", "correct", "protective", "suspicious", "malicious"):
        measured = funnel[key]
        reference = paper.get(key)
        suffix = f"   (paper: {reference:,})" if reference else ""
        print(f"  {key:12} {measured:>8,}{suffix}")
    share = 100.0 * funnel["malicious"] / funnel["suspicious"]
    print(f"\nmalicious share of suspicious: {share:.2f}% (paper: 25.41%)")

    assert funnel["suspicious"] < funnel["unique_urs"] / 2
    assert 0.05 < funnel["malicious"] / funnel["suspicious"] < 0.60


def test_zero_false_negative_validation(benchmark, bench_world):
    """§4.2: delegated records through the exclusion stage -> 0 FNs."""
    hunter = URHunter.from_world(bench_world)
    report = hunter.run()  # includes validation

    def validation_rate():
        assert hunter.last_filter is not None
        return hunter.last_filter.false_negative_rate(
            hunter._delegated_records_sample(),
            now=bench_world.network.now,
        )

    rate = benchmark(validation_rate)
    banner("§4.2 validation: false-negative rate on delegated records")
    print(f"measured FN rate: {rate:.4f}   (paper: 0.0)")
    assert rate == 0.0
    assert report.false_negative_rate == 0.0


def test_full_pipeline(benchmark):
    """Time the complete measurement on a compact scenario."""

    def run_pipeline():
        world = build_world(_compact_config())
        return URHunter.from_world(world).run(validate=False)

    report = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    banner("full pipeline timing (compact scenario)")
    print(report.summary())
    assert report.classified


# -- scan engine comparison ------------------------------------------------


def _classified_map(report):
    return {
        entry.record.key: entry.category
        for entry in report.classified
    }


def test_engine_equivalence(benchmark):
    """Sequential and batched engines classify identically on the seed."""

    def run(engine_name):
        world = build_world(_compact_config())
        hunter = URHunter.from_world(
            world, HunterConfig(engine=engine_name)
        )
        return hunter.run(validate=False)

    sequential = run("sequential")
    batched = benchmark.pedantic(
        run, args=("batched",), rounds=3, iterations=1
    )
    banner("engine equivalence: sequential vs batched classification")
    print(f"classified URs: {len(sequential.classified):,} (both engines)")
    assert batched.scan_metrics is not None
    print(batched.scan_metrics.summary())
    assert _classified_map(sequential) == _classified_map(batched)


def _timed_stage1(engine_name, dead_fraction=0.0, per_server_interval=0.0):
    """Run the stage-1 UR sweep alone; report wall and virtual cost."""
    world = build_world(_compact_config())
    targets = world.nameserver_targets
    if dead_fraction:
        for target in targets[:: int(1 / dead_fraction)]:
            world.network.set_online(target.address, False)
    hunter = URHunter.from_world(
        world,
        HunterConfig(
            engine=engine_name, per_server_interval=per_server_interval
        ),
    )
    started_wall = time.perf_counter()
    started_virtual = world.network.now
    result = hunter.collector.collect_urs(
        hunter.nameservers, hunter.domains, hunter.delegated_to
    )
    return {
        "wall": time.perf_counter() - started_wall,
        "virtual": world.network.now - started_virtual,
        "metrics": hunter.engine.metrics,
        "urs": {record.key for record in result.undelegated},
    }


def test_engine_fault_tolerance_wall_clock():
    """Half the nameservers dead: the circuit breaker pays for itself.

    The sequential engine burns the full retry budget on every task
    aimed at a dead server; the batched engine opens the server's
    circuit after a handful of failures and skips the rest without
    touching the wire — strictly less work, measurably less wall clock,
    and a virtual scan shorter by orders of magnitude (timeouts overlap
    across lanes instead of summing).
    """
    runs = {
        name: min(
            (_timed_stage1(name, dead_fraction=0.5) for _ in range(3)),
            key=lambda run: run["wall"],
        )
        for name in ("sequential", "batched")
    }
    banner("engine fault tolerance: 50% dead nameservers")
    for name, run in runs.items():
        metrics = run["metrics"]
        print(
            f"  {name:10} wall {run['wall']:6.2f}s   "
            f"virtual {run['virtual']:>12,.0f}s   "
            f"sent {metrics.queries:>8,}   giveups {metrics.giveups:,}   "
            f"circuit-skips {metrics.skipped:,}"
        )
    sequential, batched = runs["sequential"], runs["batched"]
    assert batched["urs"] == sequential["urs"]
    assert batched["metrics"].queries < sequential["metrics"].queries
    assert batched["virtual"] < sequential["virtual"] / 10
    assert batched["wall"] < sequential["wall"]


def test_engine_pacing_overlap():
    """Ethics pacing: lanes overlap waits, sequential sums them.

    Under the paper's ~130 s per-server interval the batched engine
    interleaves other servers' queries into each wait; the virtual
    duration of the sweep drops by roughly the lane concurrency.
    """
    sequential = _timed_stage1("sequential", per_server_interval=130.0)
    batched = _timed_stage1("batched", per_server_interval=130.0)
    banner("engine pacing: per_server_interval=130s (paper's §A budget)")
    for name, run in (("sequential", sequential), ("batched", batched)):
        print(
            f"  {name:10} virtual scan duration "
            f"{run['virtual']:>14,.0f}s"
        )
    speedup = sequential["virtual"] / batched["virtual"]
    print(f"  virtual-time speedup: {speedup:.1f}x")
    assert batched["urs"] == sequential["urs"]
    assert batched["virtual"] < sequential["virtual"] / 4
