"""Benchmark: warm incremental re-scan vs cold full scan.

The incremental layer's performance claim: when a small fraction of
nameserver groups changed since the last run (the longitudinal norm —
a few takedowns and fresh campaigns between snapshots), a warm re-scan
replays every unchanged group from the result store and only executes
the dirty ones.  CI containers pin a single core, so the gate is
computed on the simulated clock — per-group virtual elapsed is
deterministic and proportional to the real per-group work:

* ``cold_virtual_s`` — the summed virtual cost of every nameserver
  group, i.e. what a cold scan must execute;
* ``warm_virtual_s`` — the summed virtual cost of only the groups the
  :class:`PlanDiffer` marks ``execute`` after ~10% of the cacheable
  servers mutate (stale slots plus the always-executed uncacheable
  groups); the gate asserts ``cold / warm >= 3.0`` at the largest
  size;
* real wall clock for the populate run vs the warm stage-1 rides along
  informationally, and at the small size the warm run's full report is
  byte-compared against a cold scan of an identically mutated world.

Results land in ``BENCH_incremental.json`` at the repo root so CI can
track the trajectory across commits.
"""

import json
import subprocess
import tempfile
import time
from pathlib import Path

from repro.core import HunterConfig, URHunter
from repro.dns.rdata import RRType
from repro.incremental import GroupResultStore, PlanDiffer, server_fingerprint
from repro.plan.shards import run_group_isolated
from repro.scenario import ScenarioConfig, build_world, small_config

from .conftest import banner

#: scenario scale per step: (label, config factory)
SIZES = [
    ("small", lambda: small_config(seed=7)),
    ("default", lambda: ScenarioConfig(seed=7)),
]
#: fraction of cacheable groups dirtied between the runs
DIRTY_FRACTION = 0.10
#: minimum simulated-clock speedup at the largest size (CI gate)
SPEEDUP_FLOOR = 3.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

CONFIG = HunterConfig(shards=1)


def _mutate(world, server_ips, count):
    """Drop one apex rrset from ``count`` of the given servers' zones.

    Deterministic given the same world build and server order, so the
    warm-wall world and the cost world mutate identically.
    """
    mutated = 0
    for address in server_ips:
        if mutated >= count:
            break
        service = world.network.dns_hosts().get(address)
        if service is None:
            continue
        for zone in service.zones:
            if zone.remove(zone.origin, RRType.A) or zone.remove(
                zone.origin, RRType.TXT
            ):
                mutated += 1
                break
    assert mutated == count, f"only mutated {mutated}/{count} servers"
    return mutated


def _cacheable_servers(hunter):
    """Plan-group server addresses with an observable state stamp."""
    return sorted(
        group.server_ip
        for group in hunter.plan.groups
        if server_fingerprint(hunter.network, group.server_ip) is not None
    )


def _group_costs(hunter):
    """Virtual elapsed per nameserver group, keyed by group index."""
    plan = hunter.plan
    epoch = hunter.network.now
    base_seed = getattr(hunter.network, "fault_seed", 0)
    return {
        group.index: run_group_isolated(
            hunter.network,
            hunter.config,
            plan,
            group,
            hunter.collector.urs_from_outcome,
            epoch,
            base_seed,
        ).elapsed
        for group in plan.groups
    }


def _providers(hunter):
    return {
        target.address: target.provider for target in hunter.nameservers
    }


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_incremental_warm_rescan_speedup():
    labels, dirty_counts, speedups = [], [], []
    cold_virtuals, warm_virtuals = [], []
    walls_cold, walls_warm = [], []
    hit_counts, invalidated_counts, uncacheable_counts = [], [], []
    banner(
        f"incremental re-scan: cold virtual cost vs warm with "
        f"{DIRTY_FRACTION:.0%} dirty groups"
    )
    for label, factory in SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            store_dir = Path(tmp) / "result-store"

            # populate: a cold scan that fills the store
            world = build_world(factory())
            hunter = URHunter.from_world(world, CONFIG)
            hunter.result_store = GroupResultStore(store_dir)
            start = time.perf_counter()
            hunter.stage1_collect()
            wall_cold = time.perf_counter() - start
            cacheable = _cacheable_servers(hunter)
            dirty = max(1, int(len(cacheable) * DIRTY_FRACTION))

            # partition a freshly built (and mutated) world against the
            # populated store; the execute-set's virtual cost is what a
            # warm re-scan actually pays
            world = build_world(factory())
            hunter = URHunter.from_world(world, CONFIG)
            _mutate(world, cacheable, dirty)
            diff_store = GroupResultStore(store_dir)
            diff = PlanDiffer(diff_store).partition(
                hunter.plan,
                hunter.network,
                hunter.config,
                providers=_providers(hunter),
            )
            costs = _group_costs(hunter)
            cold_virtual = sum(costs.values())
            warm_virtual = sum(
                costs[decision.group]
                for decision in diff.decisions
                if decision.action == "execute"
            )
            speedup = (
                cold_virtual / warm_virtual
                if warm_virtual > 0
                else float("inf")
            )

            # the warm re-scan itself, wall-timed on yet another
            # identically mutated world (the partition above consumed
            # nothing: store slots only refresh when a run executes)
            world = build_world(factory())
            warm_hunter = URHunter.from_world(world, CONFIG)
            _mutate(world, cacheable, dirty)
            warm_store = GroupResultStore(store_dir)
            warm_hunter.result_store = warm_store
            start = time.perf_counter()
            warm_hunter.stage1_collect()
            wall_warm = time.perf_counter() - start
            assert warm_store.stats["hits"] > 0
            # a provider's nameserver set serves the same zones, so one
            # zone mutation can invalidate several sibling servers
            assert warm_store.stats["invalidated"] >= dirty

            if label == "small":
                # byte-identity spot check: a fresh warm full run must
                # match a cold scan of the same mutated world
                check_world = build_world(factory())
                check_hunter = URHunter.from_world(check_world, CONFIG)
                _mutate(check_world, cacheable, dirty)
                check_hunter.result_store = GroupResultStore(store_dir)
                warm_summary = check_hunter.run().summary()
                cold_world = build_world(factory())
                cold_hunter = URHunter.from_world(cold_world, CONFIG)
                _mutate(cold_world, cacheable, dirty)
                assert warm_summary == cold_hunter.run().summary()

        labels.append(label)
        dirty_counts.append(dirty)
        cold_virtuals.append(round(cold_virtual, 4))
        warm_virtuals.append(round(warm_virtual, 4))
        speedups.append(round(speedup, 2))
        walls_cold.append(round(wall_cold, 4))
        walls_warm.append(round(wall_warm, 4))
        hit_counts.append(warm_store.stats["hits"])
        invalidated_counts.append(warm_store.stats["invalidated"])
        uncacheable_counts.append(warm_store.stats["uncacheable"])
        print(
            f"  {label:>8}  groups {len(costs):3d}  "
            f"dirty {dirty:2d}  cold {cold_virtual:8.1f}s  "
            f"warm {warm_virtual:8.1f}s  speedup {speedup:5.2f}x"
        )
        print(
            f"  {'':>8}  wall: populate {wall_cold * 1000:8.1f}ms  "
            f"warm {wall_warm * 1000:8.1f}ms  "
            f"(hits {warm_store.stats['hits']}, "
            f"invalidated {warm_store.stats['invalidated']}, "
            f"uncacheable {warm_store.stats['uncacheable']})"
        )
    payload = {
        "timestamp": time.time(),
        "git_rev": _git_rev(),
        "sizes": labels,
        "dirty_fraction": DIRTY_FRACTION,
        "dirty_groups": dirty_counts,
        "hits": hit_counts,
        "invalidated": invalidated_counts,
        "uncacheable": uncacheable_counts,
        "cold_virtual_s": cold_virtuals,
        "warm_virtual_s": warm_virtuals,
        "speedup": speedups,
        "speedup_floor": SPEEDUP_FLOOR,
        "wall_cold_s": walls_cold,
        "wall_warm_s": walls_warm,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(
        f"\nwrote {OUTPUT.name}: largest-size warm re-scan "
        f"{speedups[-1]:.2f}x over cold"
    )
    # replaying the unchanged 90% must dominate the virtual cost
    assert speedups[-1] >= SPEEDUP_FLOOR
