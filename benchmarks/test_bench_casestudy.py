"""Benchmark: regenerate the §5.3 case studies.

Paper values:
  * Dark.IoT — two 2021-12-12 variants resolving api.gitlab.com (SLD
    rank 527) at ClouDNS with an EmerDNS fallback; the 2023-03-04 variant
    abandoned EmerDNS and moved to raw.pastebin.com (SLD rank 2033) URs;
  * Specter — three RAT variants holding C2 via URs for ibm.com (125)
    and api.github.com (30) on ClouDNS, flagged by none of 74 vendors;
  * masquerading SPF — records for speedtest.net (415) on 11 nameservers
    across two providers (Namecheap, CSC), three IPs in one /24, six
    samples, 16 alerts of which 4 high-risk, five Trojan-labeled and one
    fully undetected.
"""

import pytest

from repro.analysis import all_case_studies

from .conftest import banner


@pytest.fixture(scope="module")
def nameserver_provider(bench_world):
    return {
        target.address: target.provider
        for target in bench_world.nameserver_targets
    }


def test_case_studies(benchmark, bench_world, bench_report, nameserver_provider):
    cases = benchmark(
        all_case_studies,
        bench_report,
        bench_world.sandbox_reports,
        nameserver_provider,
    )

    banner("§5.3 case studies (reconstructed from observed evidence)")
    for case_name, case in cases.items():
        print(f"\n[{case_name}] {case.summary()}")

    darkiot = cases["Dark.IoT"]
    assert darkiot.sample_count == 3
    assert set(darkiot.variants) == {"2021-12-12", "2023-03-04"}
    assert darkiot.providers == ["ClouDNS"]
    assert {"api.gitlab.com", "raw.pastebin.com"} <= set(darkiot.ur_domains)
    assert darkiot.max_vendor_detections > 0

    specter = cases["Specter"]
    assert specter.sample_count == 3
    assert specter.providers == ["ClouDNS"]
    assert specter.max_vendor_detections == 0  # undetected by 74 vendors

    spf = cases["SPF-masquerade"]
    print(
        f"\nSPF masquerade vs paper: nameservers {spf.nameserver_count} "
        f"(paper 11), providers {spf.provider_count} (paper 2), "
        f"IPs {len(spf.spf_ips)} in one /24 (paper 3), samples "
        f"{spf.sample_count} (paper 6), alerts {spf.alert_count} "
        f"(paper 16), high-risk {spf.high_risk_alerts} (paper 4)"
    )
    assert spf.nameserver_count == 11
    assert spf.provider_count == 2
    assert len(spf.spf_ips) == 3 and spf.all_in_same_slash24
    assert spf.sample_count == 6
    assert spf.trojan_labeled_samples == 5
    assert spf.undetected_samples == 1
    assert spf.high_risk_alerts >= 4


def test_darkiot_emerdns_shift(benchmark, bench_world):
    """The 2023 variant no longer touches EmerDNS; 2021 variants may."""
    from repro.scenario.world import EMERDNS_IP

    def nameservers_by_variant():
        out = {}
        for report in bench_world.sandbox_reports:
            if report.sample.family != "Dark.IoT":
                continue
            out.setdefault(report.sample.variant, set()).update(
                report.queried_nameservers()
            )
        return out

    queried = benchmark(nameservers_by_variant)
    banner("Dark.IoT: EmerDNS abandonment between variants")
    for variant, servers in sorted(queried.items()):
        used_emer = EMERDNS_IP in servers
        print(f"  variant {variant}: EmerDNS used = {used_emer}")
    assert EMERDNS_IP not in queried["2023-03-04"]
