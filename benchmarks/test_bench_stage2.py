"""Benchmark: stage-2 exclusion, naive scan vs indexed fast path.

Builds a synthetic stage-2 workload — many candidate URs duplicated
across nameservers, a prefix-heavy IP-metadata database, a deep
passive-DNS history — and times classification twice per size:

* **naive**: linear prefix scans, full-history scans, no verdict memo
  (``indexed=False`` stores + ``memoize=False`` filter);
* **indexed**: the length-bucketed prefix index, the generation-cached
  pdns store, and per-key verdict memoization.

Both paths must classify identically (asserted), and the trajectory is
written to ``BENCH_stage2.json`` at the repo root so CI can track the
speedup across commits and fail if the fast path ever regresses below
the naive one.
"""

import json
import subprocess
import time
from pathlib import Path

from repro.core.correctness import CorrectRecordDatabase, UniformityChecker
from repro.core.records import UndelegatedRecord
from repro.core.suspicion import SuspicionFilter
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.ipinfo import IpInfoDatabase
from repro.intel.pdns import PassiveDnsStore

from .conftest import banner

#: (distinct UR keys, duplication across nameservers) per step
SIZES = [(60, 4), (240, 4), (960, 4)]
PREFIXES = 384
FILLER_OBSERVATIONS_PER_KEY = 6
NOW = 1_000.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stage2.json"


def _record_address(index: int) -> str:
    return f"203.{(index // 200) % 64}.{index % 200}.{(index % 23) + 1}"


def _build_workload(n_keys: int, duplication: int, indexed: bool):
    """A self-contained stage-2 exclusion problem of the given size."""
    ipinfo = IpInfoDatabase(
        indexed=indexed, cache_size=4096 if indexed else 0
    )
    # the profile block: one home network every domain resolves into
    ipinfo.register_prefix("10.0.0.0/8", 100, "HOME", "US")
    # a prefix-dense internet so the naive longest-match scan has to work
    for i in range(PREFIXES):
        ipinfo.register_prefix(
            f"203.{i // 64}.{(i % 64) * 4}.0/22",
            1_000 + i,
            f"AS{1_000 + i}",
            "JP",
        )
    pdns = PassiveDnsStore(indexed=indexed)
    correct_db = CorrectRecordDatabase(ipinfo)
    records = []
    for key in range(n_keys):
        domain = name(f"d{key}.bench.example")
        address = _record_address(key)
        correct_db.observe_a(domain, "10.0.0.1")
        # even keys were historically served -> excluded by pdns-history;
        # odd keys survive every condition (the expensive full walk)
        if key % 2 == 0:
            pdns.observe(domain, RRType.A, address, NOW - 100.0)
        for server in range(duplication):
            records.append(
                UndelegatedRecord(
                    domain=domain,
                    nameserver_ip=f"198.51.{server}.53",
                    provider=f"provider-{server}",
                    rrtype=RRType.A,
                    rdata_text=address,
                )
            )
    # deep unrelated history: the naive pdns path scans all of it per query
    for filler in range(n_keys * FILLER_OBSERVATIONS_PER_KEY):
        pdns.observe(
            f"filler{filler}.bench.example",
            RRType.A,
            _record_address(filler + 7),
            NOW - 50.0,
        )
    checker = UniformityChecker(correct_db, pdns=pdns)
    suspicion = SuspicionFilter(checker, protective={}, memoize=indexed)
    return suspicion, records


def _classify_timed(suspicion, records):
    start = time.perf_counter()
    outcome = suspicion.classify(records, now=NOW)
    return time.perf_counter() - start, outcome


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_stage2_perf_trajectory():
    sizes, naive_s, indexed_s, speedups = [], [], [], []
    banner("stage-2 exclusion: naive scan vs indexed fast path")
    for n_keys, duplication in SIZES:
        total = n_keys * duplication
        naive_filter, records = _build_workload(
            n_keys, duplication, indexed=False
        )
        fast_filter, fast_records = _build_workload(
            n_keys, duplication, indexed=True
        )
        naive_time, naive_outcome = _classify_timed(naive_filter, records)
        fast_time, fast_outcome = _classify_timed(fast_filter, fast_records)
        # the fast path must be an invisible optimization
        assert [
            (e.record.domain, e.record.nameserver_ip, e.category, e.reasons)
            for e in naive_outcome.classified
        ] == [
            (e.record.domain, e.record.nameserver_ip, e.category, e.reasons)
            for e in fast_outcome.classified
        ]
        speedup = naive_time / fast_time if fast_time > 0 else float("inf")
        sizes.append(total)
        naive_s.append(round(naive_time, 4))
        indexed_s.append(round(fast_time, 4))
        speedups.append(round(speedup, 2))
        metrics = fast_filter.last_metrics
        print(
            f"  {total:>6,} records  naive {naive_time * 1000:8.1f}ms  "
            f"indexed {fast_time * 1000:7.1f}ms  speedup {speedup:6.1f}x  "
            f"dedup {metrics.dedup_factor:.2f}x"
        )
    payload = {
        "timestamp": time.time(),
        "git_rev": _git_rev(),
        "sizes": sizes,
        "naive_s": naive_s,
        "indexed_s": indexed_s,
        "speedup": speedups,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"\nwrote {OUTPUT.name}: speedup trajectory {speedups}")
    # the fast path must never lose to the naive one at the largest size
    assert speedups[-1] >= 1.0
