"""Benchmark: hedging + AIMD under a tail-latency storm.

Replays the bundled ``tail-latency-storm`` chaos scenario twice — once
with the resilience layer disabled, once with hedged retries and AIMD
send credit enabled — and records the **virtual** wall clock of each
run into ``BENCH_resilience.json`` at the repo root.  Virtual time is
the honest figure here: the storm's cost is timeout parks on the
simulated clock, which hedging converts into short hedge parks.  The
CI gate asserts the resilient run finishes at least 1.5x faster in
virtual time while producing the same verdicts.
"""

import json
import subprocess
import time
from pathlib import Path

from repro.core import HunterConfig, URHunter
from repro.resilience.scenario import apply_scenario, load_scenario
from repro.scenario import build_world, small_config

from .conftest import banner

SEED = 7
SCENARIO = "tail-latency-storm"
#: the acceptance floor: hedging+AIMD must cut virtual wall clock 1.5x
SPEEDUP_FLOOR = 1.5
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _measure(resilient: bool):
    """One stormy run; returns (report, virtual_s, wall_s, resilience)."""
    world = build_world(small_config(seed=SEED))
    knobs = dict(hedge_delay=0.25, aimd=True) if resilient else {}
    hunter = URHunter.from_world(world, HunterConfig(**knobs))
    apply_scenario(load_scenario(SCENARIO), world, hunter)
    virtual_start = world.network.now
    start = time.perf_counter()
    report = hunter.run()
    wall = time.perf_counter() - start
    virtual = world.network.now - virtual_start
    return report, virtual, wall, report.resilience_metrics


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_resilience_speedup_under_storm():
    banner("resilience: hedging + AIMD vs bare retries (tail-latency storm)")
    base_report, base_virtual, base_wall, _ = _measure(resilient=False)
    res_report, res_virtual, res_wall, metrics = _measure(resilient=True)
    # same storm: hedged retries land inside loss windows the bare
    # engine gives up on, so the resilient run recovers at least as
    # many records — never fewer
    assert len(res_report.classified) >= len(base_report.classified)
    assert metrics is not None and metrics.hedges_fired > 0
    speedup = base_virtual / res_virtual if res_virtual > 0 else 0.0
    print(
        f"  disabled  virtual {base_virtual:10.1f}s  "
        f"wall {base_wall * 1000:8.1f}ms"
    )
    print(
        f"  resilient virtual {res_virtual:10.1f}s  "
        f"wall {res_wall * 1000:8.1f}ms  "
        f"hedges fired/won/wasted "
        f"{metrics.hedges_fired}/{metrics.hedges_won}/{metrics.hedges_wasted}"
        f"  aimd cuts {metrics.aimd_cuts}"
    )
    payload = {
        "timestamp": time.time(),
        "git_rev": _git_rev(),
        "scenario": SCENARIO,
        "seed": SEED,
        "baseline_virtual_s": round(base_virtual, 3),
        "resilient_virtual_s": round(res_virtual, 3),
        "baseline_wall_s": round(base_wall, 4),
        "resilient_wall_s": round(res_wall, 4),
        "virtual_speedup": round(speedup, 3),
        "hedges_fired": metrics.hedges_fired,
        "hedges_won": metrics.hedges_won,
        "hedges_wasted": metrics.hedges_wasted,
        "aimd_cuts": metrics.aimd_cuts,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(
        f"\nwrote {OUTPUT.name}: virtual speedup {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    assert speedup >= SPEEDUP_FLOOR
