"""Benchmark: regenerate Table 2 (hosting strategies) by active probing.

Paper values (Table 2): all seven providers host without verification;
Amazon/ClouDNS accept unregistered domains; Baidu and Tencent refuse
subdomains; only Amazon allows single-user duplicates; Amazon/Cloudflare/
Tencent allow cross-user duplicates; Amazon/ClouDNS/Godaddy lack domain
retrieval.  Our probe reproduces the matrix cell for cell.
"""

from repro.analysis import build_table2
from repro.hosting import TABLE2_PROVIDERS, NsAllocation

from .conftest import banner

#: the paper's Table 2 as (provider -> expected cells)
PAPER_TABLE2 = {
    "Alibaba Cloud": ("global-fixed", True, False, True, True, True, False, False, False),
    "Amazon": ("random", True, True, True, True, True, True, True, True),
    "Baidu Cloud": ("global-fixed", True, False, False, True, True, False, False, False),
    "ClouDNS": ("global-fixed", True, True, True, True, True, False, False, True),
    "Cloudflare": ("account-fixed", True, False, True, True, True, False, True, False),
    "Godaddy": ("global-fixed", True, False, True, True, True, False, False, True),
    "Tencent Cloud": ("account-fixed", True, False, False, True, True, False, True, False),
}


def _probe(world):
    return build_table2(
        [world.providers[provider_name] for provider_name in TABLE2_PROVIDERS]
    )


def test_table2(benchmark, bench_world):
    table = benchmark(_probe, bench_world)

    banner("Table 2: hosting strategy for common DNS hosting providers")
    print(table.text)

    mismatches = []
    for result in table.results:
        expected = PAPER_TABLE2[result.provider]
        measured = (
            result.ns_allocation.value,
            result.hosts_without_verification,
            result.allows_unregistered,
            result.allows_subdomain,
            result.allows_sld,
            result.allows_etld,
            result.duplicate_single_user,
            result.duplicate_cross_user,
            result.no_retrieval,
        )
        if measured != expected:
            mismatches.append((result.provider, expected, measured))
    print(
        f"\nmatrix match vs paper: "
        f"{len(PAPER_TABLE2) - len(mismatches)}/{len(PAPER_TABLE2)} "
        "providers identical"
    )
    assert not mismatches, mismatches
