"""Benchmark: regenerate Figure 2 (UR categories per top provider).

Paper values: the top five providers by UR volume are Cloudflare
(3,039,369), ClouDNS (90,783), Amazon (84,256), Akamai (53,100), and NHN
Cloud (23,783); correct and protective records make up a significant
portion, but malicious and unknown URs are present throughout.

The reproduction targets: Cloudflare far ahead of everyone (its anycast
fleet answers for every hosted zone, so nearly all of its URs are
*correct*), ClouDNS dominated by *protective* records, and suspicious
(unknown+malicious) URs visible on the large permissive providers.
"""

from repro.analysis import PAPER_FIGURE2_PROVIDERS, figure2

from .conftest import banner


def test_figure2(benchmark, bench_report):
    figure = benchmark(figure2, bench_report, 5)

    banner("Figure 2: UR categories among the top 5 providers")
    print(figure.text)
    print("\npaper's top five by UR count:")
    for provider_name, count in PAPER_FIGURE2_PROVIDERS:
        print(f"  {provider_name:12} {count:>9,}")

    by_name = dict(figure.rows)
    totals = {
        provider: sum(counts.values()) for provider, counts in figure.rows
    }

    # Shape: Cloudflare leads and is correct-dominated.
    assert max(totals, key=totals.get) == "Cloudflare"
    cloudflare = by_name["Cloudflare"]
    assert cloudflare["correct"] > cloudflare["malicious"]
    # ClouDNS in the top five, protective-dominated.
    assert "ClouDNS" in by_name
    cloudns = by_name["ClouDNS"]
    assert cloudns["protective"] > max(
        cloudns["correct"], cloudns["unknown"], cloudns["malicious"]
    )
    # Suspicious URs are not ignorable: present among the top providers.
    assert any(
        counts["unknown"] + counts["malicious"] > 0
        for counts in by_name.values()
    )
