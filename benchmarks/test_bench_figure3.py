"""Benchmark: regenerate Figure 3(a)-(d) (malicious-IP analysis).

Paper values:
  3(a) label provenance: intel-only 34.20%, IDS-only 36.62%, both 29.18%;
  3(b) flagging-vendor counts: 1-2 77.90%, 3-4 16.31%, 5-6 2.01%, 7-11 3.78%;
  3(c) alert mix: Trojan 41.67%, Other 23.86%, Privacy 21.19%,
       C&C 10.82%, Bad Traffic 2.46%;
  3(d) vendor tags (multi-label): Trojan 89.01%, Scanner 41.01%,
       Other 33.33%, Malware 19.11%, C&C 16.25%, Botnet 10.23%.

Plus the §5.2 statistic: 90.95% of malicious TXT URs are email-related.
"""

import pytest

from repro.analysis import (
    PAPER_EMAIL_TXT_SHARE,
    PAPER_FIGURE3A,
    PAPER_FIGURE3B,
    PAPER_FIGURE3C,
    PAPER_FIGURE3D,
    compare_to_paper,
    figure3a,
    figure3b,
    figure3c,
    figure3d,
)

from .conftest import banner


def test_figure3a(benchmark, bench_report):
    figure = benchmark(figure3a, bench_report)
    banner("Figure 3(a): why IP addresses were labeled")
    print(figure.text)
    print("\n" + compare_to_paper(figure.series, PAPER_FIGURE3A))
    # Shape: all three evidence sources contribute; none dominates
    # overwhelmingly (paper: roughly a third each).
    assert set(figure.series) == {"intel", "ids", "both"}
    assert all(share > 5.0 for share in figure.series.values())


def test_figure3b(benchmark, bench_report):
    figure = benchmark(figure3b, bench_report)
    banner("Figure 3(b): # vendors flagging each malicious IP")
    print(figure.text)
    print("\n" + compare_to_paper(figure.series, PAPER_FIGURE3B))
    # Shape: the 1-2 bucket dominates by a wide margin.
    assert figure.series["1-2"] == max(figure.series.values())
    assert figure.series["1-2"] > 50.0


def test_figure3c(benchmark, bench_report):
    figure = benchmark(figure3c, bench_report)
    banner("Figure 3(c): malicious activities in traffic toward UR IPs")
    print(figure.text)
    print("\n" + compare_to_paper(figure.series, PAPER_FIGURE3C))
    # Shape: Trojan activity is the single largest alert category.
    assert figure.series
    top_category = max(figure.series, key=figure.series.get)
    assert top_category == "Trojan Activity"


def test_figure3d(benchmark, bench_report):
    figure = benchmark(figure3d, bench_report)
    banner("Figure 3(d): vendor tags on malicious IPs (multi-label)")
    print(figure.text)
    print("\n" + compare_to_paper(figure.series, PAPER_FIGURE3D))
    # Shape: Trojan dominates (paper 89%), Scanner second (paper 41%).
    assert max(figure.series, key=figure.series.get) == "Trojan"
    assert figure.series["Trojan"] > 60.0
    assert figure.series.get("Scanner", 0.0) > 15.0


def test_email_related_txt_share(benchmark, bench_report):
    share = benchmark(bench_report.email_related_txt_share)
    banner("§5.2: email-related share of malicious TXT URs")
    print(
        f"measured: {share:.2f}%   paper: {PAPER_EMAIL_TXT_SHARE:.2f}%"
    )
    # Shape: email-shaped records (SPF/DMARC) dominate malicious TXT.
    assert share > 50.0
