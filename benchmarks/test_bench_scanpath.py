"""Benchmark: the scan-path fast lane vs the naive query path.

Times stage 1 (the full three-collection scan through the engine) twice
per scenario size — once with the fast lane disabled
(``scan_cache=False``, every exchange encoded, decoded, and captured
from scratch) and once with it enabled (compiled zone answers,
id-agnostic wire-codec memoization, ``capture_mode="off"``) — and
records wall clock plus the fast lane's hit/miss counters into
``BENCH_scanpath.json`` at the repo root so CI can track both claims
across commits:

* the fast lane is a pure re-expression: every deterministic stage-1
  output (query/response/timeout counters, the UR sequence, the
  classification epoch) is identical with the lane on or off
  (asserted here; report byte-identity exhaustively in ``tests``);
* compiling answers and memoizing the codec buys a real wall-clock
  speedup on the scan path (gated at 2x here, generous against timer
  noise; the measured figure at the default size is ~3x).
"""

import json
import subprocess
import time
from pathlib import Path

from repro.core import HunterConfig, URHunter
from repro.net.scanpath import ScanPathMetrics
from repro.scenario import ScenarioConfig, build_world, small_config

from .conftest import banner

#: scenario scale per step: (label, config factory)
SIZES = [
    ("small", lambda: small_config(seed=7)),
    ("default", lambda: ScenarioConfig(seed=7)),
]
#: minimum fast-lane speedup at the largest size (CI gate)
SPEEDUP_FLOOR = 2.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scanpath.json"


def _stage1_fingerprint(stage1):
    """Every deterministic output of stage 1, as one comparable value."""
    collection = stage1.collection
    return {
        "queries_sent": collection.queries_sent,
        "responses_seen": collection.responses_seen,
        "timeouts": collection.timeouts,
        "correct_successes": collection.correct_successes,
        "undelegated": [record.key for record in collection.undelegated],
        "protective": sorted(collection.protective),
        "classification_epoch": stage1.now,
    }


def _measure(scenario_factory, config: HunterConfig):
    """One stage-1 collection; returns (fingerprint, wall_s, hunter)."""
    world = build_world(scenario_factory())
    hunter = URHunter.from_world(world, config)
    start = time.perf_counter()
    stage1 = hunter.stage1_collect()
    wall = time.perf_counter() - start
    return _stage1_fingerprint(stage1), wall, hunter


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_scanpath_fast_lane():
    labels, naive_s, fast_s, speedups, counters = [], [], [], [], []
    banner("scan path: naive query path vs compiled fast lane")
    for label, factory in SIZES:
        naive_fp, naive_wall, _ = _measure(
            factory, HunterConfig(scan_cache=False, capture_mode="full")
        )
        fast_fp, fast_wall, hunter = _measure(
            factory, HunterConfig(scan_cache=True, capture_mode="off")
        )
        # the fast lane must be an invisible re-expression
        assert fast_fp == naive_fp
        scanpath = ScanPathMetrics.from_network(hunter.network)
        # the lane actually engaged: compiled answers and codec hits
        assert scanpath.compiled_hits > 0
        assert scanpath.query_hits > 0
        speedup = naive_wall / fast_wall if fast_wall > 0 else float("inf")
        labels.append(label)
        naive_s.append(round(naive_wall, 4))
        fast_s.append(round(fast_wall, 4))
        speedups.append(round(speedup, 2))
        counters.append(scanpath.to_dict())
        print(
            f"  {label:>8}  naive {naive_wall * 1000:8.1f}ms  "
            f"fast {fast_wall * 1000:8.1f}ms  speedup {speedup:5.2f}x"
        )
        print(scanpath.summary(indent=" " * 12))
    payload = {
        "timestamp": time.time(),
        "git_rev": _git_rev(),
        "sizes": labels,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "speedup": speedups,
        "speedup_floor": SPEEDUP_FLOOR,
        "scan_path": counters,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"\nwrote {OUTPUT.name}: largest-size speedup {speedups[-1]:.2f}x")
    # the compiled lane must pay for itself at the largest size
    assert speedups[-1] >= SPEEDUP_FLOOR
