"""Shared fixtures: a small world + its measurement, built once."""

import pytest

from repro.core import HunterConfig, URHunter
from repro.scenario import ScenarioConfig, build_world, small_config


@pytest.fixture(scope="session")
def small_world():
    """One deterministic small world shared across the suite."""
    return build_world(small_config(seed=7))


@pytest.fixture(scope="session")
def small_report(small_world):
    """The URHunter measurement over the shared world."""
    hunter = URHunter.from_world(small_world)
    return hunter.run()


@pytest.fixture(scope="session")
def small_hunter(small_world):
    """A hunter instance (fresh pipeline state, same world)."""
    return URHunter.from_world(small_world)
