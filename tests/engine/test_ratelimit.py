"""Tests for per-server token-bucket pacing."""

import pytest

from repro.engine.ratelimit import RateLimiter, TokenBucket


class TestTokenBucket:
    def test_first_token_immediate(self):
        bucket = TokenBucket(130.0)
        assert bucket.ready_at(0.0) == 0.0

    def test_refill_after_interval(self):
        bucket = TokenBucket(130.0)
        bucket.take(0.0)
        assert bucket.ready_at(0.0) == pytest.approx(130.0)
        assert bucket.ready_at(130.0) == pytest.approx(130.0)

    def test_partial_refill_is_continuous(self):
        bucket = TokenBucket(100.0)
        bucket.take(0.0)
        assert bucket.ready_at(40.0) == pytest.approx(100.0)

    def test_burst_allows_back_to_back(self):
        bucket = TokenBucket(100.0, burst=3)
        for _ in range(3):
            assert bucket.ready_at(0.0) == 0.0
            bucket.take(0.0)
        assert bucket.ready_at(0.0) == pytest.approx(100.0)

    def test_zero_interval_never_waits(self):
        bucket = TokenBucket(0.0)
        for _ in range(5):
            assert bucket.ready_at(3.0) == 3.0
            bucket.take(3.0)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0)


class TestRateLimiter:
    def test_servers_independent(self):
        limiter = RateLimiter(130.0)
        limiter.take("10.0.0.1", 0.0)
        assert limiter.ready_at("10.0.0.1", 0.0) == pytest.approx(130.0)
        assert limiter.ready_at("10.0.0.2", 0.0) == 0.0

    def test_enabled_property(self):
        assert RateLimiter(1.0).enabled
        assert not RateLimiter(0.0).enabled


class TestStrictTake:
    """Regression: take() must refuse to drive the bucket negative."""

    def test_unready_take_raises(self):
        bucket = TokenBucket(100.0)
        bucket.take(0.0)
        with pytest.raises(RuntimeError, match="not ready"):
            bucket.take(10.0)
        # the failed take must not have mutated the balance
        assert bucket.ready_at(10.0) == pytest.approx(100.0)

    def test_take_at_exact_ready_at_is_allowed(self):
        # float refill may land fractionally under one token; the
        # epsilon must absorb that, and the balance must not go negative
        bucket = TokenBucket(130.0)
        bucket.take(0.0)
        ready = bucket.ready_at(0.0)
        bucket.take(ready)
        assert bucket.tokens >= 0.0

    def test_limiter_take_propagates(self):
        limiter = RateLimiter(100.0)
        limiter.take("10.0.0.1", 0.0)
        with pytest.raises(RuntimeError, match="not ready"):
            limiter.take("10.0.0.1", 1.0)


class TestPenalize:
    """penalize() is the explicit cool-down debit: it MAY go negative."""

    def test_penalize_goes_negative_and_stretches_ready_at(self):
        bucket = TokenBucket(100.0)
        bucket.take(0.0)
        bucket.penalize(0.0)
        assert bucket.tokens == pytest.approx(-1.0)
        # two tokens short: the next send is a full two intervals away
        assert bucket.ready_at(0.0) == pytest.approx(200.0)

    def test_limiter_penalize(self):
        limiter = RateLimiter(100.0)
        limiter.penalize("10.0.0.1", 0.0)
        limiter.penalize("10.0.0.1", 0.0)
        assert limiter.ready_at("10.0.0.1", 0.0) == pytest.approx(200.0)

    def test_penalize_disabled_limiter_is_noop(self):
        limiter = RateLimiter(0.0)
        limiter.penalize("10.0.0.1", 0.0)
        assert limiter.ready_at("10.0.0.1", 5.0) == 5.0
