"""Tests for per-server token-bucket pacing."""

import pytest

from repro.engine.ratelimit import RateLimiter, TokenBucket


class TestTokenBucket:
    def test_first_token_immediate(self):
        bucket = TokenBucket(130.0)
        assert bucket.ready_at(0.0) == 0.0

    def test_refill_after_interval(self):
        bucket = TokenBucket(130.0)
        bucket.take(0.0)
        assert bucket.ready_at(0.0) == pytest.approx(130.0)
        assert bucket.ready_at(130.0) == pytest.approx(130.0)

    def test_partial_refill_is_continuous(self):
        bucket = TokenBucket(100.0)
        bucket.take(0.0)
        assert bucket.ready_at(40.0) == pytest.approx(100.0)

    def test_burst_allows_back_to_back(self):
        bucket = TokenBucket(100.0, burst=3)
        for _ in range(3):
            assert bucket.ready_at(0.0) == 0.0
            bucket.take(0.0)
        assert bucket.ready_at(0.0) == pytest.approx(100.0)

    def test_zero_interval_never_waits(self):
        bucket = TokenBucket(0.0)
        for _ in range(5):
            assert bucket.ready_at(3.0) == 3.0
            bucket.take(3.0)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0)


class TestRateLimiter:
    def test_servers_independent(self):
        limiter = RateLimiter(130.0)
        limiter.take("10.0.0.1", 0.0)
        assert limiter.ready_at("10.0.0.1", 0.0) == pytest.approx(130.0)
        assert limiter.ready_at("10.0.0.2", 0.0) == 0.0

    def test_enabled_property(self):
        assert RateLimiter(1.0).enabled
        assert not RateLimiter(0.0).enabled
