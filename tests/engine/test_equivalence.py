"""The engine-interchangeability guarantee, end to end.

On a fault-free scenario with no pacing the batched schedule degenerates
to a plain traversal, so both engines must produce the byte-identical
classified-record set — the property that makes the batched engine a
drop-in default.
"""

import pytest

from repro.core import HunterConfig, URHunter
from repro.scenario import build_world, small_config


def _run(engine_name):
    world = build_world(small_config(seed=7))
    hunter = URHunter.from_world(
        world, HunterConfig(engine=engine_name)
    )
    return hunter.run(validate=True)


@pytest.fixture(scope="module")
def reports():
    return {name: _run(name) for name in ("sequential", "batched")}


def _classified_map(report):
    return {
        entry.record.key: (
            entry.category,
            entry.reasons,
            entry.corresponding_ips,
        )
        for entry in report.classified
    }


class TestEngineEquivalence:
    def test_classified_sets_identical(self, reports):
        sequential = _classified_map(reports["sequential"])
        batched = _classified_map(reports["batched"])
        assert sequential == batched

    def test_wire_counters_identical(self, reports):
        sequential, batched = (
            reports["sequential"],
            reports["batched"],
        )
        assert sequential.queries_sent == batched.queries_sent
        assert sequential.responses_seen == batched.responses_seen
        assert sequential.timeouts == batched.timeouts

    def test_validation_agrees(self, reports):
        assert reports["sequential"].false_negative_rate == 0.0
        assert reports["batched"].false_negative_rate == 0.0

    def test_metrics_attached_to_report(self, reports):
        for report in reports.values():
            assert report.scan_metrics is not None
            # the report's headline counters cover the UR sweep only
            assert (
                report.scan_metrics.stage("ur").queries
                == report.queries_sent
            )
            assert set(report.scan_metrics.stages) == {
                "protective",
                "correct",
                "ur",
            }

    def test_summary_carries_engine_metrics(self, reports):
        text = reports["batched"].summary()
        assert "scan engine metrics:" in text
        assert "[ur]" in text
