"""Fault injection in the simulated network, and how engines ride it."""

import pytest

from repro.dns.message import Message
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine import EnginePolicy, QueryTask, create_engine
from repro.net.network import FaultProfile, NetworkError

from .conftest import NS_LIVE, NS_LIVE2, SCANNER


def _query():
    return Message.make_query(
        "example.test", RRType.A, recursion_desired=False
    )


class TestFaultProfile:
    def test_inactive_by_default(self):
        assert not FaultProfile().active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(latency_jitter=-1.0)

    def test_flap_windows_phase_locked(self):
        profile = FaultProfile(flap_up=20.0, flap_down=40.0)
        assert not profile.flapped_down(0.0)
        assert not profile.flapped_down(19.9)
        assert profile.flapped_down(20.0)
        assert profile.flapped_down(59.9)
        assert not profile.flapped_down(60.0)


class TestInjectedLoss:
    def test_full_loss_drops_everything(self, network):
        network.inject_faults(loss_rate=0.999999, seed=1)
        with pytest.raises(NetworkError):
            network.query_dns(SCANNER, NS_LIVE, _query())
        assert network.stats["injected_losses"] == 1

    def test_loss_is_deterministic_per_seed(self, make_network):
        def outcomes(seed):
            net = make_network()
            net.inject_faults(loss_rate=0.5, seed=seed)
            results = []
            for _ in range(20):
                try:
                    net.query_dns(SCANNER, NS_LIVE, _query())
                    results.append(True)
                except NetworkError:
                    results.append(False)
            return results

        assert outcomes(3) == outcomes(3)
        assert outcomes(3) != outcomes(4)

    def test_clear_faults_restores_service(self, network):
        network.inject_faults(loss_rate=0.999999, seed=1)
        network.clear_faults()
        assert network.query_dns(SCANNER, NS_LIVE, _query()) is not None

    def test_per_server_profile_takes_precedence(self, network):
        network.inject_faults(loss_rate=0.999999, seed=1)
        network.set_server_faults(NS_LIVE2, latency_jitter=0.001)
        # NS_LIVE2 has its own (lossless) profile; NS_LIVE drops.
        assert network.query_dns(SCANNER, NS_LIVE2, _query()) is not None
        with pytest.raises(NetworkError):
            network.query_dns(SCANNER, NS_LIVE, _query())


class TestLatencyJitter:
    def test_jitter_stretches_the_clock(self, make_network):
        plain, jittered = make_network(), make_network()
        plain.query_dns(SCANNER, NS_LIVE, _query())
        jittered.inject_faults(latency_jitter=2.0, seed=5)
        jittered.query_dns(SCANNER, NS_LIVE, _query())
        assert jittered.now > plain.now


class TestFlappingServer:
    def test_down_window_rejects_queries(self, network):
        network.set_server_faults(NS_LIVE, flap_up=20.0, flap_down=40.0)
        assert network.query_dns(SCANNER, NS_LIVE, _query()) is not None
        network.tick(25.0)  # into the dead window
        with pytest.raises(NetworkError):
            network.query_dns(SCANNER, NS_LIVE, _query())
        assert network.stats["flap_drops"] == 1
        network.tick(40.0)  # back into the up window
        assert network.query_dns(SCANNER, NS_LIVE, _query()) is not None


class TestEnginesUnderLoss:
    @pytest.mark.parametrize("engine_name", ("sequential", "batched"))
    def test_retries_recover_most_losses(self, make_network, engine_name):
        net = make_network()
        net.inject_faults(loss_rate=0.3, seed=9)
        policy = EnginePolicy(retries=4, circuit_failure_threshold=50)
        engine = create_engine(engine_name, net, SCANNER, policy=policy)
        tasks = [
            QueryTask(
                server_ip=server,
                qname=name("example.test"),
                qtype=RRType.A,
            )
            for server in (NS_LIVE, NS_LIVE2)
            for _ in range(20)
        ]
        outcomes = engine.execute(tasks)
        answered = sum(1 for outcome in outcomes if outcome.answered)
        counters = engine.metrics.stage("ur")
        # 30% loss with a 4-retry budget: nearly everything lands.
        assert answered >= 38
        assert counters.retries > 0
        assert counters.queries > len(tasks)

    def test_batched_is_deterministic_under_loss(self, make_network):
        def run():
            net = make_network()
            net.inject_faults(loss_rate=0.4, seed=21)
            engine = create_engine(
                "batched",
                net,
                SCANNER,
                policy=EnginePolicy(retries=2),
            )
            outcomes = engine.execute(
                [
                    QueryTask(
                        server_ip=NS_LIVE,
                        qname=name("example.test"),
                        qtype=RRType.A,
                    )
                    for _ in range(15)
                ]
            )
            counters = engine.metrics.stage("ur")
            return (
                [outcome.status for outcome in outcomes],
                counters.queries,
                counters.retries,
                net.now,
            )

        assert run() == run()
