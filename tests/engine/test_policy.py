"""Tests for the engine API surface: policy validation and the registry."""

import pytest

from repro.engine import (
    DEFAULT_ENGINE,
    ENGINE_REGISTRY,
    BatchedEngine,
    EnginePolicy,
    QueryEngine,
    SequentialEngine,
    create_engine,
)
from repro.net.network import SimulatedInternet


class TestEnginePolicyValidation:
    def test_defaults_valid(self):
        policy = EnginePolicy()
        assert policy.retries == 2
        assert policy.timeout == 5.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrency": 0},
            {"retries": -1},
            {"timeout": 0.0},
            {"timeout": -3.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"per_server_interval": -1.0},
            {"circuit_failure_threshold": 0},
            {"circuit_reset_interval": -5.0},
        ],
    )
    def test_bad_knob_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EnginePolicy(**kwargs)

    def test_backoff_schedule_is_exponential(self):
        policy = EnginePolicy(backoff_base=0.5, backoff_factor=2.0)
        assert [policy.backoff_delay(n) for n in (1, 2, 3)] == [
            0.5,
            1.0,
            2.0,
        ]


class TestRegistry:
    def test_default_engine_registered(self):
        assert DEFAULT_ENGINE in ENGINE_REGISTRY

    def test_both_engines_registered(self):
        assert ENGINE_REGISTRY["sequential"] is SequentialEngine
        assert ENGINE_REGISTRY["batched"] is BatchedEngine

    def test_unknown_engine_rejected(self):
        network = SimulatedInternet()
        with pytest.raises(ValueError, match="sequential"):
            create_engine("warp-drive", network, "203.0.113.53")

    def test_created_engines_satisfy_protocol(self, network):
        for name in ENGINE_REGISTRY:
            engine = create_engine(name, network, "203.0.113.53")
            assert isinstance(engine, QueryEngine)
            assert engine.name == name
