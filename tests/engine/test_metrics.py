"""Tests for scan observability: histograms and counters."""

import pytest

from repro.engine.metrics import (
    LatencyHistogram,
    ScanMetrics,
    StageCounters,
)


class TestLatencyHistogram:
    def test_records_accumulate(self):
        histogram = LatencyHistogram()
        for value in (0.01, 0.02, 0.2, 2.0):
            histogram.record(value)
        assert histogram.total == 4
        assert histogram.mean == pytest.approx(0.5575)

    def test_percentiles_at_bucket_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.02)
        histogram.record(8.0)
        assert histogram.percentile(50) == 0.025
        assert histogram.percentile(99) == 0.025
        assert histogram.percentile(100) == 10.0

    def test_overflow_bucket_is_inf(self):
        histogram = LatencyHistogram()
        histogram.record(100.0)
        assert histogram.percentile(100) == float("inf")

    def test_empty_percentile_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0
        assert LatencyHistogram().mean == 0.0

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(-1)

    def test_percentile_zero_skips_empty_leading_buckets(self):
        """pct=0 means "the minimum observation's bucket" — it must not
        report the bound of an empty leading bucket."""
        histogram = LatencyHistogram()
        histogram.record(0.2)  # lands in the 0.25 bucket
        assert histogram.percentile(0) == 0.25
        assert histogram.percentile(100) == 0.25

    def test_percentile_zero_on_empty_histogram(self):
        assert LatencyHistogram().percentile(0) == 0.0

    def test_value_on_bound_lands_in_that_bucket(self):
        """A value exactly equal to a bucket bound belongs to the bucket
        whose upper bound it is (bisect_left), so the estimate is
        exact for on-bound observations."""
        histogram = LatencyHistogram()
        histogram.record(0.025)
        assert histogram.percentile(50) == 0.025
        assert histogram.percentile(0) == 0.025

    def test_percentile_zero_with_only_overflow(self):
        histogram = LatencyHistogram()
        histogram.record(99.0)
        assert histogram.percentile(0) == float("inf")

    def test_merge(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.record(0.01)
        right.record(1.5)
        left.merge(right)
        assert left.total == 2
        assert left.sum == pytest.approx(1.51)

    def test_merge_mismatched_buckets_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets=(1.0, 2.0)))


class TestScanMetrics:
    def test_stage_lazily_created(self):
        metrics = ScanMetrics()
        counters = metrics.stage("ur")
        counters.queries += 3
        assert metrics.stage("ur").queries == 3

    def test_totals_sum_stages(self):
        metrics = ScanMetrics()
        metrics.stage("ur").queries = 10
        metrics.stage("ur").timeouts = 2
        metrics.stage("correct").queries = 5
        assert metrics.queries == 15
        assert metrics.timeouts == 2
        assert metrics.loss_rate == pytest.approx(2 / 15)

    def test_loss_rate_empty_is_zero(self):
        assert ScanMetrics().loss_rate == 0.0

    def test_merge_combines_stages(self):
        left, right = ScanMetrics(), ScanMetrics()
        left.stage("ur").queries = 1
        right.stage("ur").queries = 2
        right.stage("protective").skipped = 4
        right.latency.record(0.05)
        left.merge(right)
        assert left.stage("ur").queries == 3
        assert left.skipped == 4
        assert left.latency.total == 1

    def test_counters_merge(self):
        left = StageCounters(queries=1, rate_limit_wait=2.5)
        left.merge(StageCounters(queries=2, giveups=1, rate_limit_wait=0.5))
        assert left.queries == 3
        assert left.giveups == 1
        assert left.rate_limit_wait == 3.0

    def test_summary_mentions_every_stage(self):
        metrics = ScanMetrics()
        metrics.stage("ur").queries = 7
        metrics.stage("protective").queries = 2
        metrics.latency.record(0.03)
        text = metrics.summary()
        assert "queries: 9" in text
        assert "[protective]" in text
        assert "[ur]" in text
        assert "p50/p90/p99" in text
