"""Tests for the per-server circuit breaker."""

from repro.engine.breaker import CircuitBreaker, CircuitState

SERVER = "10.0.0.66"
OTHER = "10.0.0.1"


def test_closed_below_threshold():
    breaker = CircuitBreaker(failure_threshold=3)
    for _ in range(2):
        breaker.record_failure(SERVER, now=0.0)
    assert breaker.state(SERVER) is CircuitState.CLOSED
    assert breaker.allow(SERVER, now=0.0)


def test_opens_at_threshold():
    breaker = CircuitBreaker(failure_threshold=3)
    for _ in range(3):
        breaker.record_failure(SERVER, now=1.0)
    assert breaker.state(SERVER) is CircuitState.OPEN
    assert not breaker.allow(SERVER, now=1.0)


def test_success_resets_failure_count():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure(SERVER, now=0.0)
    breaker.record_failure(SERVER, now=0.0)
    breaker.record_success(SERVER)
    breaker.record_failure(SERVER, now=0.0)
    breaker.record_failure(SERVER, now=0.0)
    assert breaker.state(SERVER) is CircuitState.CLOSED


def test_half_open_after_reset_interval():
    breaker = CircuitBreaker(failure_threshold=1, reset_interval=60.0)
    breaker.record_failure(SERVER, now=0.0)
    assert not breaker.allow(SERVER, now=59.0)
    # the first allow after the interval is the probe ...
    assert breaker.allow(SERVER, now=60.0)
    assert breaker.state(SERVER) is CircuitState.HALF_OPEN
    # ... and only the probe: everything else is held
    assert not breaker.allow(SERVER, now=60.0)


def test_probe_success_closes():
    breaker = CircuitBreaker(failure_threshold=1, reset_interval=60.0)
    breaker.record_failure(SERVER, now=0.0)
    assert breaker.allow(SERVER, now=60.0)
    breaker.record_success(SERVER)
    assert breaker.state(SERVER) is CircuitState.CLOSED
    assert breaker.allow(SERVER, now=60.0)


def test_probe_failure_reopens_with_fresh_timer():
    breaker = CircuitBreaker(failure_threshold=1, reset_interval=60.0)
    breaker.record_failure(SERVER, now=0.0)
    assert breaker.allow(SERVER, now=60.0)
    breaker.record_failure(SERVER, now=60.0)
    assert breaker.state(SERVER) is CircuitState.OPEN
    assert not breaker.allow(SERVER, now=119.0)
    assert breaker.allow(SERVER, now=120.0)


def test_servers_are_independent():
    breaker = CircuitBreaker(failure_threshold=1)
    breaker.record_failure(SERVER, now=0.0)
    assert not breaker.allow(SERVER, now=0.0)
    assert breaker.allow(OTHER, now=0.0)
    assert breaker.state(OTHER) is CircuitState.CLOSED
