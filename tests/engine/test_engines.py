"""Behavioral tests for both engines over the simulated internet."""

import pytest

from repro.dns.message import Rcode
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine import (
    BatchedEngine,
    EnginePolicy,
    OutcomeStatus,
    QueryTask,
    SequentialEngine,
    create_engine,
)
from repro.engine.breaker import CircuitState
from repro.net.traffic import Protocol

from .conftest import NS_DEAD, NS_LIVE, NS_LIVE2, SCANNER

ENGINES = ("sequential", "batched")


def _task(server_ip, qtype=RRType.A, stage="ur"):
    return QueryTask(
        server_ip=server_ip,
        qname=name("example.test"),
        qtype=qtype,
        stage=stage,
    )


class TestAnsweredPath:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_single_answer(self, network, engine_name):
        engine = create_engine(engine_name, network, SCANNER)
        [outcome] = engine.execute([_task(NS_LIVE)])
        assert outcome.status is OutcomeStatus.ANSWERED
        assert outcome.answered
        assert outcome.attempts == 1
        assert outcome.response.header.rcode == Rcode.NOERROR
        counters = engine.metrics.stage("ur")
        assert counters.queries == 1
        assert counters.responses == 1
        assert engine.metrics.latency.total == 1

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_outcomes_in_task_order(self, network, engine_name):
        engine = create_engine(engine_name, network, SCANNER)
        tasks = [
            _task(NS_LIVE),
            _task(NS_LIVE2),
            _task(NS_LIVE, qtype=RRType.TXT),
            _task(NS_LIVE2, qtype=RRType.TXT),
        ]
        outcomes = engine.execute(tasks)
        assert [outcome.task for outcome in outcomes] == tasks
        assert all(outcome.answered for outcome in outcomes)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_empty_task_list(self, network, engine_name):
        engine = create_engine(engine_name, network, SCANNER)
        assert engine.execute([]) == []

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_stage_buckets_kept_apart(self, network, engine_name):
        engine = create_engine(engine_name, network, SCANNER)
        engine.execute(
            [
                _task(NS_LIVE, stage="protective"),
                _task(NS_LIVE2, stage="ur"),
                _task(NS_LIVE, stage="ur"),
            ]
        )
        assert engine.metrics.stage("protective").queries == 1
        assert engine.metrics.stage("ur").queries == 2


class TestRetryAndTimeout:
    def test_sequential_clock_accounting(self, network):
        """A dead server costs (retries+1) timeouts plus the backoffs."""
        policy = EnginePolicy(
            retries=2, timeout=5.0, backoff_base=0.5, backoff_factor=2.0
        )
        engine = SequentialEngine(network, SCANNER, policy=policy)
        before = network.now
        [outcome] = engine.execute([_task(NS_DEAD)])
        assert outcome.status is OutcomeStatus.GAVE_UP
        assert outcome.attempts == 3
        # 3 x 5s timeouts + 0.5s + 1.0s backoffs (plus wire latency)
        assert network.now - before == pytest.approx(16.5, abs=0.1)

    def test_batched_single_lane_matches_sequential_cost(self, network):
        policy = EnginePolicy(
            retries=2, timeout=5.0, backoff_base=0.5, backoff_factor=2.0
        )
        engine = BatchedEngine(network, SCANNER, policy=policy)
        before = network.now
        [outcome] = engine.execute([_task(NS_DEAD)])
        assert outcome.status is OutcomeStatus.GAVE_UP
        assert outcome.attempts == 3
        assert network.now - before == pytest.approx(16.5, abs=0.1)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_timeouts_counted_per_attempt(self, network, engine_name):
        policy = EnginePolicy(retries=1, circuit_failure_threshold=100)
        engine = create_engine(
            engine_name, network, SCANNER, policy=policy
        )
        engine.execute([_task(NS_DEAD), _task(NS_DEAD, qtype=RRType.TXT)])
        counters = engine.metrics.stage("ur")
        assert counters.queries == 4
        assert counters.timeouts == 4
        assert counters.retries == 2
        assert counters.giveups == 2

    def test_batched_timeouts_overlap_across_lanes(self, make_network):
        """Many dead servers: waits overlap instead of summing."""

        def cost(concurrency):
            network = make_network()
            for index in range(8):
                address = f"10.8.0.{index + 1}"
                network.register_stub(address)
                network.set_online(address, False)
            policy = EnginePolicy(
                retries=0,
                timeout=5.0,
                max_concurrency=concurrency,
                circuit_failure_threshold=100,
            )
            engine = BatchedEngine(network, SCANNER, policy=policy)
            tasks = [_task(f"10.8.0.{index + 1}") for index in range(8)]
            before = network.now
            engine.execute(tasks)
            return network.now - before

        # 8 lanes wait out their 5s timeouts concurrently ...
        assert cost(8) == pytest.approx(5.0, abs=0.2)
        # ... a single worker pays them one after the other.
        assert cost(1) == pytest.approx(40.0, abs=0.5)


class TestCircuitBreaking:
    def test_circuit_opens_and_skips(self, network):
        policy = EnginePolicy(retries=0, circuit_failure_threshold=5)
        engine = BatchedEngine(network, SCANNER, policy=policy)
        tasks = [
            _task(NS_DEAD, qtype=qtype)
            for qtype in (RRType.A, RRType.TXT)
            for _ in range(5)
        ]
        outcomes = engine.execute(tasks)
        statuses = [outcome.status for outcome in outcomes]
        assert statuses.count(OutcomeStatus.GAVE_UP) == 5
        assert statuses.count(OutcomeStatus.SKIPPED) == 5
        assert engine.circuit_state(NS_DEAD) is CircuitState.OPEN
        counters = engine.metrics.stage("ur")
        assert counters.queries == 5  # the wire was spared 5 sends
        assert counters.skipped == 5

    def test_circuit_recovers_after_reset(self, network):
        """OPEN -> HALF_OPEN probe -> CLOSED once the server heals."""
        policy = EnginePolicy(
            retries=0,
            circuit_failure_threshold=3,
            circuit_reset_interval=60.0,
        )
        engine = BatchedEngine(network, SCANNER, policy=policy)
        network.set_online(NS_LIVE, False)
        first = engine.execute([_task(NS_LIVE) for _ in range(5)])
        assert engine.circuit_state(NS_LIVE) is CircuitState.OPEN
        assert [outcome.status for outcome in first[3:]] == [
            OutcomeStatus.SKIPPED,
            OutcomeStatus.SKIPPED,
        ]

        network.set_online(NS_LIVE, True)
        network.tick(60.0)
        second = engine.execute([_task(NS_LIVE) for _ in range(3)])
        assert all(outcome.answered for outcome in second)
        assert engine.circuit_state(NS_LIVE) is CircuitState.CLOSED

    def test_sequential_has_no_breaker(self, network):
        """The baseline pays full price for every dead-server task."""
        policy = EnginePolicy(retries=0, circuit_failure_threshold=1)
        engine = SequentialEngine(network, SCANNER, policy=policy)
        outcomes = engine.execute([_task(NS_DEAD) for _ in range(4)])
        assert all(
            outcome.status is OutcomeStatus.GAVE_UP for outcome in outcomes
        )
        assert engine.metrics.stage("ur").queries == 4


class TestPacing:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_per_server_gap_never_violated(self, network, engine_name):
        interval = 130.0
        policy = EnginePolicy(per_server_interval=interval)
        engine = create_engine(
            engine_name, network, SCANNER, policy=policy
        )
        tasks = [
            _task(server, qtype=qtype)
            for server in (NS_LIVE, NS_LIVE2)
            for qtype in (RRType.A, RRType.TXT)
            for _ in range(2)
        ]
        engine.execute(tasks)
        flows = network.capture.filter(protocol=Protocol.DNS, src=SCANNER)
        for server in (NS_LIVE, NS_LIVE2):
            stamps = sorted(
                flow.timestamp for flow in flows if flow.dst == server
            )
            assert len(stamps) == 4
            gaps = [
                later - earlier
                for earlier, later in zip(stamps, stamps[1:])
            ]
            assert all(gap >= interval - 1e-6 for gap in gaps)

    def test_batched_overlaps_pacing_waits(self, make_network):
        """Two servers paced at 130s: lanes interleave, a single worker
        would not have to — but the serial stream still pays more."""

        def virtual_cost(engine_name):
            network = make_network()
            policy = EnginePolicy(per_server_interval=130.0)
            engine = create_engine(
                engine_name, network, SCANNER, policy=policy
            )
            tasks = []
            for _ in range(3):
                tasks.append(_task(NS_LIVE))
                tasks.append(_task(NS_LIVE2))
            before = network.now
            engine.execute(tasks)
            return network.now - before

        batched = virtual_cost("batched")
        sequential = virtual_cost("sequential")
        # 3 tokens per server -> 2 gaps: the batched engine finishes in
        # ~2 intervals; pacing waits overlap across the two lanes.
        assert batched == pytest.approx(260.0, abs=1.0)
        assert batched <= sequential + 1e-6
