"""Tests for repro.engine: the pluggable scan-engine subsystem."""
